"""Legacy-compatible build entry point.

The offline environment ships a setuptools without PEP 517 wheel
support; this thin ``setup.py`` lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) work there.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Theoretical Aspects of Schema Merging' "
        "(Buneman, Davidson, Kosky; EDBT 1992)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["schema-merge=repro.tools.cli:main"],
    },
)
