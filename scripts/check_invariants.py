#!/usr/bin/env python
"""Invariant checks: the repro.check analyzers plus (optional) mypy.

The CI ``check`` job's entry point, runnable locally with no arguments::

    python scripts/check_invariants.py

1. **Static analyzers** — :func:`repro.check.run_checks` over
   ``src/repro``: lock discipline, async safety, publication order,
   API surface, HTTP status coverage.  Any error-severity diagnostic
   fails the run; warnings fail too (CI is strict — a human running
   ``schema-merge check`` without ``--strict`` can triage warnings).
2. **mypy --strict** — over the typed service core (``repro.service``,
   ``repro.obs``, ``repro.check``), configured in ``pyproject.toml``.
   mypy is a CI-installed dev dependency, not a runtime one: when it
   is not importable the step is *skipped with a notice*, not failed,
   so the script stays runnable in minimal environments.

Exit code: 0 all green, 1 otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

ANALYZER_TARGETS = [str(ROOT / "src" / "repro")]
MYPY_TARGETS = [
    str(ROOT / "src" / "repro" / "service"),
    str(ROOT / "src" / "repro" / "obs"),
    str(ROOT / "src" / "repro" / "check"),
    str(ROOT / "src" / "repro" / "perf" / "namespace.py"),
]


def run_analyzers() -> int:
    from repro.check import run_checks
    from repro.check.runner import render_report

    diagnostics = run_checks(ANALYZER_TARGETS)
    print(render_report(diagnostics))
    return len(diagnostics)


def run_mypy() -> int:
    try:
        import mypy  # noqa: F401 - availability probe only
    except ImportError:
        print("mypy: not installed here — skipped (CI installs it)")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--strict",
        *MYPY_TARGETS,
    ]
    print(f"mypy: {' '.join(command[3:])}")
    completed = subprocess.run(command, cwd=ROOT)
    return completed.returncode


def main() -> int:
    print("static analyzers:")
    analyzer_failures = run_analyzers()
    print("mypy:")
    mypy_failures = run_mypy()
    if analyzer_failures or mypy_failures:
        print(
            f"FAIL: {analyzer_failures} analyzer diagnostic(s), "
            f"mypy exit {mypy_failures}",
            file=sys.stderr,
        )
        return 1
    print("invariants: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
