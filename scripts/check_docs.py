#!/usr/bin/env python
"""Documentation checks: doctests green, referenced paths exist.

Two passes, both exercised by the CI ``docs`` job and runnable locally
with no arguments::

    python scripts/check_docs.py

1. **Doctests** — every module in :data:`DOCTEST_MODULES` is imported
   and run through :func:`doctest.testmod`.  These are the ``>>>``
   examples in the public-API docstrings (README quickstart claims
   live here too: if an example in the docs rots, this fails).
2. **Link check** — every markdown link target and every backticked
   repo path in ``README.md`` and ``docs/*.md`` must exist on disk.
   Only tokens under the known source roots are treated as paths, so
   prose code spans (``repro.service``, shell invocations, generated
   artifacts) are not false positives.

Exit code: 0 all green, 1 otherwise.
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

DOCTEST_MODULES = [
    "repro.check",
    "repro.check.diagnostics",
    "repro.check.runner",
    "repro.check.witness",
    "repro.core.schema",
    "repro.obs",
    "repro.obs.exporters",
    "repro.obs.instrument",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.io.json_io",
    "repro.perf",
    "repro.perf.interning",
    "repro.perf.memo",
    "repro.perf.closure",
    "repro.perf.namespace",
    "repro.perf.reference",
    "repro.perf.setwise",
    "repro.perf.timing",
    "repro.sentinels",
    "repro.service",
    "repro.service.api_types",
    "repro.service.http",
    "repro.service.service",
    "repro.service.shards",
    "repro.service.snapshots",
    "repro.service.storage",
]

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

# A backticked token is checked as a path only when it starts under one
# of these roots (or is a tracked top-level file); everything else in
# code spans is prose, shell, or a generated artifact.
PATH_ROOTS = (
    "src/",
    "docs/",
    "examples/",
    "benchmarks/",
    "tests/",
    "scripts/",
    ".github/",
)
TOP_LEVEL_FILES = {
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
    "pyproject.toml",
    "setup.py",
}

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")


def check_doctests() -> int:
    failures = 0
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        status = "ok" if result.failed == 0 else "FAIL"
        print(
            f"  doctest {module_name}: {result.attempted} examples {status}"
        )
        failures += result.failed
    return failures


def _candidate_paths(text: str):
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0], "link"
    for match in CODE_SPAN.finditer(text):
        # First shell word only: `benchmarks/runner.py --suite service`
        # names the file, the rest is invocation.
        token = match.group(1).split()[0] if match.group(1).split() else ""
        token = token.split(":", 1)[0]  # `core/schema.py:_closure_index`
        if token.startswith(PATH_ROOTS) or token in TOP_LEVEL_FILES:
            yield token, "code span"


def check_links() -> int:
    failures = 0
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        seen = set()
        for target, kind in _candidate_paths(text):
            if target in seen:
                continue
            seen.add(target)
            # Markdown links resolve relative to the containing file;
            # backticked paths are written repo-relative.
            base = doc.parent if kind == "link" else ROOT
            resolved = (base / target).resolve()
            if not resolved.exists() and not (ROOT / target).exists():
                print(
                    f"  BROKEN {kind} in {doc.relative_to(ROOT)}: {target}"
                )
                failures += 1
        print(f"  links {doc.relative_to(ROOT)}: {len(seen)} checked")
    return failures


def main() -> int:
    print("doctests:")
    doctest_failures = check_doctests()
    print("doc links:")
    link_failures = check_links()
    if doctest_failures or link_failures:
        print(
            f"FAIL: {doctest_failures} doctest failure(s), "
            f"{link_failures} broken path(s)",
            file=sys.stderr,
        )
        return 1
    print("docs check: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
