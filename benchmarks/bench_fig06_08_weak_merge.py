"""FIG6/FIG8 — the weak least upper bound G1 ⊔ G2 (§4.1, Figure 8).

Merging the Figure 6 schemas must produce exactly the Figure 8 drawing:
F keeps its ``a``-arrows to C and D and gains the W2-implied arrows to
A and B — four ``a``-arrows in total, no classes invented at the weak
stage.
"""

from repro.core.merge import weak_merge
from repro.core.names import BaseName
from repro.core.ordering import is_sub
from repro.figures import figure6_schemas, figure8_expected_weak_merge


def test_fig08_weak_merge_equals_drawing(benchmark):
    g1, g2 = figure6_schemas()
    weak = benchmark(weak_merge, g1, g2)
    assert weak == figure8_expected_weak_merge()


def test_fig08_four_a_arrows(benchmark):
    g1, g2 = figure6_schemas()
    weak = benchmark(weak_merge, g1, g2)
    assert weak.reach("F", "a") == {
        BaseName("A"),
        BaseName("B"),
        BaseName("C"),
        BaseName("D"),
    }


def test_fig08_is_least_upper_bound(benchmark):
    g1, g2 = figure6_schemas()
    weak = benchmark(weak_merge, g1, g2)
    assert is_sub(g1, weak) and is_sub(g2, weak)
    # Least: removing any F-arrow stops it being an upper bound, and
    # every upper bound contains it componentwise (checked against the
    # canonical bigger bound weak ⊔ extra).
    bigger = weak.with_arrow("E", "a", "C")
    assert is_sub(weak, bigger)
