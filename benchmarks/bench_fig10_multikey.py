"""FIG10 — Transaction's two composite keys (§5, Figure 10).

"The statement that Transaction has two keys, one being {loc, at}, the
other being {card, at}, has no correspondence in terms of labeling
edges" — i.e. key families strictly generalize ER cardinality labels.
The benchmark rebuilds the figure and verifies the non-expressibility
claim mechanically: no assignment of {1, N} edge labels induces this
key family under the binary-cardinality rule.
"""

from itertools import product

from repro.core.keys import KeyFamily
from repro.figures import figure10_keyed_schema
from repro.instances.instance import Instance
from repro.instances.satisfaction import satisfies_keyed


def test_fig10_key_family(benchmark):
    keyed = benchmark(figure10_keyed_schema)
    family = keyed.keys_of("Transaction")
    assert family == KeyFamily.of({"loc", "at"}, {"card", "at"})


def test_fig10_not_expressible_by_edge_labels(benchmark):
    target = figure10_keyed_schema().keys_of("Transaction")
    roles = ["loc", "at", "card", "amount"]

    def sweep():
        # Under the standard reading, labelling edge r with "1" asserts
        # the key (roles - {r}); labelling everything "N" asserts the
        # full role set.  Enumerate all 2^4 labellings.
        expressible = []
        for labels in product("1N", repeat=len(roles)):
            keys = [
                set(roles) - {role}
                for role, label in zip(roles, labels)
                if label == "1"
            ] or [set(roles)]
            expressible.append(KeyFamily(keys))
        return expressible

    families = benchmark(sweep)
    assert target not in families


def test_fig10_instance_level_meaning(benchmark):
    keyed = figure10_keyed_schema()
    # Two transactions may share a machine and a card, but not a
    # machine+time nor a card+time.
    good = Instance.build(
        extents={
            "Transaction": {"t1", "t2"},
            "Machine": {"m"},
            "Time": {"noon", "night"},
            "Card": {"c"},
            "Amount": {"a1", "a2"},
        },
        values={
            ("t1", "loc"): "m",
            ("t1", "at"): "noon",
            ("t1", "card"): "c",
            ("t1", "amount"): "a1",
            ("t2", "loc"): "m",
            ("t2", "at"): "night",
            ("t2", "card"): "c",
            ("t2", "amount"): "a2",
        },
    )
    bad = Instance.build(
        extents={
            "Transaction": {"t1", "t2"},
            "Machine": {"m"},
            "Time": {"noon"},
            "Card": {"c1", "c2"},
            "Amount": {"a1", "a2"},
        },
        values={
            ("t1", "loc"): "m",
            ("t1", "at"): "noon",
            ("t1", "card"): "c1",
            ("t1", "amount"): "a1",
            ("t2", "loc"): "m",
            ("t2", "at"): "noon",  # same machine+time: key violation
            ("t2", "card"): "c2",
            ("t2", "amount"): "a2",
        },
    )

    def check():
        return satisfies_keyed(good, keyed), satisfies_keyed(bad, keyed)

    good_ok, bad_ok = benchmark(check)
    assert good_ok and not bad_ok
