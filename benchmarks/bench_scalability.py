"""SCALE — merge and properization cost versus schema size (§7).

The paper gives no complexity analysis; this sweep supplies the
missing engineering numbers: wall-clock of the full merge pipeline as
the class count grows, on the named view-integration workloads.
"""

import pytest

from repro.core.implicit import properize
from repro.core.merge import upper_merge, weak_merge
from repro.generators.workloads import get_workload


@pytest.mark.parametrize("workload", ["views-small", "views-medium"])
def test_scale_full_merge(benchmark, workload):
    # views-large takes ~1 minute per full merge; its weak stage is
    # timed below and its properization cost is covered by IMPGROWTH.
    schemas = get_workload(workload).schemas()
    merged = benchmark(upper_merge, *schemas)
    assert merged.classes >= frozenset().union(
        *(g.classes for g in schemas)
    )


@pytest.mark.parametrize(
    "workload", ["views-small", "views-medium", "views-large"]
)
def test_scale_weak_stage_only(benchmark, workload):
    schemas = get_workload(workload).schemas()
    weak = benchmark(weak_merge, *schemas)
    assert len(weak.classes) >= max(len(g.classes) for g in schemas)


@pytest.mark.parametrize("workload", ["views-small", "views-medium"])
def test_scale_properization_stage_only(benchmark, workload):
    schemas = get_workload(workload).schemas()
    weak = weak_merge(*schemas)
    proper = benchmark(properize, weak)
    assert proper.classes >= weak.classes


def test_scale_wide_federation(benchmark):
    schemas = get_workload("federation-wide").schemas()
    merged = benchmark(upper_merge, *schemas)
    assert len(merged.classes) >= 10
