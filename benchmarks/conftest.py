"""Shared helpers for the benchmark harness.

Every benchmark both *times* its kernel (pytest-benchmark fixture) and
*asserts* the paper's qualitative claim, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction run recorded in
EXPERIMENTS.md.

Engine benchmarks (``bench_merge_engine.py``) use the lighter
``perf_record`` fixture instead: it times through
:mod:`benchmarks._timing` — the same helper ``benchmarks/runner.py``
uses — and, when ``--bench-json PATH`` is passed, the session writes
the collected records as a trajectory file byte-compatible with the
runner's output.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _timing import record, time_call, write_trajectory  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        help="write perf_record measurements to PATH as a trajectory file",
    )


_RECORDS: List[Dict[str, Any]] = []


@pytest.fixture
def perf_record() -> Callable[..., Dict[str, Any]]:
    """Time a callable and collect the measurement into the session.

    Usage::

        timing = perf_record("join_all/200", "scalability",
                             lambda: join_all(family), repeat=5)
    """

    def _measure(
        name: str,
        group: str,
        fn: Callable[[], Any],
        repeat: int = 5,
        setup: Callable[[], Any] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        timing = time_call(fn, repeat=repeat, setup=setup)
        _RECORDS.append(record(name, group, timing, **extra))
        return timing

    return _measure


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if path and _RECORDS:
        write_trajectory(path, _RECORDS, suite="merge_engine")
