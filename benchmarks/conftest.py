"""Shared helpers for the benchmark harness.

Every benchmark both *times* its kernel (pytest-benchmark fixture) and
*asserts* the paper's qualitative claim, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction run recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest
