"""KEYMIN — the minimal satisfactory key assignment (§5) at scale.

Uniqueness/minimality is a theorem; here we measure the cost of the
propagation on random keyed families and re-verify satisfaction and
spec-monotonicity on every output.
"""

import pytest

from repro.core.keys import (
    is_satisfactory,
    merge_keyed,
    minimal_satisfactory_assignment,
)
from repro.generators.random_schemas import random_keyed_family


@pytest.mark.parametrize("n_schemas", [2, 4])
def test_keymin_propagation(benchmark, n_schemas):
    inputs = random_keyed_family(
        n_schemas=n_schemas, pool_size=24, n_classes=12, seed=17
    )
    merged = merge_keyed(*inputs)

    assignment = benchmark(
        minimal_satisfactory_assignment, merged.schema, inputs
    )
    assert is_satisfactory(merged.schema, assignment, inputs)


def test_keymin_full_merge_pipeline(benchmark):
    inputs = random_keyed_family(
        n_schemas=3, pool_size=24, n_classes=12, seed=29
    )
    merged = benchmark(merge_keyed, *inputs)
    for sub, sup in merged.schema.strict_spec():
        assert merged.keys_of(sub).contains_family(merged.keys_of(sup))


def test_keymin_order_independence(benchmark):
    one, two, three = random_keyed_family(
        n_schemas=3, pool_size=20, n_classes=10, seed=31
    )

    def two_orders():
        return merge_keyed(one, two, three), merge_keyed(three, two, one)

    left, right = benchmark(two_orders)
    assert left == right
