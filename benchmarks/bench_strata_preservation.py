"""STRATA — the merge preserves strata (§2, §7).

Merging within the ER and relational stratifications must yield
schemas that still conform — including the strata of freshly invented
implicit classes — so translate → merge → translate-back is total on
conflict-free inputs.
"""

import random

import pytest

from repro.models.er import (
    ERAttribute,
    ERDiagram,
    EREntity,
    ERRelationship,
    from_schema,
    merge_er,
    to_schema,
)
from repro.models.relational import (
    RelationSchema,
    RelationalDatabase,
    merge_relational,
)
from repro.models.strata import merge_stratified


def _random_er_diagram(seed: int) -> ERDiagram:
    rng = random.Random(seed)
    # Attribute domains are a function of the attribute name: diagrams
    # then never type a shared attribute differently, so merges are
    # conflict-free (the conflicting case is a *correct rejection* and
    # is unit-tested separately in test_er.py).
    domains = ["Str", "Int", "Date"]
    entity_pool = [f"E{i}" for i in range(6)]
    entities = []
    chosen = rng.sample(entity_pool, 4)
    for name in chosen:
        attributes = [
            ERAttribute(f"a{j}", domains[j % len(domains)])
            for j in range(rng.randrange(0, 3))
        ]
        parents = [
            p for p in chosen if p < name and rng.random() < 0.3
        ]
        entities.append(
            EREntity(name, attributes=attributes, isa=parents[:1])
        )
    relationships = [
        ERRelationship(
            f"R{seed}",
            roles={
                "x": rng.choice(chosen),
                "y": rng.choice(chosen),
            },
        )
    ]
    return ERDiagram(entities=entities, relationships=relationships)


def test_strata_er_round_trip_merge(benchmark):
    diagrams = [_random_er_diagram(seed) for seed in (1, 2, 3)]

    merged = benchmark(merge_er, *diagrams)
    # Translating the merged diagram again must succeed and agree.
    stratified = to_schema(merged)
    assert from_schema(stratified) == merged


def test_strata_stratified_merge_validates(benchmark):
    stratified = [
        to_schema(_random_er_diagram(seed)) for seed in (4, 5, 6)
    ]
    merged = benchmark(merge_stratified, *stratified)
    # The StratifiedSchema constructor re-checks every rule; reaching
    # here means strata were preserved.  Spot-check the assignment.
    for cls in merged.schema.classes:
        assert merged.stratum_of(cls) in (
            "entity",
            "relationship",
            "domain",
        )


def test_strata_relational_merge(benchmark):
    one = RelationalDatabase(
        [
            RelationSchema("Dog", {"license": "Str", "breed": "Str"}),
            RelationSchema("Owner", {"name": "Str"}),
        ]
    )
    two = RelationalDatabase(
        [
            RelationSchema("Dog", {"name": "Str", "breed": "Str"}),
            RelationSchema("Kennel", {"addr": "Str"}),
        ]
    )
    merged = benchmark(merge_relational, one, two)
    assert {r.name for r in merged.relations} == {
        "Dog",
        "Owner",
        "Kennel",
    }
    assert merged.relation("Dog").attribute_names() == {
        "license",
        "name",
        "breed",
    }
