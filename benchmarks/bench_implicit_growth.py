"""IMPGROWTH — how many implicit classes can a merge introduce? (§7)

The conclusion's open question, answered in both directions:

* benign regimes (random view families, stacked diamonds) stay small —
  linear at worst, confirming "we do not think these are likely to
  occur in practice";
* the NFA subset-construction adversary blows up exponentially
  (|Imp| = 2^k - 1), confirming "it may be possible to construct
  pathological examples".
"""

import pytest

from repro.analysis.growth import (
    adversarial_growth,
    diamond_growth,
    implicit_count,
    random_growth,
)
from repro.core.merge import upper_merge
from repro.generators.pathological import (
    nfa_blowup_pair,
)
from repro.generators.workloads import get_workload


def test_impgrowth_random_views_stay_modest(benchmark):
    rows = benchmark(random_growth, sizes=(10, 20, 40), seed=7)
    for _size, classes, implicit in rows:
        # "Small" in the paper's sense is relative to the exponential
        # worst case: on random views |Imp| stays within a polynomial
        # envelope of the class count (measured: ~2× classes on the
        # densest setting), nowhere near the 2^k adversary.
        assert implicit < classes**2
        assert implicit < 2 ** min(classes, 30)


def test_impgrowth_diamonds_exactly_linear(benchmark):
    rows = benchmark(diamond_growth, ks=(4, 8, 16, 32))
    assert [imp for _k, _cls, imp in rows] == [4, 8, 16, 32]


def test_impgrowth_adversary_exactly_exponential(benchmark):
    rows = benchmark(adversarial_growth, ks=(4, 6, 8, 10))
    assert [imp for _k, _cls, imp in rows] == [
        2**4 - 1,
        2**6 - 1,
        2**8 - 1,
        2**10 - 1,
    ]


@pytest.mark.parametrize("k", [6, 8])
def test_impgrowth_adversarial_full_merge(benchmark, k):
    # Full properization is measured only up to k=8 (the k=12 point
    # takes minutes per round); the |Imp| sweep above carries the
    # exponential-shape claim to larger k cheaply.
    first, second = nfa_blowup_pair(k)
    merged = benchmark(upper_merge, first, second)
    # k+1 base classes plus 2^k - 1 implicit classes.
    assert len(merged.classes) == (k + 1) + (2**k - 1)


def test_impgrowth_named_workload_counts(benchmark):
    def measure():
        return {
            name: implicit_count(get_workload(name).schemas())
            for name in ("views-small", "diamonds-16", "nfa-8", "nfa-12")
        }

    counts = benchmark(measure)
    assert counts["diamonds-16"] == 16
    assert counts["nfa-8"] == 2**8 - 1
    assert counts["nfa-12"] == 2**12 - 1
    assert counts["views-small"] < 60
