#!/usr/bin/env python
"""HTTP — front-end throughput and latency under concurrent writers.

Drives a real ``schema-merge serve --http`` subprocess over loopback
with 1 / 4 / 16 concurrent writer connections (the
``concurrent-disjoint-N`` workloads: each writer registers into its own
component), and measures:

* **RPS + latency percentiles** per concurrency level — the scaling
  gate is ``16-writer RPS ≥ 2x single-writer RPS``: with per-shard
  locks, disjoint writers queue on nothing server-side, so piling on
  writers must amortize the per-round-trip dead time a single serial
  client pays.  The gate only engages on hosts with ≥ 2 CPUs: on a
  single core the round trip is 100% CPU-saturated (measured: ~0.2 ms
  client + ~0.5 ms server CPU per request, zero idle), so *no* locking
  design can scale it — the artifact records the measured ratio and
  why it was not gated;
* **read latency under write load** — a deliberately huge register
  batch (calibrated to take ≥ ~100 ms server-side) is posted in the
  background while warm ``query`` reads hammer the same server; the
  non-blocking gate is ``read p95 < in-flight-write duration / 4``.
  If reads queued behind the writer's lock (the old single-RLock
  design), every read under write load would cost the write's
  remaining duration and the gate fails by an order of magnitude.

Emits ``BENCH_http.json`` via ``benchmarks/runner.py --suite http``;
run standalone with ``PYTHONPATH=src python benchmarks/bench_http.py``.
This module is driven by the runner, not collected by the pytest
sweep (it owns its own subprocess lifecycle).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.generators.random_schemas import random_schema_family  # noqa: E402
from repro.generators.workloads import get_concurrent_stream  # noqa: E402
from repro.io.json_io import dumps as io_dumps, schema_to_dict  # noqa: E402
from repro.service.api_types import API_FORMAT  # noqa: E402

WRITER_LEVELS = (1, 4, 16)
HOST = "127.0.0.1"


def _percentiles(samples: List[float]) -> Dict[str, Optional[float]]:
    if not samples:
        return {"p50": None, "p95": None, "p99": None, "max": None}
    ordered = sorted(samples)

    def at(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": ordered[-1],
    }


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind((HOST, 0))
        return probe.getsockname()[1]


class HttpServer:
    """A ``schema-merge serve --http`` subprocess on a free port."""

    def __init__(self, seed_files: List[str]):
        self.port = _free_port()
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.tools.cli",
                "serve",
                *seed_files,
                "--http",
                str(self.port),
                "--host",
                HOST,
            ],
            env={**os.environ, "PYTHONPATH": os.path.join(_ROOT, "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            stdin=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited early with {self.process.returncode}"
                )
            try:
                with socket.create_connection((HOST, self.port), timeout=0.5):
                    return
            except OSError:
                time.sleep(0.05)
        raise RuntimeError("server did not start listening in time")

    def __enter__(self) -> "HttpServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


def _post(
    conn: http.client.HTTPConnection, docs: List[Dict[str, Any]]
) -> int:
    body = json.dumps({"format": API_FORMAT, "schemas": docs})
    conn.request("POST", "/v1/schemas", body)
    response = conn.getresponse()
    response.read()
    return response.status


def _get(conn: http.client.HTTPConnection, path: str) -> int:
    conn.request("GET", path)
    response = conn.getresponse()
    response.read()
    return response.status


def _seed_files(tmpdir: str, schemas) -> List[str]:
    paths = []
    for index, schema in enumerate(schemas):
        path = os.path.join(tmpdir, f"seed{index:02d}.json")
        with open(path, "w") as handle:
            handle.write(io_dumps(schema))
        paths.append(path)
    return paths


def run_writer_level(
    n_writers: int, total_requests: int
) -> Dict[str, Any]:
    """RPS + latency for *n_writers* concurrent register connections.

    Every level issues the same *total_requests* (split across writers)
    against a fresh server, so throughput figures compare level to
    level: the only variable is how many requests are in flight.
    """
    stream = get_concurrent_stream(f"concurrent-disjoint-{n_writers}")
    initial, lanes = stream.make()
    docs_per_lane = [
        [schema_to_dict(schema) for _kind, schema in lane] for lane in lanes
    ]
    per_writer = total_requests // n_writers

    with tempfile.TemporaryDirectory() as tmpdir:
        seeds = _seed_files(tmpdir, initial)
        with HttpServer(seeds) as server:
            barrier = threading.Barrier(n_writers + 1)
            latencies: List[List[float]] = [[] for _ in range(n_writers)]
            failures: List[int] = []

            def writer(index: int) -> None:
                docs = docs_per_lane[index]
                conn = http.client.HTTPConnection(
                    HOST, server.port, timeout=60
                )
                try:
                    barrier.wait(timeout=60)
                    for request_index in range(per_writer):
                        doc = docs[request_index % len(docs)]
                        start = time.perf_counter()
                        status = _post(conn, [doc])
                        latencies[index].append(time.perf_counter() - start)
                        if status != 200:
                            failures.append(status)
                finally:
                    conn.close()

            threads = [
                threading.Thread(target=writer, args=(i,), daemon=True)
                for i in range(n_writers)
            ]
            for thread in threads:
                thread.start()
            barrier.wait(timeout=60)
            wall_start = time.perf_counter()
            for thread in threads:
                thread.join(timeout=300)
            wall = time.perf_counter() - wall_start
            alive = any(thread.is_alive() for thread in threads)

    flat = [sample for lane in latencies for sample in lane]
    requests_done = len(flat)
    return {
        "writers": n_writers,
        "requests": requests_done,
        "wall_s": wall,
        "rps": requests_done / wall if wall > 0 else 0.0,
        "latency_s": _percentiles(flat),
        "failures": len(failures),
        "hung": alive,
    }


def _calibrate_big_batch(
    conn: http.client.HTTPConnection, target_s: float
) -> Tuple[int, float]:
    """Grow a fresh-pod register batch until it takes ≥ *target_s*."""
    size = 40
    while True:
        family = random_schema_family(
            n_schemas=size,
            pool_size=30,
            n_classes=16,
            n_labels=6,
            arrow_density=0.25,
            spec_density=0.1,
            seed=97 + size,
            prefix=f"Big{size}_",
        )
        docs = [schema_to_dict(schema) for schema in family]
        start = time.perf_counter()
        status = _post(conn, docs)
        duration = time.perf_counter() - start
        assert status == 200, f"calibration register failed: {status}"
        if duration >= target_s or size >= 640:
            return size, duration
        size *= 2


def run_read_latency_under_write(target_write_s: float = 0.1) -> Dict[str, Any]:
    """Warm-read latency while a long register is in flight.

    The gate is the **median** read latency under ``duration / 4``,
    with a minimum sample count.  The median is the statistic that
    actually discriminates the two designs: a service that serialized
    reads behind the writer's lock would hold the first mid-write read
    for the write's whole remaining duration — the sample count
    collapses toward 1 and that sample costs ~``duration`` — while
    lock-free reads land a steady stream of sub-millisecond samples.

    The tail (p95/max, reported but not gated) is *not* a lock-freedom
    signal on a single-core host: when the writer thread executes a
    long C-level operation (a big frozenset union or sort inside the
    closure rebuild), the GIL cannot be preempted mid-operation, so one
    unlucky read can stall for ~100 ms of pure scheduler convoy even
    though no lock is contended.  Both shapes appear in the artifact;
    only the median is asserted.
    """
    stream = get_concurrent_stream("concurrent-disjoint-4")
    initial, _lanes = stream.make()
    read_class = str(sorted(str(c) for c in initial[0].classes)[0])
    read_path = f"/v1/query/{read_class}"

    with tempfile.TemporaryDirectory() as tmpdir:
        seeds = _seed_files(tmpdir, initial)
        with HttpServer(seeds) as server:
            write_conn = http.client.HTTPConnection(
                HOST, server.port, timeout=300
            )
            read_conn = http.client.HTTPConnection(
                HOST, server.port, timeout=60
            )
            try:
                # Warm the read path, then baseline its idle latency.
                assert _get(read_conn, read_path) == 200
                idle: List[float] = []
                for _ in range(100):
                    start = time.perf_counter()
                    assert _get(read_conn, read_path) == 200
                    idle.append(time.perf_counter() - start)

                # Calibrate a write big enough to be visibly in flight.
                batch_size, calibrated_s = _calibrate_big_batch(
                    write_conn, target_write_s
                )

                # Fire a second big batch (a fresh pod again) and read
                # against it; keep only reads fully inside the write.
                family = random_schema_family(
                    n_schemas=batch_size,
                    pool_size=30,
                    n_classes=16,
                    n_labels=6,
                    arrow_density=0.25,
                    spec_density=0.1,
                    seed=1297,
                    prefix="BigW_",
                )
                docs = [schema_to_dict(schema) for schema in family]
                window: Dict[str, float] = {}

                def write() -> None:
                    window["start"] = time.perf_counter()
                    status = _post(write_conn, docs)
                    window["end"] = time.perf_counter()
                    window["status"] = status

                thread = threading.Thread(target=write, daemon=True)
                thread.start()
                during: List[Tuple[float, float]] = []
                while thread.is_alive():
                    start = time.perf_counter()
                    assert _get(read_conn, read_path) == 200
                    during.append((start, time.perf_counter()))
                thread.join(timeout=300)
            finally:
                write_conn.close()
                read_conn.close()

    assert window.get("status") == 200, f"big write failed: {window}"
    write_s = window["end"] - window["start"]
    inside = [
        end - start
        for start, end in during
        if start >= window["start"] and end <= window["end"]
    ]
    during_stats = _percentiles(inside)
    bar_s = write_s / 4
    p50 = during_stats["p50"]
    nonblocking = p50 is not None and len(inside) >= 5 and p50 < bar_s
    return {
        "read_class": read_class,
        "idle_latency_s": _percentiles(idle),
        "write_batch_schemas": batch_size,
        "write_duration_s": write_s,
        "calibration_duration_s": calibrated_s,
        "reads_during_write": len(inside),
        "latency_during_write_s": during_stats,
        "stalled_reads": sum(1 for sample in inside if sample >= bar_s),
        "bar_s": bar_s,
        "gate_statistic": "p50",
        "reads_nonblocking_ok": bool(nonblocking),
    }


def run_http_bench(smoke: bool = False) -> Dict[str, Any]:
    """The full suite: writer scaling levels + the non-blocking gate."""
    total_requests = 96 if smoke else 480
    levels = {}
    for n_writers in WRITER_LEVELS:
        levels[str(n_writers)] = run_writer_level(n_writers, total_requests)

    read_under_write = run_read_latency_under_write(
        target_write_s=0.05 if smoke else 0.1
    )

    single = levels["1"]["rps"]
    sixteen = levels["16"]["rps"]
    scaling = sixteen / single if single > 0 else 0.0
    healthy = not any(
        level["failures"] or level["hung"] for level in levels.values()
    )
    cpu_count = os.cpu_count() or 1
    # Two reasons not to gate the throughput ratio: smoke runs (shared
    # runners jitter too much) and single-core hosts (the round trip is
    # CPU-saturated end to end, so concurrency has no idle time to
    # reclaim — the ratio measures the GIL, not the locking design).
    scaling_gate_active = not smoke and cpu_count >= 2
    summary = {
        "smoke": smoke,
        "cpu_count": cpu_count,
        "rps_1_writer": single,
        "rps_4_writers": levels["4"]["rps"],
        "rps_16_writers": sixteen,
        "scaling_16_vs_1": scaling,
        "scaling_required": 2.0,
        "scaling_gate_active": scaling_gate_active,
        "scaling_not_gated_reason": (
            None
            if scaling_gate_active
            else ("smoke mode" if smoke else "single-core host")
        ),
        "scaling_ok": scaling >= 2.0 if scaling_gate_active else None,
        "reads_nonblocking_ok": read_under_write["reads_nonblocking_ok"],
        "acceptance_pass": healthy
        and read_under_write["reads_nonblocking_ok"]
        and (not scaling_gate_active or scaling >= 2.0),
    }
    return {
        "levels": levels,
        "read_latency_under_write": read_under_write,
        "summary": summary,
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--json", default=os.path.join(_ROOT, "BENCH_http.json")
    )
    args = parser.parse_args(argv)
    result = run_http_bench(smoke=args.smoke)
    for name, level in result["levels"].items():
        latency = level["latency_s"]
        print(
            f"  {name:>2} writer(s): {level['rps']:8.0f} req/s   "
            f"p50 {latency['p50'] * 1e3:6.2f} ms   "
            f"p95 {latency['p95'] * 1e3:6.2f} ms"
        )
    ruw = result["read_latency_under_write"]
    print(
        f"  reads during a {ruw['write_duration_s'] * 1e3:.0f} ms write: "
        f"p95 {ruw['latency_during_write_s']['p95'] * 1e3:.2f} ms "
        f"({'non-blocking' if ruw['reads_nonblocking_ok'] else 'BLOCKED'})"
    )
    summary = result["summary"]
    gate_note = (
        ""
        if summary["scaling_gate_active"]
        else f", not gated: {summary['scaling_not_gated_reason']}"
    )
    print(
        f"  scaling 16v1: {summary['scaling_16_vs_1']:.2f}x "
        f"(required ≥ {summary['scaling_required']}x{gate_note})"
    )
    with open(args.json, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0 if summary["acceptance_pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
