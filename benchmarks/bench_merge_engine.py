"""ENGINE — merge-engine benchmarks: interning, incremental closure, memoization.

Unlike the figure benchmarks (which time the *paper's* constructions),
these time the *engine* against the preserved pre-engine reference
implementations in :mod:`repro.perf.reference`, asserting both that the
results are equal and that the engine actually is faster.  The speedup
floors asserted here are deliberately loose (shared CI runners jitter);
``benchmarks/runner.py`` enforces the strict ≥5x acceptance bar on the
200-schema case and records the exact ratios in the trajectory file.
"""

from __future__ import annotations

import pytest

from repro.core.lower import annotated_leq, lower_merge
from repro.core.ordering import compatible, is_sub, join_all
from repro.core.schema import Schema
from repro.generators.random_schemas import (
    random_annotated_schema,
    random_schema_family,
    random_weak_schema,
)
from repro.perf import clear_caches, engine_stats
from repro.perf.reference import (
    reference_is_sub,
    reference_join_all,
    reference_lower_merge,
)
from repro.perf.setwise import setwise_join_all

SCALE_FAMILY = dict(
    n_schemas=200,
    pool_size=60,
    n_classes=14,
    n_labels=6,
    arrow_density=0.2,
    spec_density=0.08,
    seed=7,
)


@pytest.fixture(scope="module")
def scale_family():
    return random_schema_family(**SCALE_FAMILY)


def test_join_all_equals_reference(scale_family):
    assert join_all(scale_family) == reference_join_all(scale_family)


def test_join_all_scalability(perf_record, scale_family):
    engine = perf_record(
        "join_all/200",
        "scalability",
        lambda: join_all(scale_family),
        setup=clear_caches,
        schemas=len(scale_family),
    )
    reference = perf_record(
        "reference_join_all/200",
        "scalability",
        lambda: reference_join_all(scale_family),
        schemas=len(scale_family),
    )
    speedup = reference["best_s"] / engine["best_s"]
    assert speedup >= 2.0, f"engine only {speedup:.1f}x faster than reference"


def test_kernel_join_all_vs_setwise(perf_record, scale_family):
    """The dense bitset kernels against the preserved set-based engine.

    Both sides intern and memoize, so this isolates what the dense-id
    representation buys; ``runner.py`` gates the strict ≥5x bar on the
    320-schema case.
    """
    dense = perf_record(
        "kernel_join_all/200",
        "kernels",
        lambda: join_all(scale_family),
        setup=clear_caches,
        schemas=len(scale_family),
    )
    setwise = perf_record(
        "setwise_join_all/200",
        "kernels",
        lambda: setwise_join_all(scale_family),
        setup=clear_caches,
        schemas=len(scale_family),
    )
    assert join_all(scale_family) == setwise_join_all(scale_family)
    speedup = setwise["best_s"] / dense["best_s"]
    assert speedup >= 2.0, f"kernels only {speedup:.1f}x faster than setwise"


def test_is_sub_memoized(perf_record, scale_family):
    merged = join_all(scale_family)
    pairs = [(g, merged) for g in scale_family]

    def probe():
        return sum(1 for left, right in pairs if is_sub(left, right))

    def probe_reference():
        return sum(1 for left, right in pairs if reference_is_sub(left, right))

    assert probe() == probe_reference() == len(pairs)
    warm = perf_record("is_sub/warm", "memoization", probe)
    cold = perf_record("is_sub/cold", "memoization", probe_reference)
    assert warm["best_s"] <= cold["best_s"] * 1.5


def test_compatible_memoized(perf_record, scale_family):
    merged = join_all(scale_family)
    pairs = [(g, merged) for g in scale_family]

    def probe():
        return sum(1 for left, right in pairs if compatible(left, right))

    assert probe() == len(pairs)  # every member joins into the merge
    perf_record("compatible/warm", "memoization", probe)
    stats = engine_stats()["memo"]["ordering.compatible"]
    assert stats["hits"] > 0, "warm compatible probes never hit the memo"


def test_with_arrows_incremental(perf_record):
    base = random_weak_schema(
        n_classes=40, n_labels=8, arrow_density=0.3, spec_density=0.1, seed=3
    )
    extra = [(cls, "zz", cls) for cls in list(base.sorted_classes())[:5]]

    def incremental():
        return base.with_arrows(extra)

    def rebuild():
        return Schema.build(
            classes=base.classes,
            arrows=set(base.arrows) | {
                (s, label, t)
                for s, label, t in (
                    (str(a), b, str(c)) for a, b, c in extra
                )
            },
            spec=base.spec,
        )

    assert incremental() == rebuild()
    fast = perf_record("with_arrows/incremental", "incremental", incremental)
    slow = perf_record("with_arrows/rebuild", "incremental", rebuild)
    # Generous slack: noisy shared runners must not flake this assert
    # (the measured ratio is ~20x; the runner records the exact value).
    assert fast["best_s"] <= slow["best_s"] * 1.5


def test_lower_merge_equals_reference(perf_record):
    schemas = [
        random_annotated_schema(
            n_classes=12, n_labels=5, arrow_density=0.25, seed=i
        )
        for i in range(30)
    ]
    merged = lower_merge(*schemas)
    assert merged == reference_lower_merge(*schemas)
    perf_record("lower_merge/30", "lower", lambda: lower_merge(*schemas))
    perf_record(
        "reference_lower_merge/30",
        "lower",
        lambda: reference_lower_merge(*schemas),
    )

    def probe_leq():
        return sum(1 for g in schemas if annotated_leq(merged, g))

    probe_leq()  # prime the memo, then time the warm probes
    perf_record("annotated_leq/warm", "lower", probe_leq, schemas=len(schemas))
    stats = engine_stats()["memo"]["lower.annotated_leq"]
    assert stats["hits"] > 0, "warm annotated_leq probes never hit the memo"
