"""ABLATE — design-choice ablations DESIGN.md calls out.

Three switches in the implementation are not forced by the paper's
text, and each earns its keep measurably:

* **strip_derived** (upper merge): re-deriving implicit classes across
  iterated merges is what makes the binary fold literally equal the
  n-ary merge.  Ablating it leaves stale intermediate classes behind.
* **origin-recording names** (vs the naive baseline's anonymous
  classes): the other half of the associativity story.
* **import_specializations** (lower merge): importing foreign ISA edges
  during class completion preserves cross-schema hierarchy information
  the default (isolated) completion must drop.
"""

from repro.baselines.naive import naive_merge_sequence
from repro.core.lower import AnnotatedSchema, lower_merge
from repro.core.merge import upper_merge
from repro.core.names import ImplicitName
from repro.figures import figure4_schemas
from repro.generators.workloads import get_workload


def test_ablate_strip_derived(benchmark):
    g1, g2, g3 = figure4_schemas()

    def both_variants():
        stripped = upper_merge(upper_merge(g1, g2), g3)
        unstripped = upper_merge(
            upper_merge(g1, g2), g3, strip_derived=False
        )
        return stripped, unstripped

    stripped, unstripped = benchmark(both_variants)
    # With stripping: exactly the n-ary result.
    assert stripped == upper_merge(g1, g2, g3)
    # Without: the intermediate <D&E> survives as a stale extra class.
    assert ImplicitName(["D", "E"]) in unstripped.classes
    assert ImplicitName(["D", "E"]) not in stripped.classes
    assert len(unstripped.classes) > len(stripped.classes)


def test_ablate_origin_names_vs_anonymous(benchmark):
    g1, g2, g3 = figure4_schemas()

    def both_mergers():
        ours = {
            upper_merge(upper_merge(g1, g2), g3),
            upper_merge(upper_merge(g1, g3), g2),
            upper_merge(upper_merge(g2, g3), g1),
        }
        naive = {
            naive_merge_sequence([g1, g2, g3]),
            naive_merge_sequence([g1, g3, g2]),
            naive_merge_sequence([g2, g3, g1]),
        }
        return ours, naive

    ours, naive = benchmark(both_mergers)
    assert len(ours) == 1
    assert len(naive) >= 2


def test_ablate_import_specializations(benchmark):
    one = AnnotatedSchema.build(
        arrows=[("Guide-dog", "name", "Str")],
        spec=[("Guide-dog", "Dog")],
    )
    two = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])

    def both_modes():
        default = lower_merge(one, two)
        imported = lower_merge(one, two, import_specializations=True)
        return default, imported

    default, imported = benchmark(both_modes)
    # The ISA edge survives only with importing enabled.
    assert not default.is_spec("Guide-dog", "Dog")
    assert imported.is_spec("Guide-dog", "Dog")
    # With the hierarchy intact, the required name-arrow of Dog
    # propagates down to Guide-dog in the imported variant.
    assert imported.present_arrows() >= default.present_arrows()


def test_ablate_properization_share_of_merge_cost(benchmark):
    schemas = get_workload("views-medium").schemas()
    from repro.core.implicit import properize
    from repro.core.merge import weak_merge

    def staged():
        weak = weak_merge(*schemas)
        proper = properize(weak)
        return weak, proper

    weak, proper = benchmark(staged)
    assert proper.classes >= weak.classes
