"""BASE — ordering-sensitivity and information loss of the baselines (§1).

Quantifies the paper's criticism of pre-1992 integrators on both toy
and random workloads: the naive fresh-implicit merger yields multiple
distinct results across merge orders, the heuristic pruner silently
drops asserted arrows, and our merge does neither.
"""

from itertools import permutations

import pytest

from repro.baselines.naive import naive_merge_sequence, order_sensitivity
from repro.baselines.superviews import (
    heuristic_merge_sequence,
    heuristic_order_sensitivity,
    lost_information,
)
from repro.core.merge import upper_merge
from repro.figures import figure4_schemas
from repro.generators.workloads import get_workload


def test_base_naive_on_figure4(benchmark):
    report = benchmark(order_sensitivity, list(figure4_schemas()))
    assert report["distinct_results"] >= 2  # the paper's claim
    assert report["permutations"] == 6


def test_base_ours_on_figure4(benchmark):
    schemas = list(figure4_schemas())

    def ours():
        return {
            upper_merge(*(schemas[i] for i in order))
            for order in permutations(range(3))
        }

    assert len(benchmark(ours)) == 1


def test_base_naive_on_random_views(benchmark):
    schemas = get_workload("views-small").schemas()

    def fold_two_orders():
        return (
            naive_merge_sequence(schemas),
            naive_merge_sequence(list(reversed(schemas))),
        )

    left, right = benchmark(fold_two_orders)
    # Unlike ours, the naive fold is not guaranteed order-independent;
    # whether these two orders collide or not, the *our-merge* invariant
    # below is the reproducible claim.
    ours_forward = upper_merge(*schemas)
    ours_backward = upper_merge(*reversed(schemas))
    assert ours_forward == ours_backward


def test_base_heuristic_loses_information(benchmark):
    schemas = get_workload("diamonds-16").schemas()

    def fold():
        merged = heuristic_merge_sequence(schemas)
        return merged, lost_information(merged, schemas)

    merged, lost = benchmark(fold)
    assert lost, "the heuristic baseline must drop asserted arrows here"
    ours = upper_merge(*schemas)
    assert lost_information(ours, schemas) == []


def test_base_heuristic_order_report(benchmark):
    report = benchmark(
        heuristic_order_sensitivity, list(figure4_schemas())
    )
    assert report["permutations"] == 6
    # The heuristic may or may not collide orders on this toy input;
    # the measured number is recorded in EXPERIMENTS.md.
    assert report["distinct_results"] >= 1
