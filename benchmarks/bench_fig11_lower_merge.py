"""FIG11 — the participation semilattice and lower merges (§6).

Rebuilds Figure 11's order (0/1 below the incomparable 0 and 1),
verifies the GLB table drives the lower merge (a required arrow merged
with an absent one becomes optional — the Dog name/age/breed example of
§6), and runs the federation scenario end to end: the union of
instances of the inputs satisfies the lower merge.
"""

from repro.core.lower import (
    AnnotatedSchema,
    annotated_leq,
    complete_classes,
    lower_merge,
    lower_properize,
)
from repro.core.names import BaseName, GenName
from repro.core.participation import Participation, glb, leq, lub
from repro.instances.instance import Instance
from repro.instances.merging import federate
from repro.instances.satisfaction import satisfies_annotated

P0 = Participation.ABSENT
P01 = Participation.OPTIONAL
P1 = Participation.REQUIRED


def test_fig11_semilattice_shape(benchmark):
    def laws():
        table = {}
        for left in Participation:
            for right in Participation:
                table[(left, right)] = glb(left, right)
        return table

    table = benchmark(laws)
    # Figure 11: 0/1 at the bottom, 0 and 1 maximal and incomparable.
    assert leq(P01, P0) and leq(P01, P1)
    assert not leq(P0, P1) and not leq(P1, P0)
    assert table[(P0, P1)] == P01
    assert table[(P1, P1)] == P1
    assert lub(P0, P1) is None  # only a meet-semilattice


def test_fig11_dog_example_lower_merge(benchmark):
    # §6: "if one schema has the class Dog with arrows name and age,
    # and another has Dog with arrows name and breed ... instances of
    # the class Dog may have age-arrows and may have breed-arrows".
    one = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
    )
    two = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
    )
    merged = benchmark(lower_merge, one, two)
    assert merged.participation_of("Dog", "name", "Str") == P1
    assert merged.participation_of("Dog", "age", "Int") == P01
    assert merged.participation_of("Dog", "breed", "Breed") == P01
    for completed in complete_classes([one, two]):
        assert annotated_leq(merged, completed)


def test_fig11_guide_dog_class_retained(benchmark):
    # §6's second problem: a class present in only one schema must
    # survive the lower merge.
    one = AnnotatedSchema.build(
        arrows=[("Guide-dog", "name", "Str")],
        spec=[("Guide-dog", "Dog")],
    )
    two = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])
    merged = benchmark(lower_merge, one, two)
    assert BaseName("Guide-dog") in merged.classes


def test_fig11_lower_properization_generalizes_upward(benchmark):
    one = AnnotatedSchema.build(arrows=[("F", "a", "C")])
    two = AnnotatedSchema.build(arrows=[("F", "a", "D")])

    def pipeline():
        return lower_properize(lower_merge(one, two))

    proper = benchmark(pipeline)
    gen = GenName(["C", "D"])
    # "implicit classes are introduced above, rather than below".
    assert gen in proper.classes
    assert proper.is_spec("C", gen) and proper.is_spec("D", gen)


def test_fig11_federation_end_to_end(benchmark):
    one = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
    )
    two = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
    )
    inst_one = Instance.build(
        extents={"Dog": {"rex"}, "Str": {"s"}, "Int": {"i"}},
        values={("rex", "name"): "s", ("rex", "age"): "i"},
    )
    inst_two = Instance.build(
        extents={"Dog": {"fido"}, "Str": {"t"}, "Breed": {"lab"}},
        values={("fido", "name"): "t", ("fido", "breed"): "lab"},
    )

    def pipeline():
        merged = lower_merge(one, two)
        combined = federate([inst_one, inst_two])
        return merged, combined

    merged, combined = benchmark(pipeline)
    assert satisfies_annotated(inst_one, one)
    assert satisfies_annotated(inst_two, two)
    assert satisfies_annotated(combined, merged)
    assert len(combined.extent("Dog")) == 2
