"""OBS — the telemetry overhead budget: enabled-mode cost on the hot path.

The instrumented service promises that turning telemetry on costs a
warm ``merged_view`` burst less than 5% (docs/OBSERVABILITY.md): the
counters it always pays are plain integer adds, and duration sampling
fires only 1-in-``telemetry_sample_every`` requests via a phase compare
that executes identically in both modes.  This suite times the same
warm burst with the global switch off and on and fails if the ratio
blows the budget.

CI runs this as a separate non-blocking check — sub-microsecond ratio
measurements on shared runners jitter, so a red here is a signal to
investigate, not an automatic revert.  The assertion bar (7.5%) sits
above the documented budget (5%) for the same reason; the two burst
records land in the trajectory JSON so the exact ratio is trackable.
"""

from __future__ import annotations

from repro.generators.workloads import get_request_stream
from repro.obs import _state
from repro.obs.tracing import tracer
from repro.service import MergeService

WORKLOAD = "service-sharded-small"
BUDGET_FRACTION = 0.05
ASSERT_FRACTION = 0.075
LOOPS = 20000


def test_enabled_overhead_within_budget(perf_record):
    initial, _requests = get_request_stream(WORKLOAD).make()
    service = MergeService(initial)
    service.merged_view()
    view = service.merged_view

    def burst() -> None:
        for _ in range(LOOPS):
            view()

    was_enabled = _state.enabled
    try:
        _state.set_enabled(False)
        disabled = perf_record(
            "merged_view_burst/telemetry_disabled",
            "obs_overhead",
            burst,
            repeat=5,
            loops=LOOPS,
        )
        _state.set_enabled(True)
        enabled = perf_record(
            "merged_view_burst/telemetry_enabled",
            "obs_overhead",
            burst,
            repeat=5,
            loops=LOOPS,
            budget_fraction=BUDGET_FRACTION,
        )
    finally:
        _state.set_enabled(was_enabled)
        tracer().clear()

    overhead = enabled["best_s"] / disabled["best_s"] - 1.0
    assert overhead < ASSERT_FRACTION, (
        f"telemetry overhead {overhead * 100:.1f}% exceeds the "
        f"{ASSERT_FRACTION * 100:.1f}% assertion bar "
        f"(documented budget: {BUDGET_FRACTION * 100:.0f}%)"
    )
