"""SERVICE — long-lived merge-service benchmarks: sharding, caching, replay.

These time :class:`repro.service.MergeService` against the cold
``join_all`` path on named request streams from
:mod:`repro.generators.workloads`, asserting the service's two load-
bearing invariants along the way: every answer equals the cold-path
merge of the same schemas, and a registration invalidates only the
component it touches.  The speedup floors here are deliberately loose
(shared CI runners jitter); ``benchmarks/runner.py --suite service``
enforces the strict ≥10x acceptance bar on the 200-schema sharded
workload and records the exact ratios in ``BENCH_service.json``.
"""

from __future__ import annotations

import pytest

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.generators.workloads import get_request_stream
from repro.perf import clear_caches
from repro.service import MergeService
from repro.service.bench import replay

WORKLOAD = "service-sharded-small"


@pytest.fixture(scope="module")
def stream():
    return get_request_stream(WORKLOAD).make()


@pytest.fixture(scope="module")
def service(stream):
    initial, _requests = stream
    svc = MergeService(initial)
    for sid in svc.components():
        svc.merged_view(sid)
    svc.merged_view()
    return svc


def test_global_view_equals_cold_join_all(service, stream):
    initial, _requests = stream
    assert service.merged_view() == join_all(initial)


def test_component_views_equal_cold_join_all(service):
    for sid in service.components():
        cold = join_all(list(service.component_schemas(sid)))
        assert service.merged_view(sid) == cold


def test_warm_view_vs_cold_join_all(perf_record, service, stream):
    initial, _requests = stream
    cold = perf_record(
        "join_all/cold",
        "service",
        lambda: join_all(initial),
        setup=clear_caches,
        schemas=len(initial),
    )
    warm = perf_record(
        "merged_view/warm",
        "service",
        lambda: service.merged_view(),
        schemas=len(initial),
    )
    speedup = cold["best_s"] / warm["best_s"]
    assert speedup >= 5.0, f"warm view only {speedup:.1f}x faster than cold"


def test_register_invalidates_only_touched_component(service):
    components = sorted(service.components())
    assert len(components) > 1, "sharded workload must shard"
    for sid in components:
        service.merged_view(sid)
    anchor = str(service.component_schemas(components[0])[0].sorted_classes()[0])
    before = service.service_stats()["component_cache"]["misses"]
    service.register([Schema.build(arrows=[(anchor, "probe", "BenchProbe")])])
    for sid in sorted(service.components()):
        service.merged_view(sid)
    after = service.service_stats()["component_cache"]["misses"]
    assert after - before == 1, (
        f"registration recomputed {after - before} components, expected 1"
    )


def test_stream_replay(perf_record, stream):
    initial, requests = stream
    timing = perf_record(
        "stream_replay",
        "service",
        lambda: replay(MergeService(initial), requests),
        repeat=3,
        requests=len(requests),
    )
    assert timing["best_s"] > 0
