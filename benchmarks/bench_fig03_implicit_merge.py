"""FIG3 — the merge that forces an implicit class (§3, Figure 3).

The first schema asserts C ==> A1, C ==> A2; the second gives A1/A2
``a``-arrows to B1/B2.  The merge must conclude that C's ``a``-arrow
points into a common specialization of B1 and B2 — the implicit class.
"""

from repro.core.merge import merge_report, upper_merge, weak_merge
from repro.core.names import ImplicitName
from repro.core.proper import canonical_class, is_proper
from repro.figures import figure3_expected_weak_merge, figure3_schemas


def test_fig03_weak_merge_equals_drawing(benchmark):
    one, two = figure3_schemas()
    weak = benchmark(weak_merge, one, two)
    assert weak == figure3_expected_weak_merge()


def test_fig03_properization_introduces_the_class(benchmark):
    one, two = figure3_schemas()
    merged = benchmark(upper_merge, one, two)
    imp = ImplicitName(["B1", "B2"])
    assert is_proper(merged)
    assert imp in merged.classes
    assert merged.is_spec(imp, "B1") and merged.is_spec(imp, "B2")
    assert canonical_class(merged, "C", "a") == imp


def test_fig03_full_report(benchmark):
    one, two = figure3_schemas()
    report = benchmark(merge_report, one, two)
    assert len(report.implicit_members) == 1
    assert {str(m) for m in report.implicit_members[0]} == {"B1", "B2"}
