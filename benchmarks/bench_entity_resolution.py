"""CORR — key-based cross-database object correspondence at scale (§5).

Section 5's closing story: keys decide when an object in one database
corresponds to an object in another.  These benches run the full
fusion pipeline (keyed merge → shared-value federation → key
identification) on synthetic Person databases with controlled overlap
and assert the paper's three-case shape:

* an **agreed** key deduplicates exactly down to distinct key values;
* an **imposed** key (declared in one source only, arrows in both)
  deduplicates just as thoroughly — the merge's "additional constraint
  on the extents of G2";
* an **undeterminable** key (no arrow in one source) identifies
  nothing across that boundary.
"""

import random

import pytest

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.schema import Schema
from repro.generators.random_schemas import random_keyed_family
from repro.instances.correspondence import (
    CorrespondenceStatus,
    analyze_correspondence,
    fuse,
)
from repro.instances.instance import Instance


def person_schema(with_key: bool, with_ssn_arrow: bool = True) -> KeyedSchema:
    arrows = [("Person", "name", "Str")]
    if with_ssn_arrow:
        arrows.append(("Person", "ssn", "SSN"))
    keys = (
        {"Person": KeyFamily.of({"ssn"})}
        if with_key and with_ssn_arrow
        else {}
    )
    return KeyedSchema(Schema.build(arrows=arrows), keys)


def person_database(
    source: str, people: int, ssn_pool: int, seed: int, with_ssn: bool = True
) -> Instance:
    """A Person instance whose ssn values overlap across databases.

    Names are unique per person (prefixed by the ssn value) so that
    identifying two objects never forces contradictory attributes.
    """
    rng = random.Random(seed)
    extents = {"Person": set(), "SSN": set(), "Str": set()}
    values = {}
    assigned = set()
    for index in range(people):
        oid = f"{source}-p{index}"
        extents["Person"].add(oid)
        if with_ssn:
            ssn = f"ssn{rng.randrange(ssn_pool)}"
            while ssn in assigned:  # unique within one database
                ssn = f"ssn{rng.randrange(ssn_pool)}"
            assigned.add(ssn)
            extents["SSN"].add(ssn)
            values[(oid, "ssn")] = ssn
            name = f"name-of-{ssn}"
        else:
            name = f"{source}-name{index}"
        extents["Str"].add(name)
        values[(oid, "name")] = name
    return Instance.build(extents=extents, values=values)


VALUE_CLASSES = ["SSN", "Str"]


@pytest.mark.parametrize("people", [50, 200])
def test_corr_agreed_key_deduplicates(benchmark, people):
    left = person_database("census", people, ssn_pool=3 * people, seed=1)
    right = person_database("payroll", people, ssn_pool=3 * people, seed=2)
    sources = [
        (person_schema(with_key=True), left),
        (person_schema(with_key=True), right),
    ]

    result = benchmark(fuse, sources, value_classes=VALUE_CLASSES)

    distinct = {
        inst.value(oid, "ssn")
        for _schema, inst in sources
        for oid in inst.extent("Person")
    }
    assert len(result.instance.extent("Person")) == len(distinct)
    assert result.identified == 2 * people - len(distinct)
    statuses = {row.status for row in result.correspondences}
    assert CorrespondenceStatus.AGREED in statuses


def test_corr_three_way_fusion_is_order_independent(benchmark):
    """§5 at n = 3: fusing census, payroll and licensing in any order
    leaves the same number of people — key-based identity composes."""
    import itertools

    databases = [
        (person_schema(with_key=True),
         person_database(source, 80, ssn_pool=120, seed=20 + i))
        for i, source in enumerate(("census", "payroll", "licensing"))
    ]

    def all_orders():
        return [
            fuse(list(order), value_classes=VALUE_CLASSES)
            for order in itertools.permutations(databases)
        ]

    results = benchmark(all_orders)

    distinct = {
        inst.value(oid, "ssn")
        for _schema, inst in databases
        for oid in inst.extent("Person")
    }
    sizes = {len(r.instance.extent("Person")) for r in results}
    assert sizes == {len(distinct)}


def test_corr_imposed_key_matches_agreed(benchmark):
    """Declaring the key in only one source fuses identically: the
    merged schema imposes it on the other source's extents."""
    left = person_database("census", 120, ssn_pool=200, seed=3)
    right = person_database("payroll", 120, ssn_pool=200, seed=4)

    def run():
        agreed = fuse(
            [
                (person_schema(with_key=True), left),
                (person_schema(with_key=True), right),
            ],
            value_classes=VALUE_CLASSES,
        )
        imposed = fuse(
            [
                (person_schema(with_key=True), left),
                (person_schema(with_key=False), right),
            ],
            value_classes=VALUE_CLASSES,
        )
        return agreed, imposed

    agreed, imposed = benchmark(run)
    assert imposed.instance == agreed.instance
    assert {row.status for row in imposed.correspondences} >= {
        CorrespondenceStatus.IMPOSED
    }


def test_corr_undeterminable_identifies_nothing(benchmark):
    """No ssn arrow in one source ⇒ "there is not way to tell"."""
    left = person_database("census", 120, ssn_pool=200, seed=5)
    right = person_database(
        "contacts", 120, ssn_pool=200, seed=6, with_ssn=False
    )
    sources = [
        (person_schema(with_key=True), left),
        (person_schema(with_key=True, with_ssn_arrow=False), right),
    ]

    result = benchmark(fuse, sources, value_classes=VALUE_CLASSES)

    assert result.identified == 0
    statuses = {row.status for row in result.correspondences}
    assert CorrespondenceStatus.UNDETERMINABLE in statuses


def test_corr_no_keys_is_plain_federation(benchmark):
    left = person_database("census", 150, ssn_pool=150, seed=7)
    right = person_database("payroll", 150, ssn_pool=150, seed=8)
    sources = [
        (person_schema(with_key=False), left),
        (person_schema(with_key=False), right),
    ]

    result = benchmark(fuse, sources, value_classes=VALUE_CLASSES)

    assert result.identified == 0
    assert len(result.instance.extent("Person")) == 300


def test_corr_ablate_value_sharing(benchmark):
    """Ablation: disjointifying *everything* (as plain federation does)
    silently defeats key identification — equal social-security numbers
    from different databases become different oids, so nothing matches.
    Sharing the designated value classes is what makes cross-database
    keys meaningful."""
    left = person_database("census", 100, ssn_pool=150, seed=9)
    right = person_database("payroll", 100, ssn_pool=150, seed=10)
    sources = [
        (person_schema(with_key=True), left),
        (person_schema(with_key=True), right),
    ]

    def run():
        shared = fuse(sources, value_classes=VALUE_CLASSES)
        fully_disjoint = fuse(sources, value_classes=[])
        return shared, fully_disjoint

    shared, fully_disjoint = benchmark(run)

    assert shared.identified > 0  # the pools overlap by construction
    assert fully_disjoint.identified == 0
    assert len(fully_disjoint.instance.extent("Person")) == 200


def test_corr_analysis_scales_over_random_family(benchmark):
    """Correspondence analysis over a random keyed federation."""
    family = random_keyed_family(
        n_schemas=4, pool_size=24, n_classes=12, n_labels=6, seed=99
    )

    rows = benchmark(analyze_correspondence, family)

    # Every row concerns a genuinely shared class and carries a verdict.
    for row in rows:
        assert len(row.holders) >= 2
        assert isinstance(row.status, CorrespondenceStatus)
