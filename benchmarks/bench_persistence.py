"""Persistence benchmark — durable-registry cost and warm-restart payoff.

Measures the two sides of the ``repro.service.storage`` bargain on the
service acceptance family (the ``service-sharded-200`` workload):

* **warm restart** — a killed-and-restarted service recovers from the
  newest snapshot cut plus the log suffix (``MergeService.open``), and
  the recovery leaves it ready to serve: the *first* ``merged_view``
  after restart is gated ≥ 10x faster than a cold ``join_all`` over
  the same schemas with the engine caches cleared (what every request
  would cost if the restart had to refold).  The recovery wall time
  itself and the no-snapshot full-log-replay restart are reported as
  informational records.
* **log-append overhead** — the write path of the *operating* service:
  the stream's register requests each cost one sealed JSONL append.
  The append's software cost (encode + buffered write + flush) is
  micro-measured per logged record and amortized over the acceptance
  request stream; the gate is ≤ 10% of the in-memory stream replay
  wall.  The fsync is priced separately (``fsync_cost_s`` /
  ``stream_overhead_fsync``): it is the durability rent paid to the
  filesystem, not bookkeeping the log format can shrink, so it is
  reported, not gated.

Run via the suite runner::

    PYTHONPATH=src python benchmarks/runner.py --suite persistence

or standalone::

    PYTHONPATH=src python benchmarks/bench_persistence.py [--smoke]
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _candidate in (_HERE, os.path.join(_ROOT, "src")):
    if _candidate not in sys.path:
        sys.path.insert(0, _candidate)

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.generators.workloads import get_request_stream
from repro.perf import clear_caches
from repro.perf.timing import time_call
from repro.service.bench import replay
from repro.service.service import MergeService
from repro.service.storage import (
    FileBackend,
    LogRecord,
    RegistrationEntry,
)

__all__ = ["run_persistence_bench"]

APPEND_OVERHEAD_BUDGET = 0.10
MIN_RESTART_SPEEDUP = 10.0


def _pod_batches(initial: List[Schema], per_batch: int) -> List[List[Schema]]:
    """The initial family as register-sized batches (one per pod)."""
    return [
        initial[start : start + per_batch]
        for start in range(0, len(initial), per_batch)
    ]


def _populate(data_dir: str, batches: List[List[Schema]]) -> MergeService:
    service = MergeService.open(data_dir)
    for batch in batches:
        service.register(batch)
    return service


def _measure_restart(
    data_dir: str, repeat: int
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """(recovery wall, first-view latency) for a snapshot-led restart."""
    recover_runs: List[float] = []
    view_runs: List[float] = []
    for _ in range(repeat):
        clear_caches()
        start = time.perf_counter()
        service = MergeService.open(data_dir)
        mid = time.perf_counter()
        service.merged_view()
        done = time.perf_counter()
        service.close()
        recover_runs.append(mid - start)
        view_runs.append(done - mid)
    return (
        {
            "best_s": min(recover_runs),
            "mean_s": sum(recover_runs) / len(recover_runs),
            "repeat": repeat,
            "runs": recover_runs,
        },
        {
            "best_s": min(view_runs),
            "mean_s": sum(view_runs) / len(view_runs),
            "repeat": repeat,
            "runs": view_runs,
        },
    )


def _append_cost_s(records: List[LogRecord], fsync: bool, repeat: int) -> float:
    """Best-of-*repeat* total cost of appending *records* to a fresh log."""
    runs: List[float] = []
    for _ in range(repeat):
        data_dir = tempfile.mkdtemp(prefix="bench-persist-append-")
        try:
            backend = FileBackend(data_dir, fsync=fsync)
            start = time.perf_counter()
            for record in records:
                backend.append(record)
            runs.append(time.perf_counter() - start)
            backend.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return min(runs)


def run_persistence_bench(smoke: bool = False, repeat: int = 5) -> Dict[str, Any]:
    """Measure restart payoff and append overhead; return a JSON-able dict."""
    workload = "service-sharded-small" if smoke else "service-sharded-200"
    stream = get_request_stream(workload)
    initial, requests = stream.make()
    request_list = list(requests)
    per_batch = 5 if smoke else 10  # the workload's per-pod schema count
    batches = _pod_batches(initial, per_batch)

    # --- warm restart vs cold join_all ---------------------------------
    data_dir = tempfile.mkdtemp(prefix="bench-persist-restart-")
    try:
        writer = _populate(data_dir, batches)
        writer.save()  # cut the snapshot a clean shutdown would leave
        expected = writer.merged_view()
        writer.close()

        cold = time_call(
            lambda: join_all(initial), repeat=repeat, setup=clear_caches
        )

        recovery, first_view = _measure_restart(data_dir, repeat)
        check = MergeService.open(data_dir)
        restored = check.merged_view()
        check.close()
        if restored != expected:
            raise AssertionError("restarted view differs from the original")

        # Worst case: no snapshot survives, every record replays.
        manifest = os.path.join(data_dir, FileBackend.MANIFEST_NAME)
        with open(manifest, "rb") as handle:
            manifest_bytes = handle.read()
        os.unlink(manifest)
        try:
            replay_recovery, replay_view = _measure_restart(data_dir, repeat)
        finally:
            with open(manifest, "wb") as handle:
                handle.write(manifest_bytes)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    # --- log-append overhead on the write path -------------------------
    # The operating service's write path: every register request in the
    # acceptance stream commits one log record.  Encode cost is real
    # software overhead; the fsync is the durability price of the disk.
    stream_registers = [
        LogRecord(
            kind="register",
            generation=index + 1,
            entries=(RegistrationEntry(payload),),
        )
        for index, (kind, payload) in enumerate(request_list)
        if kind == "register"
    ]
    append_soft_s = _append_cost_s(stream_registers, fsync=False, repeat=repeat)
    append_fsync_s = _append_cost_s(stream_registers, fsync=True, repeat=repeat)

    replay_service = MergeService(initial)
    try:
        stream_wall = time_call(
            lambda: replay(replay_service, request_list),
            repeat=repeat,
            warmup=1,
        )
    finally:
        replay_service.close()

    overhead_soft = append_soft_s / stream_wall["best_s"]
    overhead_fsync = append_fsync_s / stream_wall["best_s"]
    restart_speedup = cold["best_s"] / first_view["best_s"]
    summary = {
        "workload": workload,
        "smoke": smoke,
        "schemas": len(initial),
        "stream_requests": len(request_list),
        "stream_registers": len(stream_registers),
        "append_cost_soft_s": append_soft_s,
        "append_cost_fsync_s": append_fsync_s,
        "stream_overhead_soft": overhead_soft,
        "stream_overhead_fsync": overhead_fsync,
        "append_overhead_budget": APPEND_OVERHEAD_BUDGET,
        # Smoke streams are a handful of requests, so a fixed append
        # cost reads as a huge fraction; like the other suites, the
        # numeric floors only gate full runs (the restored-view
        # equality assertion holds in both modes).
        "append_overhead_ok": smoke
        or overhead_soft <= APPEND_OVERHEAD_BUDGET,
        "restart_speedup_vs_cold_join_all": restart_speedup,
        "recovery_wall_s": recovery["best_s"],
        "replay_recovery_wall_s": replay_recovery["best_s"],
        "min_restart_speedup": MIN_RESTART_SPEEDUP,
        "restart_ok": smoke or restart_speedup >= MIN_RESTART_SPEEDUP,
    }
    return {
        "timings": {
            "join_all_cold": cold,
            "recovery": recovery,
            "first_view_after_restart": first_view,
            "replay_recovery": replay_recovery,
            "first_view_after_replay": replay_view,
            "stream_replay_memory": stream_wall,
        },
        "summary": summary,
    }


def main(argv: List[str] = None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    result = run_persistence_bench(smoke=smoke)
    summary = result["summary"]
    timings = result["timings"]
    print(
        f"persistence ({summary['workload']}, {summary['schemas']} schemas):"
    )
    print(
        f"  restart: cold join_all {timings['join_all_cold']['best_s'] * 1e3:.2f} ms, "
        f"first view after restart "
        f"{timings['first_view_after_restart']['best_s'] * 1e6:.1f} us "
        f"({summary['restart_speedup_vs_cold_join_all']:.0f}x); recovery "
        f"{summary['recovery_wall_s'] * 1e3:.1f} ms from snapshot, "
        f"{summary['replay_recovery_wall_s'] * 1e3:.1f} ms from full replay"
    )
    print(
        f"  write path: {summary['stream_registers']} register(s) in "
        f"{summary['stream_requests']} requests; append software cost "
        f"{summary['append_cost_soft_s'] * 1e3:.2f} ms "
        f"({summary['stream_overhead_soft'] * 100:.1f}% of the stream), "
        f"with fsync {summary['append_cost_fsync_s'] * 1e3:.2f} ms "
        f"({summary['stream_overhead_fsync'] * 100:.1f}%)"
    )
    ok = summary["append_overhead_ok"] and summary["restart_ok"]
    print(f"  acceptance: {'pass' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
