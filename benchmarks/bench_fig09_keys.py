"""FIG9 — Advisor ==> Committee: keys express cardinalities (§5).

Merging the Advisor view (one-to-many, key {victim}) with the Committee
view (many-many, key {faculty, victim}) under the assertion
Advisor ==> Committee must satisfy SK(Advisor) ⊇ SK(Committee) and
reproduce exactly the paper's key families.
"""

from repro.core.assertions import isa
from repro.core.keys import KeyFamily, merge_keyed
from repro.figures import (
    figure9_advisor_schema,
    figure9_committee_schema,
    figure9_keyed_schema,
)
from repro.models.er import ERRelationship, cardinality_keys


def test_fig09_keyed_merge(benchmark):
    advisor = figure9_advisor_schema()
    committee = figure9_committee_schema()

    merged = benchmark(
        merge_keyed, advisor, committee,
        assertions=[isa("Advisor", "Committee")],
    )
    expected = figure9_keyed_schema()
    assert merged.schema == expected.schema
    assert merged.keys_of("Advisor") == KeyFamily.of({"victim"})
    assert merged.keys_of("Committee") == KeyFamily.of(
        {"faculty", "victim"}
    )
    # The section 5 constraint, exactly as the paper states it:
    # {{victim}, {faculty, victim}}-closure ⊇ {{faculty, victim}}-closure.
    assert merged.keys_of("Advisor").contains_family(
        merged.keys_of("Committee")
    )


def test_fig09_cardinality_to_key_rule(benchmark):
    advisor = ERRelationship(
        "Advisor",
        roles={"faculty": "Faculty", "victim": "GS"},
        cardinalities={"faculty": "1"},
    )
    committee = ERRelationship(
        "Committee", roles={"faculty": "Faculty", "victim": "GS"}
    )

    def derive():
        return cardinality_keys(advisor), cardinality_keys(committee)

    advisor_keys, committee_keys = benchmark(derive)
    # faculty edge labelled "1"  ⇔  {victim} is a key (the paper's rule).
    assert advisor_keys == KeyFamily.of({"victim"})
    # many-many  ⇔  full role set.
    assert committee_keys == KeyFamily.of({"faculty", "victim"})
