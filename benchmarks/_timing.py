"""The one trajectory-JSON helper shared by conftest and runner.

The timing kernel itself lives in :mod:`repro.perf.timing` (re-exported
here) so that in-package callers (:mod:`repro.service.bench`) measure
identically without importing the benchmarks tree.

``benchmarks/conftest.py`` (pytest runs) and ``benchmarks/runner.py``
(the CI harness) both emit trajectory files through :func:`write_trajectory`,
so the two paths produce byte-compatible artifacts: same schema version,
same record shape, same serialization (sorted keys, two-space indent,
trailing newline, no timestamps — wall-clock values are data, not
metadata, and nothing else in the file varies between runs of identical
measurements).

Record shape (``TRAJECTORY_SCHEMA_VERSION`` guards it)::

    {
      "name":   "join_all/200",        # unique within the file
      "group":  "scalability",         # free-form grouping key
      "timing": {"best_s": .., "mean_s": .., "repeat": n, "runs": [..]},
      ...                              # any extra JSON-able fields
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

from repro.perf.timing import time_call

TRAJECTORY_SCHEMA_VERSION = 1

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "time_call",
    "record",
    "trajectory",
    "write_trajectory",
]


def record(name: str, group: str, timing: Dict[str, Any], **extra: Any) -> Dict[str, Any]:
    """One canonical trajectory record."""
    entry: Dict[str, Any] = {"name": name, "group": group, "timing": timing}
    entry.update(extra)
    return entry


def trajectory(
    records: Iterable[Dict[str, Any]],
    suite: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full trajectory payload for a suite run."""
    return {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "suite": suite,
        "meta": meta or {},
        "records": sorted(records, key=lambda r: (r["group"], r["name"])),
    }


def write_trajectory(
    path: str,
    records: Iterable[Dict[str, Any]],
    suite: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize a trajectory to *path* in the canonical byte format."""
    payload = trajectory(records, suite, meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
