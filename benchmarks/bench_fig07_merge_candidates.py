"""FIG7 — G3 (the merge) vs G4 (an over-strong upper bound) (§3).

The paper's argument for taking the *least* upper bound: G4 also
presents all the information of G1 and G2 and has fewer classes than
G3, but it asserts extra information (F's a-arrow lands in E) that
neither input stated.  The benchmark rebuilds both candidates and
checks every claim the prose makes about them.
"""

from repro.core.implicit import implicit_classes_of, properize
from repro.core.merge import weak_merge
from repro.core.names import BaseName
from repro.core.ordering import is_sub
from repro.core.proper import is_proper
from repro.figures import (
    figure6_schemas,
    figure7_candidate_g3_description,
    figure7_candidate_g4,
)


def test_fig07_g3_is_the_properized_merge(benchmark):
    g1, g2 = figure6_schemas()
    g3 = benchmark(lambda: properize(weak_merge(g1, g2)))
    facts = figure7_candidate_g3_description()
    assert is_proper(g3)
    assert {
        str(c) for c in g3.classes if isinstance(c, BaseName)
    } == facts["base_classes"]
    implicits = implicit_classes_of(g3)
    assert len(implicits) == facts["implicit_count"]
    (imp,) = implicits
    assert {str(m) for m in imp.members} == facts["implicit_below"]


def test_fig07_g4_is_an_upper_bound_with_fewer_classes(benchmark):
    g1, g2 = figure6_schemas()

    def build():
        return figure7_candidate_g4(), properize(weak_merge(g1, g2))

    g4, g3 = benchmark(build)
    weak = weak_merge(g1, g2)
    assert is_proper(g4)
    assert is_sub(weak, g4)
    assert len(g4.classes) < len(g3.classes)


def test_fig07_g4_asserts_extra_information(benchmark):
    g1, g2 = figure6_schemas()
    g4 = benchmark(figure7_candidate_g4)
    weak = weak_merge(g1, g2)
    # G4 types F's a-arrow at E — neither input said that.
    assert g4.has_arrow("F", "a", "E")
    assert not weak.has_arrow("F", "a", "E")
    assert not g1.has_class("F") or not g1.has_arrow("F", "a", "E")
    assert not g2.has_arrow("F", "a", "E")
