"""FIG1/FIG2 — the Dog/Kennel ER diagram and its translation (§2).

Regenerates Figure 1 (the ER diagram), translates it into the general
model and asserts structural equality with Figure 2 as drawn in the
paper, then round-trips back.  The timed kernel is the full
translate → verify → translate-back pipeline.
"""

from repro.figures import figure1_er_diagram, figure2_schema
from repro.models.er import from_schema, to_schema


def test_fig01_02_translation_round_trip(benchmark):
    diagram = figure1_er_diagram()
    expected = figure2_schema()

    def pipeline():
        stratified = to_schema(diagram)
        back = from_schema(stratified)
        return stratified, back

    stratified, back = benchmark(pipeline)
    # FIG2: the translation is exactly the paper's Figure 2 schema.
    assert stratified.schema == expected
    # The translation loses nothing: Figure 1 is recovered.
    assert back == diagram
    # The paper's drawing shows the inherited kind/age arrows, which the
    # W1 closure restores.
    for dog in ("Dog", "Police-dog", "Guide-dog"):
        assert stratified.schema.has_arrow(dog, "kind", "Breed")
        assert stratified.schema.has_arrow(dog, "age", "Int")


def test_fig01_strata_assignment(benchmark):
    diagram = figure1_er_diagram()
    stratified = benchmark(to_schema, diagram)
    assert stratified.stratum_of("Lives") == "relationship"
    assert stratified.stratum_of("Dog") == "entity"
    assert stratified.stratum_of("Int") == "domain"
    assert len(stratified.classes_in("entity")) == 4
