"""LAWS — associativity/commutativity/idempotence at workload scale (§4).

The qualitative claim FIG5 demonstrates on a toy example, re-verified on
the named random workloads with timing: every merge order of every
family yields one schema.
"""

from itertools import permutations

import pytest

from repro.core.merge import upper_merge
from repro.generators.workloads import get_workload


@pytest.mark.parametrize("workload", ["views-small", "federation-wide"])
def test_laws_all_orders_agree(benchmark, workload):
    schemas = get_workload(workload).schemas()[:4]

    def all_orders():
        return {
            upper_merge(*(schemas[i] for i in order))
            for order in permutations(range(len(schemas)))
        }

    results = benchmark(all_orders)
    assert len(results) == 1


@pytest.mark.parametrize("workload", ["views-small", "views-medium"])
def test_laws_nary_equals_fold(benchmark, workload):
    schemas = get_workload(workload).schemas()

    def fold():
        result = schemas[0]
        for nxt in schemas[1:]:
            result = upper_merge(result, nxt)
        return result

    folded = benchmark(fold)
    assert folded == upper_merge(*schemas)


def test_laws_idempotence_and_identity(benchmark):
    schemas = get_workload("views-small").schemas()

    def laws():
        merged = upper_merge(*schemas)
        again = upper_merge(merged, merged)
        with_inputs = upper_merge(merged, *schemas)
        return merged, again, with_inputs

    merged, again, with_inputs = benchmark(laws)
    assert merged == again == with_inputs
