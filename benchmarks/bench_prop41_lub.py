"""PROP41 — Proposition 4.1 at scale: bounded joins over random inputs.

For every compatible family, the join must exist, be an upper bound and
be least; for incompatible families it must fail with a witness cycle.
The timed kernel measures join construction over the named workloads.
"""

import pytest

from repro.core.ordering import (
    compatibility_cycle,
    is_sub,
    join_all,
)
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError
from repro.generators.random_schemas import random_schema_family
from repro.generators.workloads import get_workload


@pytest.mark.parametrize("workload", ["views-small", "views-medium"])
def test_prop41_join_exists_and_is_lub(benchmark, workload):
    schemas = get_workload(workload).schemas()
    joined = benchmark(join_all, schemas)
    for schema in schemas:
        assert is_sub(schema, joined)
    # Least: the join of (join, anything above) stays above; and the
    # construction matches the proof (component unions + closure).
    assert joined.classes == frozenset().union(
        *(g.classes for g in schemas)
    )


def test_prop41_randomized_sweep(benchmark):
    def sweep():
        checked = 0
        for seed in range(20):
            family = random_schema_family(
                n_schemas=3, pool_size=14, n_classes=7, seed=seed
            )
            joined = join_all(family)
            assert all(is_sub(g, joined) for g in family)
            checked += 1
        return checked

    assert benchmark(sweep) == 20


def test_prop41_incompatibility_detected(benchmark):
    one = Schema.build(spec=[("A", "B"), ("X", "Y")])
    two = Schema.build(spec=[("B", "C")])
    three = Schema.build(spec=[("C", "A")])

    def attempt():
        cycle = compatibility_cycle([one, two, three])
        try:
            join_all([one, two, three])
        except IncompatibleSchemasError as exc:
            return cycle, exc.cycle
        return cycle, None

    witness, raised = benchmark(attempt)
    assert witness is not None
    assert raised, "join_all must refuse incompatible families"
    assert raised[0] == raised[-1]
