"""OO — the object-oriented model's merge-by-translation pipeline (§2, §7).

Section 2 claims the general model captures object-oriented features
(object identity, higher-order references, circular definitions);
section 7 claims merging within a restricted model works by translate →
merge → translate back because the merge preserves strata.  These
benches exercise both claims on synthetic class libraries: round trips
are the identity, merges are order-independent at the OO level, and the
Figure 3 implicit-class pattern survives the round trip with its
origin-recording name.
"""

import random

import pytest

from repro.core.names import ImplicitName, name
from repro.models.oo import (
    OOAttribute,
    OOClass,
    OODiagram,
    from_schema,
    merge_oo,
    to_schema,
)

VALUE_TYPES = ["Int", "Str", "Money", "Date"]


def synthetic_library(
    classes: int, seed: int, prefix: str = "C"
) -> OODiagram:
    """A random class library with inheritance, references and cycles.

    Class ``i`` may inherit from lower-numbered classes (acyclic ISA,
    as the model requires) but may *reference* any class, including
    higher-numbered ones and itself — the reference graph is cyclic.
    Attribute labels embed the seed so two libraries over the same
    class names never claim the same attribute with clashing types
    (which would be a genuine structural conflict, tested separately).
    """
    rng = random.Random(seed)
    definitions = []
    names = [f"{prefix}{i}" for i in range(classes)]
    for i, cls_name in enumerate(names):
        attributes = []
        for a in range(rng.randrange(1, 4)):
            if rng.random() < 0.5:
                target = rng.choice(VALUE_TYPES)
            else:
                target = rng.choice(names)  # references may be circular
            attributes.append(OOAttribute(f"attr{seed}_{i}_{a}", target))
        bases = []
        if i and rng.random() < 0.4:
            bases = rng.sample(names[:i], rng.randrange(1, min(3, i + 1)))
        definitions.append(
            OOClass(cls_name, attributes=attributes, bases=bases)
        )
    return OODiagram(classes=definitions)


@pytest.mark.parametrize("size", [20, 60])
def test_oo_roundtrip_is_identity(benchmark, size):
    diagram = synthetic_library(size, seed=size)

    def round_trip():
        return from_schema(to_schema(diagram))

    recovered = benchmark(round_trip)
    assert recovered == diagram


def test_oo_merge_order_independence(benchmark):
    """All six merge orders of three overlapping libraries agree."""
    import itertools

    base = synthetic_library(15, seed=5)
    overlay = synthetic_library(15, seed=6)
    extra = synthetic_library(10, seed=7, prefix="D")

    def all_orders():
        return [
            merge_oo(*order)
            for order in itertools.permutations([base, overlay, extra])
        ]

    results = benchmark(all_orders)
    assert all(result == results[0] for result in results)


def test_oo_merge_unions_attributes(benchmark):
    one = OODiagram(
        classes=[
            OOClass("Person", [OOAttribute("name", "Str")]),
            OOClass(
                "Employee",
                [OOAttribute("salary", "Money")],
                bases=("Person",),
            ),
        ]
    )
    two = OODiagram(
        classes=[
            OOClass("Person", [OOAttribute("age", "Int")]),
            OOClass("Team", [OOAttribute("lead", "Person")]),
        ]
    )

    merged = benchmark(merge_oo, one, two)

    assert merged.all_attributes("Employee") == {
        "name": "Str",
        "age": "Int",
        "salary": "Money",
    }


def test_oo_figure3_pattern_survives_round_trip(benchmark):
    """The Figure 3 implicit class, inside the OO model: a class
    inheriting from two classes whose same-named references have
    different types forces an origin-named implicit class."""
    hierarchy = OODiagram(
        classes=[
            OOClass("A1"),
            OOClass("A2"),
            OOClass("C", bases=("A1", "A2")),
        ]
    )
    references = OODiagram(
        classes=[
            OOClass("A1", [OOAttribute("a", "B1")]),
            OOClass("A2", [OOAttribute("a", "B2")]),
            OOClass("B1"),
            OOClass("B2"),
        ]
    )

    merged = benchmark(merge_oo, hierarchy, references)

    implicit = str(ImplicitName([name("B1"), name("B2")]))
    assert implicit in merged.class_names()
    assert set(merged.get_class(implicit).bases) == {"B1", "B2"}
    # C's inherited reference lands on the implicit class.
    assert merged.all_attributes("C")["a"] == implicit
