#!/usr/bin/env python
"""Benchmark runner — one trajectory artifact for CI and local runs.

Runs the merge-engine scalability/memoization cases in-process (timed
through :mod:`benchmarks._timing`, the same helper the pytest conftest
uses, so both paths emit byte-compatible trajectory files) and, in full
mode, every ``bench_*.py`` suite via pytest with JSON output folded into
the same artifact.

Usage::

    PYTHONPATH=src python benchmarks/runner.py               # full run
    PYTHONPATH=src python benchmarks/runner.py --smoke       # CI smoke
    PYTHONPATH=src python benchmarks/runner.py --json out.json

Full mode enforces the acceptance bar: the 200-schema ``join_all`` case
must be at least ``--min-speedup`` (default 5.0) times faster than the
preserved pre-engine reference implementation, else exit 1.  Smoke mode
uses smaller sizes, skips the pytest sweep and only records ratios.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
from typing import Any, Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
for _candidate in (os.path.join(_ROOT, "src"),):
    if _candidate not in sys.path:
        sys.path.insert(0, _candidate)

from _timing import record, time_call, write_trajectory  # noqa: E402

from repro.core.lower import lower_merge  # noqa: E402
from repro.core.ordering import is_sub, join_all  # noqa: E402
from repro.generators.random_schemas import (  # noqa: E402
    random_annotated_schema,
    random_schema_family,
)
from repro.perf import clear_caches, engine_stats  # noqa: E402
from repro.perf.reference import (  # noqa: E402
    reference_is_sub,
    reference_join_all,
    reference_lower_merge,
)

ACCEPTANCE_SIZE = 200


def _family(n_schemas: int) -> List[Any]:
    return random_schema_family(
        n_schemas=n_schemas,
        pool_size=60,
        n_classes=14,
        n_labels=6,
        arrow_density=0.2,
        spec_density=0.08,
        seed=7,
    )


def run_scalability(sizes: List[int], repeat: int) -> List[Dict[str, Any]]:
    """join_all versus the pre-engine reference across family sizes."""
    records: List[Dict[str, Any]] = []
    for size in sizes:
        family = _family(size)
        results: Dict[str, Any] = {}
        engine = time_call(
            lambda: results.__setitem__("engine", join_all(family)),
            repeat=repeat,
            setup=clear_caches,
        )
        reference = time_call(
            lambda: results.__setitem__("ref", reference_join_all(family)),
            repeat=repeat,
        )
        if results["engine"] != results["ref"]:
            raise AssertionError(f"engine result differs at size {size}")
        speedup = reference["best_s"] / engine["best_s"]
        print(
            f"  join_all/{size}: engine {engine['best_s'] * 1000:.1f} ms, "
            f"reference {reference['best_s'] * 1000:.1f} ms "
            f"({speedup:.1f}x)"
        )
        records.append(
            record(
                f"join_all/{size}",
                "scalability",
                engine,
                schemas=size,
                acceptance=(size == ACCEPTANCE_SIZE),
                speedup_vs_reference=speedup,
            )
        )
        records.append(
            record(
                f"reference_join_all/{size}",
                "scalability",
                reference,
                schemas=size,
            )
        )
    return records


def run_memoization(repeat: int) -> List[Dict[str, Any]]:
    """Warm is_sub versus the unmemoized containment test."""
    family = _family(80)
    merged = join_all(family)
    pairs = [(g, merged) for g in family]

    def probe() -> int:
        return sum(1 for left, right in pairs if is_sub(left, right))

    def probe_reference() -> int:
        return sum(1 for left, right in pairs if reference_is_sub(left, right))

    if probe() != probe_reference():
        raise AssertionError("memoized is_sub disagrees with reference")
    warm = time_call(probe, repeat=repeat)
    cold = time_call(probe_reference, repeat=repeat)
    return [
        record("is_sub/warm", "memoization", warm, pairs=len(pairs)),
        record("is_sub/cold", "memoization", cold, pairs=len(pairs)),
    ]


def run_lower(repeat: int, count: int) -> List[Dict[str, Any]]:
    """lower_merge versus the pre-engine per-arrow-lookup version."""
    schemas = [
        random_annotated_schema(
            n_classes=12, n_labels=5, arrow_density=0.25, seed=i
        )
        for i in range(count)
    ]
    if lower_merge(*schemas) != reference_lower_merge(*schemas):
        raise AssertionError("lower_merge disagrees with reference")
    engine = time_call(lambda: lower_merge(*schemas), repeat=repeat)
    reference = time_call(lambda: reference_lower_merge(*schemas), repeat=repeat)
    return [
        record(f"lower_merge/{count}", "lower", engine, schemas=count),
        record(
            f"reference_lower_merge/{count}", "lower", reference, schemas=count
        ),
    ]


def run_pytest_suites(skip: List[str]) -> List[Dict[str, Any]]:
    """Run every bench_*.py through pytest, folding its JSON output.

    Legacy suites use pytest-benchmark (``--benchmark-json``); the
    engine suite uses the conftest's ``--bench-json``.  Either way the
    stats land in the same trajectory records.
    """
    records: List[Dict[str, Any]] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    for path in sorted(glob.glob(os.path.join(_HERE, "bench_*.py"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        if stem in skip:
            continue
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        uses_conftest_timer = stem == "bench_merge_engine"
        cmd = [sys.executable, "-m", "pytest", path, "-q"]
        if uses_conftest_timer:
            cmd += ["--bench-json", out_path]
        else:
            cmd += ["--benchmark-only", f"--benchmark-json={out_path}"]
        print(f"  pytest {stem} ...", flush=True)
        try:
            proc = subprocess.run(
                cmd, env=env, cwd=_ROOT, capture_output=True, text=True
            )
            if proc.returncode != 0:
                records.append(
                    record(
                        stem,
                        "pytest",
                        {
                            "best_s": None,
                            "mean_s": None,
                            "repeat": 0,
                            "runs": [],
                        },
                        error=proc.stdout[-2000:] + proc.stderr[-2000:],
                    )
                )
                continue
            try:
                with open(out_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError) as exc:
                # Suite exited 0 but left no readable JSON (e.g. plugin
                # missing): record it rather than silently omitting the
                # suite from the artifact.
                records.append(
                    record(
                        stem,
                        "pytest",
                        {
                            "best_s": None,
                            "mean_s": None,
                            "repeat": 0,
                            "runs": [],
                        },
                        error=f"no benchmark JSON produced: {exc}",
                    )
                )
                continue
        finally:
            try:
                os.unlink(out_path)
            except OSError:
                pass
        if uses_conftest_timer:
            for entry in payload.get("records", []):
                entry = dict(entry)
                entry["group"] = f"pytest/{stem}"
                records.append(entry)
        else:
            for bench in payload.get("benchmarks", []):
                stats = bench.get("stats", {})
                records.append(
                    record(
                        bench.get("name", stem),
                        f"pytest/{stem}",
                        {
                            "best_s": stats.get("min"),
                            "mean_s": stats.get("mean"),
                            "repeat": stats.get("rounds", 0),
                            "runs": [],
                        },
                    )
                )
    return records


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no pytest sweep, no speedup gate (CI smoke job)",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(_ROOT, "BENCH_merge_engine.json"),
        help="trajectory output path (default: repo-root BENCH_merge_engine.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="acceptance floor for the 200-schema join_all case (full mode)",
    )
    parser.add_argument(
        "--skip-pytest-suite",
        action="store_true",
        help="skip the per-file pytest sweep even in full mode",
    )
    args = parser.parse_args(argv)

    sizes = [40, 80] if args.smoke else [50, 100, ACCEPTANCE_SIZE, 320]
    repeat = 3 if args.smoke else 5

    print("merge-engine scalability:")
    records = run_scalability(sizes, repeat)
    print("memoization:")
    records += run_memoization(repeat)
    print("lower merge:")
    records += run_lower(repeat, count=10 if args.smoke else 30)
    if not args.smoke and not args.skip_pytest_suite:
        print("pytest suites:")
        records += run_pytest_suites(skip=[])

    acceptance = [
        r
        for r in records
        if r.get("acceptance") and r.get("speedup_vs_reference") is not None
    ]
    summary: Dict[str, Any] = {"smoke": args.smoke}
    if acceptance:
        summary["join_all_speedup"] = acceptance[0]["speedup_vs_reference"]
        summary["min_speedup_required"] = None if args.smoke else args.min_speedup
        summary["acceptance_pass"] = args.smoke or (
            acceptance[0]["speedup_vs_reference"] >= args.min_speedup
        )
    write_trajectory(
        args.json,
        records,
        suite="merge_engine",
        meta={"summary": summary, "engine_stats": engine_stats()},
    )
    print(f"wrote {args.json}")
    if summary.get("acceptance_pass") is False:
        print(
            f"FAIL: join_all speedup {summary['join_all_speedup']:.2f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if "join_all_speedup" in summary:
        print(f"join_all speedup: {summary['join_all_speedup']:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
