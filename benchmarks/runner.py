#!/usr/bin/env python
"""Benchmark runner — one trajectory artifact per suite for CI and local runs.

Suites register themselves in :data:`SUITES` (``@suite(...)``); each one
produces a list of trajectory records plus a summary, is written to its
own ``BENCH_<name>.json`` at the repo root, and may enforce an
acceptance bar (exit 1 on failure).  Adding a suite is one decorated
function — no copy-paste of argument parsing, timing or serialization.

Current suites:

* ``merge_engine`` — the engine against the preserved pre-engine
  reference (``join_all`` scalability, memoized ``is_sub`` /
  ``compatible``, lower merge with ``annotated_leq``) and the dense
  bitset kernels against the preserved set-based engine
  (:mod:`repro.perf.setwise`), plus, in full mode, every ``bench_*.py``
  via pytest.  Acceptance: 200-schema ``join_all`` ≥ ``--min-speedup``
  (5x) over the reference AND 320-schema ``join_all`` ≥
  ``--min-kernel-speedup`` (5x) over the set-based engine.
* ``service`` — the long-lived :class:`repro.service.MergeService`
  replaying named request streams (:mod:`repro.generators.workloads`).
  Acceptance: warm ``merged_view`` ≥ ``--min-view-speedup`` (10x) over
  cold ``join_all`` on the 200-schema sharded workload, and a
  registration must invalidate only its own component.  Replays run
  with telemetry on, so records carry p50/p95/p99 request latencies and
  cache hit rates, and the acceptance workload's spans + metrics land
  in ``TELEMETRY_service.jsonl`` (uploaded by the CI smoke job).
* ``persistence`` — the durable registry
  (``benchmarks/bench_persistence.py``): snapshot-led warm restarts
  and the write path's log-append cost.  Acceptance: the first
  ``merged_view`` after restart ≥ ``--min-restart-speedup`` (10x) over
  a cold ``join_all``, and the appends' software cost ≤ 10% of the
  acceptance request stream (fsync reported separately).
* ``http`` — the asyncio front end (``benchmarks/bench_http.py``): a
  real ``serve --http`` subprocess under 1/4/16 concurrent writer
  connections.  Acceptance (full mode, multi-core hosts): 16-writer
  disjoint throughput ≥ 2x single-writer, and warm reads stay
  non-blocking while a large register is in flight.

Usage::

    PYTHONPATH=src python benchmarks/runner.py                  # all suites
    PYTHONPATH=src python benchmarks/runner.py --suite service
    PYTHONPATH=src python benchmarks/runner.py --smoke          # CI smoke
    PYTHONPATH=src python benchmarks/runner.py --suite service --json out.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
from typing import Any, Callable, Dict, List, NamedTuple, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
for _candidate in (os.path.join(_ROOT, "src"),):
    if _candidate not in sys.path:
        sys.path.insert(0, _candidate)

from _timing import record, time_call, write_trajectory  # noqa: E402

from repro.core.lower import annotated_leq, lower_merge  # noqa: E402
from repro.core.ordering import compatible, is_sub, join_all  # noqa: E402
from repro.generators.random_schemas import (  # noqa: E402
    random_annotated_schema,
    random_schema_family,
)
from repro.perf import clear_caches, engine_stats  # noqa: E402
from repro.perf.reference import (  # noqa: E402
    reference_is_sub,
    reference_join_all,
    reference_lower_merge,
)

ACCEPTANCE_SIZE = 200
KERNEL_ACCEPTANCE_SIZE = 320

# Suites whose bench_*.py files time through the conftest ``perf_record``
# fixture (--bench-json) rather than pytest-benchmark.
_CONFTEST_TIMER_SUITES = {
    "bench_merge_engine",
    "bench_obs_overhead",
    "bench_service",
}

SuiteResult = Tuple[List[Dict[str, Any]], Dict[str, Any]]


class Suite(NamedTuple):
    """One registered benchmark suite."""

    name: str
    default_json: str
    run: Callable[[argparse.Namespace], SuiteResult]


SUITES: Dict[str, Suite] = {}


def suite(name: str, default_json: str):
    """Register a suite function: ``(args) -> (records, meta)``.

    *meta* must contain a ``summary`` dict; if that carries
    ``acceptance_pass: False`` the runner exits non-zero after writing
    every artifact.
    """

    def register(fn: Callable[[argparse.Namespace], SuiteResult]):
        SUITES[name] = Suite(name, default_json, fn)
        return fn

    return register


def _family(n_schemas: int) -> List[Any]:
    return random_schema_family(
        n_schemas=n_schemas,
        pool_size=60,
        n_classes=14,
        n_labels=6,
        arrow_density=0.2,
        spec_density=0.08,
        seed=7,
    )


def run_scalability(sizes: List[int], repeat: int) -> List[Dict[str, Any]]:
    """join_all versus the pre-engine reference across family sizes."""
    records: List[Dict[str, Any]] = []
    for size in sizes:
        family = _family(size)
        results: Dict[str, Any] = {}
        engine = time_call(
            lambda: results.__setitem__("engine", join_all(family)),
            repeat=repeat,
            setup=clear_caches,
        )
        reference = time_call(
            lambda: results.__setitem__("ref", reference_join_all(family)),
            repeat=repeat,
        )
        if results["engine"] != results["ref"]:
            raise AssertionError(f"engine result differs at size {size}")
        speedup = reference["best_s"] / engine["best_s"]
        print(
            f"  join_all/{size}: engine {engine['best_s'] * 1000:.1f} ms, "
            f"reference {reference['best_s'] * 1000:.1f} ms "
            f"({speedup:.1f}x)"
        )
        records.append(
            record(
                f"join_all/{size}",
                "scalability",
                engine,
                schemas=size,
                acceptance=(size == ACCEPTANCE_SIZE),
                speedup_vs_reference=speedup,
            )
        )
        records.append(
            record(
                f"reference_join_all/{size}",
                "scalability",
                reference,
                schemas=size,
            )
        )
    return records


def run_kernels(sizes: List[int], repeat: int) -> List[Dict[str, Any]]:
    """Dense bitset join_all versus the preserved set-based engine.

    Same protocol as :func:`run_scalability`, but the baseline is the
    pre-bitset :mod:`repro.perf.setwise` engine rather than the cold
    reference: both sides intern and memoize, so the ratio isolates
    what the dense-id kernels themselves buy.
    """
    from repro.perf.setwise import setwise_join_all

    records: List[Dict[str, Any]] = []
    for size in sizes:
        family = _family(size)
        results: Dict[str, Any] = {}
        dense = time_call(
            lambda: results.__setitem__("dense", join_all(family)),
            repeat=repeat,
            setup=clear_caches,
        )
        setwise = time_call(
            lambda: results.__setitem__("setwise", setwise_join_all(family)),
            repeat=repeat,
            setup=clear_caches,
        )
        if results["dense"] != results["setwise"]:
            raise AssertionError(
                f"dense kernels disagree with setwise engine at size {size}"
            )
        speedup = setwise["best_s"] / dense["best_s"]
        print(
            f"  kernel_join_all/{size}: dense {dense['best_s'] * 1000:.1f} ms, "
            f"setwise {setwise['best_s'] * 1000:.1f} ms "
            f"({speedup:.1f}x)"
        )
        records.append(
            record(
                f"kernel_join_all/{size}",
                "kernels",
                dense,
                schemas=size,
                acceptance=(size == KERNEL_ACCEPTANCE_SIZE),
                speedup_vs_setwise=speedup,
            )
        )
        records.append(
            record(
                f"setwise_join_all/{size}",
                "kernels",
                setwise,
                schemas=size,
            )
        )
    return records


def run_memoization(repeat: int) -> List[Dict[str, Any]]:
    """Warm is_sub / compatible versus the unmemoized containment test."""
    family = _family(80)
    merged = join_all(family)
    pairs = [(g, merged) for g in family]

    def probe() -> int:
        return sum(1 for left, right in pairs if is_sub(left, right))

    def probe_reference() -> int:
        return sum(1 for left, right in pairs if reference_is_sub(left, right))

    def probe_compatible() -> int:
        return sum(1 for left, right in pairs if compatible(left, right))

    if probe() != probe_reference():
        raise AssertionError("memoized is_sub disagrees with reference")
    warm = time_call(probe, repeat=repeat)
    cold = time_call(probe_reference, repeat=repeat)
    compat_warm = time_call(probe_compatible, repeat=repeat)
    return [
        record("is_sub/warm", "memoization", warm, pairs=len(pairs)),
        record("is_sub/cold", "memoization", cold, pairs=len(pairs)),
        record(
            "compatible/warm", "memoization", compat_warm, pairs=len(pairs)
        ),
    ]


def run_lower(repeat: int, count: int) -> List[Dict[str, Any]]:
    """lower_merge versus the pre-engine per-arrow-lookup version."""
    schemas = [
        random_annotated_schema(
            n_classes=12, n_labels=5, arrow_density=0.25, seed=i
        )
        for i in range(count)
    ]
    merged = lower_merge(*schemas)
    if merged != reference_lower_merge(*schemas):
        raise AssertionError("lower_merge disagrees with reference")

    def probe_leq() -> int:
        return sum(1 for g in schemas if annotated_leq(merged, g))

    engine = time_call(lambda: lower_merge(*schemas), repeat=repeat)
    reference = time_call(lambda: reference_lower_merge(*schemas), repeat=repeat)
    leq_warm = time_call(probe_leq, repeat=repeat)
    return [
        record(f"lower_merge/{count}", "lower", engine, schemas=count),
        record(
            f"reference_lower_merge/{count}", "lower", reference, schemas=count
        ),
        record("annotated_leq/warm", "lower", leq_warm, schemas=count),
    ]


def run_pytest_suites(skip: List[str]) -> List[Dict[str, Any]]:
    """Run every bench_*.py through pytest, folding its JSON output.

    Legacy suites use pytest-benchmark (``--benchmark-json``); suites in
    :data:`_CONFTEST_TIMER_SUITES` use the conftest's ``--bench-json``.
    Either way the stats land in the same trajectory records.
    """
    records: List[Dict[str, Any]] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    for path in sorted(glob.glob(os.path.join(_HERE, "bench_*.py"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        if stem in skip:
            continue
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        uses_conftest_timer = stem in _CONFTEST_TIMER_SUITES
        cmd = [sys.executable, "-m", "pytest", path, "-q"]
        if uses_conftest_timer:
            cmd += ["--bench-json", out_path]
        else:
            cmd += ["--benchmark-only", f"--benchmark-json={out_path}"]
        print(f"  pytest {stem} ...", flush=True)
        try:
            proc = subprocess.run(
                cmd, env=env, cwd=_ROOT, capture_output=True, text=True
            )
            if proc.returncode != 0:
                records.append(
                    record(
                        stem,
                        "pytest",
                        {
                            "best_s": None,
                            "mean_s": None,
                            "repeat": 0,
                            "runs": [],
                        },
                        error=proc.stdout[-2000:] + proc.stderr[-2000:],
                    )
                )
                continue
            try:
                with open(out_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError) as exc:
                # Suite exited 0 but left no readable JSON (e.g. plugin
                # missing): record it rather than silently omitting the
                # suite from the artifact.
                records.append(
                    record(
                        stem,
                        "pytest",
                        {
                            "best_s": None,
                            "mean_s": None,
                            "repeat": 0,
                            "runs": [],
                        },
                        error=f"no benchmark JSON produced: {exc}",
                    )
                )
                continue
        finally:
            try:
                os.unlink(out_path)
            except OSError:
                pass
        if uses_conftest_timer:
            for entry in payload.get("records", []):
                entry = dict(entry)
                entry["group"] = f"pytest/{stem}"
                records.append(entry)
        else:
            for bench in payload.get("benchmarks", []):
                stats = bench.get("stats", {})
                records.append(
                    record(
                        bench.get("name", stem),
                        f"pytest/{stem}",
                        {
                            "best_s": stats.get("min"),
                            "mean_s": stats.get("mean"),
                            "repeat": stats.get("rounds", 0),
                            "runs": [],
                        },
                    )
                )
    return records


@suite("merge_engine", "BENCH_merge_engine.json")
def merge_engine_suite(args: argparse.Namespace) -> SuiteResult:
    """The engine + kernel cases plus (full mode) the pytest sweep."""
    sizes = [40, 80] if args.smoke else [50, 100, ACCEPTANCE_SIZE, 320]
    kernel_sizes = [80] if args.smoke else [100, KERNEL_ACCEPTANCE_SIZE]
    repeat = 3 if args.smoke else 5

    print("merge-engine scalability:")
    records = run_scalability(sizes, repeat)
    print("dense kernels:")
    records += run_kernels(kernel_sizes, repeat)
    print("memoization:")
    records += run_memoization(repeat)
    print("lower merge:")
    records += run_lower(repeat, count=10 if args.smoke else 30)
    if not args.smoke and not args.skip_pytest_suite:
        print("pytest suites:")
        # bench_service belongs to the service suite's artifact (timing
        # its heavy workloads here too would double-measure them), and
        # bench_http owns its own server subprocesses — it is driven by
        # the http suite, not collectable as pytest tests.
        records += run_pytest_suites(skip=["bench_service", "bench_http"])

    acceptance = [
        r
        for r in records
        if r.get("acceptance") and r.get("speedup_vs_reference") is not None
    ]
    kernel_acceptance = [
        r
        for r in records
        if r.get("acceptance") and r.get("speedup_vs_setwise") is not None
    ]
    summary: Dict[str, Any] = {"smoke": args.smoke}
    if acceptance:
        summary["join_all_speedup"] = acceptance[0]["speedup_vs_reference"]
        summary["min_speedup_required"] = None if args.smoke else args.min_speedup
        summary["acceptance_pass"] = args.smoke or (
            acceptance[0]["speedup_vs_reference"] >= args.min_speedup
        )
        if summary["acceptance_pass"]:
            print(f"join_all speedup: {summary['join_all_speedup']:.1f}x")
        else:
            print(
                f"FAIL: join_all speedup {summary['join_all_speedup']:.2f}x "
                f"< required {args.min_speedup}x",
                file=sys.stderr,
            )
    if kernel_acceptance:
        summary["kernel_speedup"] = kernel_acceptance[0]["speedup_vs_setwise"]
        summary["min_kernel_speedup_required"] = (
            None if args.smoke else args.min_kernel_speedup
        )
        kernel_pass = args.smoke or (
            summary["kernel_speedup"] >= args.min_kernel_speedup
        )
        summary["acceptance_pass"] = (
            summary.get("acceptance_pass", True) and kernel_pass
        )
        if kernel_pass:
            print(f"kernel speedup: {summary['kernel_speedup']:.1f}x")
        else:
            print(
                f"FAIL: kernel speedup {summary['kernel_speedup']:.2f}x "
                f"< required {args.min_kernel_speedup}x vs setwise",
                file=sys.stderr,
            )
    return records, {"summary": summary, "engine_stats": engine_stats()}


@suite("service", "BENCH_service.json")
def service_suite(args: argparse.Namespace) -> SuiteResult:
    """MergeService request-stream workloads (repro.service.bench)."""
    from repro.service.bench import run_bench

    acceptance_workload = (
        "service-sharded-small" if args.smoke else "service-sharded-200"
    )
    workloads = (
        [acceptance_workload]
        if args.smoke
        else [acceptance_workload, "service-mixed-200"]
    )
    repeat = 2 if args.smoke else 3

    telemetry_path = os.path.join(_ROOT, "TELEMETRY_service.jsonl")
    try:
        os.unlink(telemetry_path)
    except OSError:
        pass

    records: List[Dict[str, Any]] = []
    results: Dict[str, Any] = {}
    print("merge service:")
    for workload in workloads:
        is_acceptance = workload == acceptance_workload
        result = run_bench(
            workload,
            repeat=repeat,
            telemetry_jsonl=telemetry_path if is_acceptance else None,
        )
        results[workload] = result
        summary = result["summary"]
        timings = result["timings"]
        print(
            f"  {workload}: warm view "
            f"{summary['view_speedup_vs_cold_join_all']:.0f}x vs cold "
            f"join_all, {summary['requests_per_second']:.0f} req/s, "
            f"invalidation "
            f"{'ok' if summary['invalidation_ok'] else 'FAILED'}"
        )
        records.append(
            record(
                f"{workload}/join_all_cold",
                "service",
                timings["join_all_cold"],
                schemas=result["initial_schemas"],
            )
        )
        records.append(
            record(
                f"{workload}/merged_view_warm",
                "service",
                timings["merged_view_warm"],
                schemas=result["initial_schemas"],
                acceptance=is_acceptance,
                speedup_vs_cold_join_all=(
                    summary["view_speedup_vs_cold_join_all"]
                ),
            )
        )
        records.append(
            record(
                f"{workload}/stream_replay",
                "service",
                timings["stream_replay"],
                requests=result["requests"],
                requests_per_second=summary["requests_per_second"],
                latency=result["latency"],
                cache_hit_rates=result["cache_hit_rates"],
            )
        )

    accepted = results[acceptance_workload]["summary"]
    summary = {
        "smoke": args.smoke,
        "acceptance_workload": acceptance_workload,
        "view_speedup": accepted["view_speedup_vs_cold_join_all"],
        "invalidation_ok": accepted["invalidation_ok"],
        "latency": results[acceptance_workload]["latency"],
        "cache_hit_rates": results[acceptance_workload]["cache_hit_rates"],
        "telemetry_jsonl": os.path.basename(telemetry_path),
        "min_view_speedup_required": (
            None if args.smoke else args.min_view_speedup
        ),
        # The invalidation invariant must hold even in smoke mode; the
        # speedup floor only gates full runs (smoke sizes are too small
        # to measure fairly on shared runners).
        "acceptance_pass": accepted["invalidation_ok"]
        and (
            args.smoke
            or accepted["view_speedup_vs_cold_join_all"]
            >= args.min_view_speedup
        ),
    }
    if not summary["acceptance_pass"]:
        print(
            f"FAIL: service acceptance on {acceptance_workload}: "
            f"view speedup {summary['view_speedup']:.1f}x "
            f"(need ≥ {args.min_view_speedup}x), invalidation_ok="
            f"{summary['invalidation_ok']}",
            file=sys.stderr,
        )
    meta = {
        "summary": summary,
        "workloads": results,
        "service_stats": results[acceptance_workload]["service_stats"],
    }
    return records, meta


@suite("persistence", "BENCH_persistence.json")
def persistence_suite(args: argparse.Namespace) -> SuiteResult:
    """The durable registry: warm restarts and log-append overhead.

    Acceptance (full mode): the first ``merged_view`` after a
    snapshot-led restart is ≥ ``--min-restart-speedup`` (10x) faster
    than a cold ``join_all`` over the same 200-schema family, and the
    software cost of the stream's log appends (encode + write + flush;
    fsync priced separately as durability rent) stays within 10% of
    the in-memory stream replay wall.  Restored-view equality with the
    pre-restart service is asserted in every mode.
    """
    from bench_persistence import run_persistence_bench

    print("persistence:")
    result = run_persistence_bench(smoke=args.smoke)
    summary = dict(result["summary"])
    timings = result["timings"]
    print(
        f"  restart: cold join_all "
        f"{timings['join_all_cold']['best_s'] * 1e3:.2f} ms, first view "
        f"{timings['first_view_after_restart']['best_s'] * 1e6:.1f} us "
        f"({summary['restart_speedup_vs_cold_join_all']:.0f}x); recovery "
        f"{summary['recovery_wall_s'] * 1e3:.1f} ms (snapshot) / "
        f"{summary['replay_recovery_wall_s'] * 1e3:.1f} ms (full replay)"
    )
    print(
        f"  appends: software {summary['append_cost_soft_s'] * 1e3:.2f} ms "
        f"({summary['stream_overhead_soft'] * 100:.1f}% of the stream), "
        f"fsync'd {summary['append_cost_fsync_s'] * 1e3:.2f} ms "
        f"({summary['stream_overhead_fsync'] * 100:.1f}%)"
    )
    records = [
        record(
            f"{summary['workload']}/{name}",
            "persistence",
            timings[name],
            schemas=summary["schemas"],
            **(
                {
                    "acceptance": True,
                    "speedup_vs_cold_join_all": (
                        summary["restart_speedup_vs_cold_join_all"]
                    ),
                }
                if name == "first_view_after_restart"
                else {}
            ),
        )
        for name in sorted(timings)
    ]
    summary["min_restart_speedup_required"] = (
        None if args.smoke else args.min_restart_speedup
    )
    summary["acceptance_pass"] = bool(
        summary["append_overhead_ok"]
        and (
            args.smoke
            or summary["restart_speedup_vs_cold_join_all"]
            >= args.min_restart_speedup
        )
    )
    if not summary["acceptance_pass"]:
        print(
            f"FAIL: persistence acceptance: restart speedup "
            f"{summary['restart_speedup_vs_cold_join_all']:.1f}x "
            f"(need ≥ {args.min_restart_speedup}x), append overhead "
            f"{summary['stream_overhead_soft'] * 100:.1f}% "
            f"(budget {summary['append_overhead_budget'] * 100:.0f}%)",
            file=sys.stderr,
        )
    return records, {"summary": summary}


@suite("http", "BENCH_http.json")
def http_suite(args: argparse.Namespace) -> SuiteResult:
    """The asyncio HTTP front end under 1/4/16 concurrent writers.

    Acceptance: 16-writer disjoint-component throughput ≥ 2x the
    single-writer figure (gated in full mode on multi-core hosts —
    a single core CPU-saturates the round trip, so the ratio there
    measures the GIL, not the locking), and warm reads stay
    non-blocking (median read latency well under an in-flight
    register's duration; see bench_http for why the median is the
    lock-freedom statistic) — the wire-level witnesses of the
    per-shard locking design.
    """
    from bench_http import run_http_bench

    print("http front end:")
    result = run_http_bench(smoke=args.smoke)
    records: List[Dict[str, Any]] = []
    for name, level in result["levels"].items():
        latency = level["latency_s"]
        print(
            f"  {name:>2} writer(s): {level['rps']:8.0f} req/s   "
            f"p50 {latency['p50'] * 1e3:6.2f} ms   "
            f"p95 {latency['p95'] * 1e3:6.2f} ms"
        )
        records.append(
            record(
                f"register/{name}_writers",
                "http",
                {
                    "best_s": level["wall_s"],
                    "mean_s": level["wall_s"],
                    "repeat": 1,
                    "runs": [level["wall_s"]],
                },
                requests=level["requests"],
                requests_per_second=level["rps"],
                latency=latency,
            )
        )
    ruw = result["read_latency_under_write"]
    print(
        f"  reads during a {ruw['write_duration_s'] * 1e3:.0f} ms write: "
        f"p50 {ruw['latency_during_write_s']['p50'] * 1e3:.2f} ms   "
        f"p95 {ruw['latency_during_write_s']['p95'] * 1e3:.2f} ms "
        f"({'non-blocking' if ruw['reads_nonblocking_ok'] else 'BLOCKED'})"
    )
    summary = result["summary"]
    scaling_note = (
        f"{summary['scaling_16_vs_1']:.2f}x"
        if summary["rps_1_writer"]
        else "n/a"
    )
    if summary["scaling_gate_active"]:
        print(f"  scaling 16v1: {scaling_note}")
    else:
        print(
            f"  scaling 16v1: {scaling_note} "
            f"(gate inactive: {summary['scaling_not_gated_reason']})"
        )
    if not summary["acceptance_pass"]:
        failed = []
        if summary["scaling_gate_active"] and not summary["scaling_ok"]:
            failed.append(
                f"scaling {scaling_note} "
                f"(need ≥ {summary['scaling_required']}x)"
            )
        if not summary["reads_nonblocking_ok"]:
            failed.append("reads blocked behind an in-flight register")
        if not failed:
            failed.append("writer levels reported failures or hung clients")
        print(f"FAIL: http acceptance: {'; '.join(failed)}", file=sys.stderr)
    return records, {
        "summary": summary,
        "read_latency_under_write": ruw,
        "levels": result["levels"],
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES) + ["all"],
        default="all",
        help="which registered suite to run (default: all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no pytest sweep, no speedup gates (CI smoke job)",
    )
    parser.add_argument(
        "--json",
        default=None,
        help=(
            "trajectory output path (single suite only; default: the "
            "suite's BENCH_<name>.json at the repo root)"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="merge_engine acceptance floor for 200-schema join_all",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=5.0,
        help=(
            "merge_engine acceptance floor for 320-schema join_all over "
            "the set-based engine (repro.perf.setwise)"
        ),
    )
    parser.add_argument(
        "--min-view-speedup",
        type=float,
        default=10.0,
        help="service acceptance floor: warm merged_view vs cold join_all",
    )
    parser.add_argument(
        "--min-restart-speedup",
        type=float,
        default=10.0,
        help=(
            "persistence acceptance floor: first merged_view after a "
            "snapshot-led restart vs cold join_all"
        ),
    )
    parser.add_argument(
        "--skip-pytest-suite",
        action="store_true",
        help="skip the per-file pytest sweep even in full mode",
    )
    args = parser.parse_args(argv)

    selected = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.json and len(selected) > 1:
        parser.error("--json requires a single --suite")

    failed: List[str] = []
    for name in selected:
        entry = SUITES[name]
        records, meta = entry.run(args)
        if args.json:
            out_path = args.json
        elif args.smoke:
            # Smoke artifacts are quick sanity probes with tiny sizes
            # and no gates — never let them overwrite the committed
            # full-run BENCH_<name>.json (which records the acceptance
            # evidence reviewers and CI diffs rely on).
            stem, ext = os.path.splitext(entry.default_json)
            out_path = os.path.join(_ROOT, f"{stem}.smoke{ext}")
        else:
            out_path = os.path.join(_ROOT, entry.default_json)
        write_trajectory(out_path, records, suite=name, meta=meta)
        print(f"wrote {out_path}")
        if meta.get("summary", {}).get("acceptance_pass") is False:
            failed.append(name)
    if failed:
        print(f"acceptance failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
