"""FIG4/FIG5 — naive merging is order-dependent; ours is not (§3).

The paper's central methodological claim.  We fold the Figure 4
schemas in every order through (a) the naive fresh-implicit baseline —
which must produce ≥2 distinct schemas, reproducing Figure 5 — and
(b) our merge — which must produce exactly 1, with the single implicit
class below {D, E, F} the prose calls for.
"""

from itertools import permutations

from repro.baselines.naive import naive_merge_sequence, order_sensitivity
from repro.core.implicit import implicit_classes_of
from repro.core.merge import upper_merge
from repro.core.names import ImplicitName
from repro.figures import figure4_schemas


def test_fig05_naive_merge_is_order_dependent(benchmark):
    schemas = list(figure4_schemas())
    result = benchmark(order_sensitivity, schemas)
    assert result["permutations"] == 6
    # The paper's Figure 5: at least the (G1 G2)G3 vs (G1 G3)G2 orders
    # differ; our run finds 3 distinct outcomes.
    assert result["distinct_results"] >= 2


def test_fig05_two_specific_orders_differ(benchmark):
    g1, g2, g3 = figure4_schemas()

    def both_orders():
        left = naive_merge_sequence([g1, g2, g3])
        right = naive_merge_sequence([g1, g3, g2])
        return left, right

    left, right = benchmark(both_orders)
    assert left != right  # Figure 5, literally
    # Both pile up two stacked anonymous classes (X? and Y?).
    assert sum(1 for c in left.classes if str(c).startswith("?")) == 2
    assert sum(1 for c in right.classes if str(c).startswith("?")) == 2


def test_fig04_our_merge_is_order_independent(benchmark):
    schemas = list(figure4_schemas())

    def all_orders():
        return {
            upper_merge(*(schemas[i] for i in order))
            for order in permutations(range(3))
        }

    results = benchmark(all_orders)
    assert len(results) == 1
    (merged,) = results
    # "Clearly what we really want is one implicit class which is a
    # specialization of all three of D, E and F."
    assert implicit_classes_of(merged) == {ImplicitName(["D", "E", "F"])}


def test_fig04_iterated_binary_equals_nary(benchmark):
    g1, g2, g3 = figure4_schemas()

    def iterated():
        return upper_merge(upper_merge(g1, g2), g3)

    merged = benchmark(iterated)
    assert merged == upper_merge(g1, g2, g3)
