"""MIDDLE — the in-between merge and the §6 validity criterion.

Section 6 closes with two claims this bench makes concrete: that there
"may well be valid and useful concepts of merges lying inbetween" the
upper and lower merges, and that any valid merge concept "should have a
definition in terms of an information ordering".  The annotated join
(:func:`repro.core.framework.annotated_join_all`) is such an in-between
concept; the generic law checkers are the criterion, run here over the
library's three orderings on realistic samples.
"""

import itertools

import pytest

from repro.core.framework import (
    ANNOTATED_ORDERING,
    KEYED_ORDERING,
    WEAK_ORDERING,
    annotated_join,
    annotated_join_all,
    merge_law_violations,
    ordering_violations,
    validate_merge_concept,
)
from repro.core.keys import KeyedSchema, minimal_satisfactory_assignment
from repro.core.lower import (
    AnnotatedSchema,
    annotated_leq,
    complete_classes,
    lower_merge,
)
from repro.datasets import retail_federation_scenario
from repro.exceptions import IncompatibleSchemasError
from repro.generators.random_schemas import (
    random_annotated_schema,
    random_schema_family,
)


def _restrict_annotated(
    schema: AnnotatedSchema, keep
) -> AnnotatedSchema:
    """The induced annotated sub-schema on a class subset."""
    kept = {cls for cls in schema.classes if str(cls) in set(keep)}
    table = {
        arrow: constraint
        for arrow, constraint in schema.participation_table().items()
        if arrow[0] in kept and arrow[2] in kept
    }
    spec = frozenset(
        (p, q) for p, q in schema.spec if p in kept and q in kept
    )
    return AnnotatedSchema(frozenset(kept), spec, table)


def test_middle_rejects_the_retail_federation(benchmark):
    """The federation scenario carries a genuine 0-vs-1 conflict (one
    source requires ``BulkOrder --customer--> Customer``, another knows
    both classes and forbids the arrow).  The in-between merge refuses
    — which is exactly why section 6 builds the *lower* merge for
    federations: it weakens the disagreement to "optional" instead."""
    sources = complete_classes(retail_federation_scenario())

    def run():
        try:
            annotated_join_all(sources)
        except IncompatibleSchemasError as error:
            conflict = error
        else:
            conflict = None
        return conflict, lower_merge(*sources)

    conflict, lowered = benchmark(run)

    assert conflict is not None and "participation" in str(conflict)
    for source in sources:
        assert annotated_leq(lowered, source)


def test_middle_sandwich_on_compatible_views(benchmark):
    """Lower merge ⊑ inputs ⊑ annotated join, on views of one database.

    Restrictions of a single annotated schema never disagree where
    they overlap, so the in-between merge of the *raw* views exists and
    bounds every view from above, while the lower merge bounds the
    class-completed views from below.  (The two merges are not directly
    comparable in general: under the §6 ordering, class completion
    *adds* negative information — constraint 0 on imported arrows —
    that the join need not respect.  The in-between-ness is relative to
    the inputs, which is the statement that matters.)
    """
    master = random_annotated_schema(n_classes=14, n_labels=5, seed=77)
    names = sorted(str(c) for c in master.classes)
    views = [
        _restrict_annotated(master, names[:9]),
        _restrict_annotated(master, names[5:]),
        _restrict_annotated(master, names[3:12]),
    ]

    joined = benchmark(annotated_join_all, views)

    lowered = lower_merge(*views)
    for view, completed in zip(views, complete_classes(views)):
        assert annotated_leq(lowered, completed)
        assert annotated_leq(view, joined)
    # Views of one master are also below its full annotation.
    assert all(annotated_leq(view, master) for view in views)


def test_middle_nary_is_order_independent(benchmark):
    """Every presentation order of the collection merge agrees."""
    family = [
        random_annotated_schema(n_classes=8, seed=s) for s in (1, 2, 3)
    ]

    def all_orders():
        results = []
        for order in itertools.permutations(family):
            try:
                results.append(annotated_join_all(list(order)))
            except IncompatibleSchemasError:
                results.append(None)
        return results

    results = benchmark(all_orders)
    assert all(
        (result is None) == (results[0] is None) for result in results
    )
    if results[0] is not None:
        assert all(result == results[0] for result in results)


def test_middle_fold_vs_collection_witness(benchmark):
    """Binary folding recreates the §3 order-dependence; the collection
    merge does not (the reason the middle merge is n-ary)."""
    a = AnnotatedSchema.build(classes=["Kennel"])
    b = AnnotatedSchema.build(classes=["Dog"])
    c = AnnotatedSchema.build(arrows=[("Dog", "home", "Kennel", "1")])

    collection = benchmark(annotated_join_all, [a, b, c])

    assert collection.participation_of("Dog", "home", "Kennel").value == "1"
    with pytest.raises(IncompatibleSchemasError):
        annotated_join(annotated_join(a, b), c)


def test_middle_join_scales_on_wide_view_families(benchmark):
    """The collection merge of many views of one database stays cheap:
    it is a single pass over opinions plus one closure."""
    master = random_annotated_schema(
        n_classes=60, n_labels=8, arrow_density=0.08, seed=101
    )
    names = sorted(str(c) for c in master.classes)
    width = len(names) // 3
    views = [
        _restrict_annotated(master, names[start : start + 2 * width])
        for start in range(0, len(names) - width, width // 2)
    ]

    joined = benchmark(annotated_join_all, views)

    for view in views:
        assert annotated_leq(view, joined)
    assert joined.classes == frozenset().union(
        *(view.classes for view in views)
    )


def test_middle_weak_ordering_passes_the_criterion(benchmark):
    """§6 criterion, run over a random view family: the weak ordering
    is a partial order whose join is a law-abiding LUB."""
    samples = random_schema_family(
        n_schemas=4, pool_size=14, n_classes=7, n_labels=4,
        arrow_density=0.2, spec_density=0.1, seed=17,
    )

    problems = benchmark(validate_merge_concept, WEAK_ORDERING, samples)

    assert problems == []


def test_middle_keyed_ordering_passes_the_criterion(benchmark):
    """The §5 keyed ordering passes the same criterion once key
    assignments are monotone (as every merged schema's is)."""
    schemas = random_schema_family(
        n_schemas=3, pool_size=12, n_classes=6, n_labels=4,
        arrow_density=0.25, spec_density=0.1, seed=29,
    )
    samples = []
    for schema in schemas:
        raw = {}
        for cls in schema.sorted_classes():
            labels = sorted(schema.out_labels(cls))
            if labels:
                raw[cls] = [frozenset(labels[:1])]
        seeded = KeyedSchema(schema, raw, check_spec_monotone=False)
        samples.append(
            KeyedSchema(
                schema, minimal_satisfactory_assignment(schema, [seeded])
            )
        )

    problems = benchmark(validate_merge_concept, KEYED_ORDERING, samples)

    assert problems == []


def test_middle_annotated_order_laws(benchmark):
    """The annotated relation is a partial order, and its binary join —
    where defined — is commutative and bound-respecting.  (Binary
    *folds* are deliberately excluded: the n-ary collection merge is
    the law-abiding operation, as the witness bench shows.)"""
    samples = [
        random_annotated_schema(n_classes=6, seed=s) for s in (11, 12, 13)
    ]

    problems = benchmark(ordering_violations, ANNOTATED_ORDERING, samples)

    assert problems == []


def test_middle_law_checkers_catch_a_broken_merge(benchmark):
    """The criterion has teeth: an order-sensitive 'merge' fails it."""

    class OrderSensitive(type(WEAK_ORDERING)):
        name = "order-sensitive"

        def join(self, left, right):
            from repro.core.ordering import join

            joined = join(left, right)
            first = sorted(str(c) for c in left.classes)
            return joined.with_class("Saw-" + first[0]) if first else joined

    samples = random_schema_family(
        n_schemas=3, pool_size=10, n_classes=5, n_labels=3,
        arrow_density=0.2, spec_density=0.1, seed=43,
    )

    problems = benchmark(merge_law_violations, OrderSensitive(), samples)

    assert problems  # commutativity and leastness must be flagged
