"""Unit tests for conflict detection, renaming plans and the diff tool."""

import pytest

from repro.core.diff import diff, explain_merge
from repro.core.merge import upper_merge
from repro.core.names import BaseName
from repro.core.ordering import is_sub
from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError
from repro.tools.conflicts import (
    conflict_report,
    find_homonyms,
    find_incompatibility,
    find_structural_conflicts,
    find_synonyms,
)
from repro.tools.rename import RenamingPlan


class TestHomonyms:
    def test_disjoint_signatures_flagged(self):
        one = Schema.build(
            arrows=[("Jaguar", "top-speed", "Kmh")]
        )
        two = Schema.build(arrows=[("Jaguar", "habitat", "Region")])
        homonyms = find_homonyms([one, two])
        assert len(homonyms) == 1
        assert homonyms[0].name == BaseName("Jaguar")
        assert "same notion?" in homonyms[0].describe()

    def test_overlapping_signatures_not_flagged(self):
        one = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        two = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
        )
        assert find_homonyms([one, two]) == []

    def test_arrowless_classes_not_flagged(self):
        one = Schema.build(classes=["Dog"])
        two = Schema.build(arrows=[("Dog", "age", "Int")])
        assert find_homonyms([one, two]) == []


class TestSynonyms:
    def test_similar_signatures_flagged(self):
        one = Schema.build(
            arrows=[
                ("Hound", "name", "Str"),
                ("Hound", "age", "Int"),
                ("Hound", "breed", "Breed"),
            ]
        )
        two = Schema.build(
            arrows=[
                ("Dog", "name", "Str"),
                ("Dog", "age", "Int"),
                ("Dog", "breed", "Breed"),
            ]
        )
        synonyms = find_synonyms([one, two])
        assert len(synonyms) == 1
        assert synonyms[0].similarity == 1.0
        assert "rename to unify?" in synonyms[0].describe()

    def test_threshold_respected(self):
        one = Schema.build(arrows=[("A", "x", "D")])
        two = Schema.build(arrows=[("B", "y", "D")])
        assert find_synonyms([one, two], threshold=0.5) == []

    def test_shared_classes_not_candidates(self):
        one = Schema.build(arrows=[("Dog", "name", "Str")])
        two = Schema.build(arrows=[("Dog", "name", "Str")])
        assert find_synonyms([one, two]) == []


class TestStructuralConflicts:
    def test_label_vs_class(self):
        one = Schema.build(arrows=[("Person", "address", "Str")])
        two = Schema.build(arrows=[("Address", "street", "Str")])
        # "address" is a label in one schema; "Address" the class differs
        # by case, so construct a genuine clash:
        three = Schema.build(classes=["address"])
        conflicts = find_structural_conflicts([one, three])
        assert len(conflicts) == 1
        assert conflicts[0].kind == "attribute-vs-class"

    def test_no_false_positive(self, dog_schema):
        assert find_structural_conflicts([dog_schema]) == []


class TestConflictReport:
    def test_clean_report(self, dog_schema):
        assert conflict_report([dog_schema]) == ["no conflicts detected"]

    def test_incompatibility_reported_first(self):
        one = Schema.build(spec=[("A", "B")])
        two = Schema.build(spec=[("B", "A")])
        report = conflict_report([one, two])
        assert report[0].startswith("INCOMPATIBLE")
        assert find_incompatibility([one, two]) is not None


class TestRenamingPlan:
    def test_global_class_rename(self):
        one = Schema.build(arrows=[("Hound", "name", "Str")])
        two = Schema.build(arrows=[("Hound", "age", "Int")])
        plan = RenamingPlan().rename_class("Hound", "Dog")
        renamed = plan.apply([one, two])
        assert all(s.has_class("Dog") for s in renamed)

    def test_scoped_rename(self):
        one = Schema.build(classes=["Jaguar"])
        two = Schema.build(classes=["Jaguar"])
        plan = RenamingPlan().rename_class(
            "Jaguar", "Jaguar-car", schema_index=0
        )
        renamed = plan.apply([one, two])
        assert renamed[0].has_class("Jaguar-car")
        assert renamed[1].has_class("Jaguar")

    def test_label_rename(self):
        schema = Schema.build(arrows=[("Dog", "moniker", "Str")])
        plan = RenamingPlan().rename_label("moniker", "name")
        (renamed,) = plan.apply([schema])
        assert renamed.has_arrow("Dog", "name", "Str")

    def test_contradictory_rename_rejected(self):
        plan = RenamingPlan().rename_class("A", "B")
        with pytest.raises(SchemaValidationError):
            plan.rename_class("A", "C")

    def test_contradictory_label_rename_rejected(self):
        plan = RenamingPlan().rename_label("x", "y")
        with pytest.raises(SchemaValidationError):
            plan.rename_label("x", "z")

    def test_irrelevant_entries_skipped(self, dog_schema):
        plan = RenamingPlan().rename_class("Unicorn", "Horse")
        assert plan.apply([dog_schema]) == [dog_schema]

    def test_homonym_resolution_end_to_end(self):
        # Separate the two Jaguars, then merge cleanly.
        cars = Schema.build(arrows=[("Jaguar", "top-speed", "Kmh")])
        cats = Schema.build(arrows=[("Jaguar", "habitat", "Region")])
        plan = RenamingPlan().rename_class(
            "Jaguar", "Jaguar-animal", schema_index=1
        )
        renamed = plan.apply([cars, cats])
        merged = upper_merge(*renamed)
        assert merged.has_class("Jaguar") and merged.has_class(
            "Jaguar-animal"
        )
        assert find_homonyms(renamed) == []


class TestDiff:
    def test_empty_diff(self, dog_schema):
        assert diff(dog_schema, dog_schema).is_empty()

    def test_sub_detection(self, dog_schema):
        smaller = dog_schema.restrict(["Dog", "Person"])
        delta = diff(smaller, dog_schema)
        assert delta.left_is_sub()
        assert not delta.right_is_sub()
        assert delta.left_is_sub() == is_sub(smaller, dog_schema)

    def test_summary_lines(self, dog_schema):
        delta = diff(Schema.empty(), dog_schema)
        lines = delta.summary_lines()
        assert any("only in right" in line for line in lines)

    def test_identical_summary(self, dog_schema):
        assert diff(dog_schema, dog_schema).summary_lines() == [
            "schemas are identical"
        ]

    def test_explain_merge(self, dog_schema):
        other = Schema.build(arrows=[("Dog", "licence", "Licence")])
        merged = upper_merge(dog_schema, other)
        lines = explain_merge(merged, dog_schema)
        assert any("classes added" in line for line in lines)
        assert not any("WARNING" in line for line in lines)

    def test_explain_merge_warns_on_loss(self, dog_schema):
        lines = explain_merge(Schema.empty(), dog_schema)
        assert lines[0].startswith("WARNING")

    def test_explain_nothing_added(self, dog_schema):
        lines = explain_merge(dog_schema, dog_schema)
        assert lines == [
            "merge added nothing (original was already complete)"
        ]
