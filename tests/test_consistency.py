"""Unit tests for the consistency relationship (§4.2)."""

import pytest

from repro.core.consistency import ConsistencyRelation, check_consistency
from repro.core.names import BaseName, ImplicitName, names
from repro.exceptions import InconsistentSchemasError


class TestConsistencyRelation:
    def test_explicit_pairs_symmetric(self):
        relation = ConsistencyRelation([("Dog", "Pet")])
        assert relation.consistent("Dog", "Pet")
        assert relation.consistent("Pet", "Dog")

    def test_reflexive_by_definition(self):
        relation = ConsistencyRelation()
        assert relation.consistent("Dog", "Dog")

    def test_unlisted_pairs_inconsistent(self):
        relation = ConsistencyRelation([("Dog", "Pet")])
        assert not relation.consistent("Dog", "Invoice")

    def test_permissive(self):
        relation = ConsistencyRelation.permissive()
        assert relation.consistent("Dog", "Invoice")

    def test_from_groups(self):
        relation = ConsistencyRelation.from_groups(
            [["Dog", "Pet", "Animal"], ["Invoice", "Bill"]]
        )
        assert relation.consistent("Dog", "Animal")
        assert relation.consistent("Invoice", "Bill")
        assert not relation.consistent("Dog", "Invoice")

    def test_composite_names_judged_by_base_members(self):
        relation = ConsistencyRelation.from_groups([["A", "B", "C"]])
        imp = ImplicitName(["A", "B"])
        assert relation.consistent(imp, "C")
        assert not relation.consistent(imp, "Z")


class TestCheckConsistency:
    def test_none_relation_passes_everything(self):
        check_consistency([names(["A", "B"])], None)

    def test_permissive_passes(self):
        check_consistency(
            [names(["A", "B"])], ConsistencyRelation.permissive()
        )

    def test_violation_raises_with_pair(self):
        with pytest.raises(InconsistentSchemasError) as excinfo:
            check_consistency([names(["A", "B"])], ConsistencyRelation())
        assert set(excinfo.value.offending_pair) == {
            BaseName("A"),
            BaseName("B"),
        }

    def test_all_pairs_checked(self):
        relation = ConsistencyRelation([("A", "B")])
        with pytest.raises(InconsistentSchemasError):
            check_consistency([names(["A", "B", "C"])], relation)
