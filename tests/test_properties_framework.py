"""Property tests for the information-ordering framework (§6 criterion).

The paper's validity criterion for a merge concept — defined by an
information ordering, merge = least upper bound, hence order-independent
— is machine-checked here over randomized schema families for all three
shipped orderings, together with the "sandwich" theorem that places the
annotated join strictly between the lower and upper merges.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.framework import (
    KEYED_ORDERING,
    WEAK_ORDERING,
    annotated_join,
    annotated_join_all,
    annotated_meet,
    keyed_join,
    keyed_leq,
    keyed_meet,
    merge_law_violations,
    ordering_violations,
)
from repro.core.keys import KeyedSchema, minimal_satisfactory_assignment
from repro.core.lower import annotated_leq, lower_merge
from repro.core.ordering import join as weak_join
from repro.exceptions import IncompatibleSchemasError

from tests.conftest import annotated_schemas, schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def keyed_schemas(draw):
    """A random *monotone* keyed schema — the section 5 carrier.

    Raw keys are drawn from each class's out-labels and then closed
    downward along specialization via the minimal satisfactory
    assignment, which is how any valid keyed schema arises.
    """
    schema = draw(schemas(max_classes=5))
    raw = {}
    for cls in schema.sorted_classes():
        labels = sorted(schema.out_labels(cls))
        if not labels or not draw(st.booleans()):
            continue
        size = draw(st.integers(min_value=1, max_value=len(labels)))
        raw[cls] = [frozenset(labels[:size])]
    seed = KeyedSchema(schema, raw, check_spec_monotone=False)
    assignment = minimal_satisfactory_assignment(schema, [seed])
    return KeyedSchema(schema, assignment)


def _try(operation, *args):
    try:
        return operation(*args)
    except IncompatibleSchemasError:
        return None


class TestWeakOrderingLaws:
    @given(schemas(), schemas(), schemas())
    @SLOW
    def test_partial_order_and_merge_laws(self, a, b, c):
        samples = [a, b, c]
        joined = _try(weak_join, a, b)
        if joined is not None:
            samples.append(joined)
        assert ordering_violations(WEAK_ORDERING, samples) == []
        assert merge_law_violations(WEAK_ORDERING, samples) == []


class TestAbsorptionLaws:
    """Join and meet interlock as lattice theory demands."""

    @given(schemas(), schemas())
    @RELAXED
    def test_weak_absorption(self, a, b):
        met = WEAK_ORDERING.meet(a, b)
        assert WEAK_ORDERING.join(a, met) == a
        joined = _try(weak_join, a, b)
        assume(joined is not None)
        assert WEAK_ORDERING.meet(a, joined) == a

    @given(keyed_schemas(), keyed_schemas())
    @RELAXED
    def test_keyed_absorption_up_to_ordering(self, a, b):
        """Keyed meets drop keys whose arrows vanish, so absorption
        holds up to mutual ⊑ (which is equality for the schema part
        and family containment for keys)."""
        met = keyed_meet(a, b)
        rejoined = keyed_join(a, met)
        assert keyed_leq(a, rejoined) and keyed_leq(rejoined, a)
        joined = _try(keyed_join, a, b)
        assume(joined is not None)
        remet = keyed_meet(a, joined)
        assert keyed_leq(remet, a) and keyed_leq(a, remet)


class TestAnnotatedOrderingLaws:
    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_join_is_upper_bound_when_defined(self, a, b):
        joined = _try(annotated_join, a, b)
        assume(joined is not None)
        assert annotated_leq(a, joined)
        assert annotated_leq(b, joined)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @SLOW
    def test_join_is_least_among_sampled_upper_bounds(self, a, b, c):
        joined = _try(annotated_join, a, b)
        assume(joined is not None)
        # Build a (potentially strictly larger) upper bound by joining
        # in extra material; the LUB must sit below it.
        bigger = _try(annotated_join, joined, c)
        assume(bigger is not None)
        assert annotated_leq(joined, bigger)

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_join_commutes_including_definedness(self, a, b):
        ab, ba = _try(annotated_join, a, b), _try(annotated_join, b, a)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba

    @given(annotated_schemas())
    @RELAXED
    def test_join_idempotent(self, a):
        assert annotated_join(a, a) == a

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @SLOW
    def test_nary_join_is_order_independent(self, a, b, c):
        """The collection merge cannot depend on presentation order."""
        import itertools

        results = []
        for order in itertools.permutations([a, b, c]):
            results.append(_try(annotated_join_all, list(order)))
        assert all((r is None) == (results[0] is None) for r in results)
        if results[0] is not None:
            assert all(r == results[0] for r in results)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @SLOW
    def test_binary_folds_dominate_the_nary_join(self, a, b, c):
        """Folding binary joins strengthens: any defined fold sits above
        the n-ary collection merge (the §3 phenomenon, annotated)."""
        nary = _try(annotated_join_all, [a, b, c])
        ab = _try(annotated_join, a, b)
        fold = _try(annotated_join, ab, c) if ab is not None else None
        if fold is not None:
            assert nary is not None, "a defined fold implies a defined n-ary"
            assert annotated_leq(nary, fold)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @SLOW
    def test_nary_join_is_upper_bound_of_all_inputs(self, a, b, c):
        nary = _try(annotated_join_all, [a, b, c])
        assume(nary is not None)
        for schema in (a, b, c):
            assert annotated_leq(schema, nary)

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_meet_is_lower_bound(self, a, b):
        met = annotated_meet(a, b)
        assert annotated_leq(met, a)
        assert annotated_leq(met, b)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @SLOW
    def test_meet_is_greatest_among_sampled_lower_bounds(self, a, b, c):
        met = annotated_meet(a, b)
        candidate = annotated_meet(met, c)  # a smaller lower bound
        assert annotated_leq(candidate, met)
        if annotated_leq(c, a) and annotated_leq(c, b):
            assert annotated_leq(c, met)

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_sandwich_on_a_common_class_universe(self, a, b):
        """§6's 'merges lying in between', stated where it is true.

        Over a *common class universe* the lower merge sits below each
        input and the annotated join above it: GLB ⊑ input ⊑ LUB.  (On
        differing class sets the chain genuinely breaks — the lower
        merge's class completion asserts constraint 0 on imported
        arrows, negative information the join need not respect — which
        is why the statement is scoped this way.)
        """
        from repro.core.lower import complete_classes

        a_c, b_c = complete_classes([a, b])
        joined = _try(annotated_join, a_c, b_c)
        assume(joined is not None)
        lowered = lower_merge(a_c, b_c)
        for completed in (a_c, b_c):
            assert annotated_leq(lowered, completed)
            assert annotated_leq(completed, joined)
        assert annotated_leq(lowered, joined)

    @given(schemas(), schemas())
    @RELAXED
    def test_required_embedding_recovers_weak_join(self, a, b):
        """When the annotated join of required embeddings exists, its
        required part is exactly the §4.1 weak join."""
        from repro.core.lower import AnnotatedSchema

        joined = _try(
            annotated_join,
            AnnotatedSchema.from_schema(a),
            AnnotatedSchema.from_schema(b),
        )
        assume(joined is not None)
        assert joined.required_schema() == weak_join(a, b)


def _restrict_annotated(master, keep):
    """The induced annotated sub-schema on a class-name subset."""
    from repro.core.lower import AnnotatedSchema

    kept = {cls for cls in master.classes if str(cls) in set(keep)}
    table = {
        arrow: constraint
        for arrow, constraint in master.participation_table().items()
        if arrow[0] in kept and arrow[2] in kept
    }
    spec = frozenset(
        (p, q) for p, q in master.spec if p in kept and q in kept
    )
    return AnnotatedSchema(frozenset(kept), spec, table)


class TestMiddleMergeInstances:
    """How instances relate to the in-between merge.

    The §4 coercion theorem lifts to the annotated join only at the
    *required* level: an instance of the join satisfies every view's
    required projection as a weak schema.  Full annotated coercion
    fails — §6's "may not" semantics is closed-world, so a value
    licensed through a class the view does not contain becomes a
    violation after coercion.  Both directions are pinned down here.
    """

    @given(st.integers(min_value=0, max_value=10_000))
    @RELAXED
    def test_required_level_coercion_holds(self, seed):
        from repro.core.implicit import properize
        from repro.exceptions import NotProperError
        from repro.generators.random_schemas import (
            random_annotated_schema,
            random_instance,
        )
        from repro.instances.satisfaction import (
            violations_annotated,
            violations_weak,
        )

        master = random_annotated_schema(n_classes=8, n_labels=4, seed=seed)
        names = sorted(str(c) for c in master.classes)
        views = [
            _restrict_annotated(master, names[:6]),
            _restrict_annotated(master, names[3:]),
        ]
        joined = _try(annotated_join_all, views)
        assume(joined is not None)
        try:
            proper_required = properize(joined.required_schema())
        except NotProperError:
            assume(False)
        instance = random_instance(proper_required, seed=seed)
        instance = instance.restrict_classes(joined.classes)
        assume(not violations_annotated(instance, joined))
        for view in views:
            coerced = instance.restrict_classes(view.classes)
            assert violations_weak(coerced, view.required_schema()) == []

    def test_full_annotated_coercion_fails_by_design(self):
        """Minimal witness: the licensing class vanishes in the view."""
        from repro.core.lower import AnnotatedSchema
        from repro.instances.instance import Instance
        from repro.instances.satisfaction import (
            satisfies_annotated,
            violations_annotated,
        )

        knows_dogs = AnnotatedSchema.build(classes=["Dog"])
        ages = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        joined = annotated_join(knows_dogs, ages)
        instance = Instance.build(
            extents={"Dog": {"d"}, "Int": {"5"}},
            values={("d", "age"): "5"},
        )
        assert satisfies_annotated(instance, joined)
        coerced = instance.restrict_classes(knows_dogs.classes)
        # The view ⊑ join, yet the coerced instance violates it: the
        # view's closed world has no present age-arrow to license the
        # defined value.  Instances flow *upward* in the annotated
        # world (federation), not downward.
        assert violations_annotated(coerced, knows_dogs)


class TestKeyedOrderingLaws:
    @given(keyed_schemas(), keyed_schemas())
    @RELAXED
    def test_join_is_upper_bound(self, a, b):
        joined = _try(keyed_join, a, b)
        assume(joined is not None)
        assert keyed_leq(a, joined)
        assert keyed_leq(b, joined)

    @given(keyed_schemas(), keyed_schemas(), keyed_schemas())
    @SLOW
    def test_join_is_least_among_sampled_upper_bounds(self, a, b, c):
        joined = _try(keyed_join, a, b)
        assume(joined is not None)
        bigger = _try(keyed_join, joined, c)
        assume(bigger is not None)
        assert keyed_leq(joined, bigger)

    @given(keyed_schemas(), keyed_schemas())
    @RELAXED
    def test_join_commutative(self, a, b):
        ab, ba = _try(keyed_join, a, b), _try(keyed_join, b, a)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba

    @given(keyed_schemas())
    @RELAXED
    def test_join_idempotent(self, a):
        assert keyed_join(a, a) == a

    @given(keyed_schemas(), keyed_schemas(), keyed_schemas())
    @SLOW
    def test_join_associative(self, a, b, c):
        ab = _try(keyed_join, a, b)
        bc = _try(keyed_join, b, c)
        left = _try(keyed_join, ab, c) if ab is not None else None
        right = _try(keyed_join, a, bc) if bc is not None else None
        assert (left is None) == (right is None)
        if left is not None:
            assert left == right

    @given(keyed_schemas(), keyed_schemas())
    @RELAXED
    def test_meet_is_lower_bound(self, a, b):
        met = keyed_meet(a, b)
        assert keyed_leq(met, a)
        assert keyed_leq(met, b)

    @given(keyed_schemas(), keyed_schemas(), keyed_schemas())
    @SLOW
    def test_meet_is_greatest_among_sampled_lower_bounds(self, a, b, c):
        met = keyed_meet(a, b)
        if keyed_leq(c, a) and keyed_leq(c, b):
            assert keyed_leq(c, met)

    @given(keyed_schemas(), keyed_schemas())
    @RELAXED
    def test_ordering_is_partial_order(self, a, b):
        assert ordering_violations(KEYED_ORDERING, [a, b]) == []
