"""Tests for the one-shot reproduction report."""

from repro.analysis.report import (
    full_report,
    main,
    report_figure_3,
    report_figure_11,
    report_figures_1_2,
    report_figures_4_5,
    report_figures_6_to_8,
    report_figures_9_10,
    report_growth,
)


class TestSections:
    def test_every_section_passes(self):
        for section in (
            report_figures_1_2,
            report_figure_3,
            report_figures_4_5,
            report_figures_6_to_8,
            report_figures_9_10,
            report_figure_11,
            report_growth,
        ):
            lines = section()
            assert lines, section.__name__
            assert all("FAIL" not in line for line in lines)


class TestFullReport:
    def test_mentions_every_figure(self):
        text = full_report()
        for figure in ("Figures 1-2", "Figure 3", "Figures 4-5",
                       "Figures 6-8", "Figures 9-10", "Figure 11"):
            assert figure in text
        assert text.endswith("all claims reproduced")

    def test_main_exit_code(self, capsys):
        assert main() == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
