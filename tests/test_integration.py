"""End-to-end integration tests across the whole library."""

import pytest

from repro import (
    AnnotatedSchema,
    ConsistencyRelation,
    Schema,
    isa,
    lower_merge,
    merge_report,
    upper_merge,
)
from repro.core.keys import KeyFamily, KeyedSchema, merge_keyed
from repro.instances.coercion import coerce
from repro.instances.instance import Instance
from repro.instances.merging import federate, identify_by_keys
from repro.instances.satisfaction import (
    satisfies,
    satisfies_annotated,
    satisfies_keyed,
)
from repro.io import json_io
from repro.models.er import ERAttribute, ERDiagram, EREntity, merge_er
from repro.tools.conflicts import conflict_report, find_homonyms
from repro.tools.rename import RenamingPlan


class TestDesignerWorkflow:
    """The §3 workflow: detect conflicts, rename, assert, merge."""

    def test_full_session(self):
        inventory = Schema.build(
            arrows=[("Jaguar", "vin", "VIN")], spec=[("Jaguar", "Car")]
        )
        zoo = Schema.build(
            arrows=[("Jaguar", "habitat", "Region")],
            spec=[("Jaguar", "Feline")],
        )
        # 1. conflict detection finds the homonym.
        assert find_homonyms([inventory, zoo])
        # 2. renaming separates the notions.
        plan = RenamingPlan().rename_class(
            "Jaguar", "Jaguar-animal", schema_index=1
        )
        inventory, zoo = plan.apply([inventory, zoo])
        assert not find_homonyms([inventory, zoo])
        # 3. merge with an assertion; order cannot matter.
        a = isa("Jaguar-animal", "Animal")
        merged_one = upper_merge(inventory, zoo, assertions=[a])
        merged_two = upper_merge(zoo, inventory, assertions=[a])
        assert merged_one == merged_two
        assert merged_one.has_class("Jaguar") and merged_one.has_class(
            "Jaguar-animal"
        )

    def test_consistency_blocks_nonsense_merge(self):
        people = Schema.build(spec=[("Emp", "Person"), ("Emp", "Payee")])
        things = Schema.build(
            arrows=[("Person", "doc", "Passport"), ("Payee", "doc", "Invoice")]
        )
        relation = ConsistencyRelation.from_groups(
            [["Person", "Payee", "Emp"]]  # Passport/Invoice not consistent
        )
        from repro.exceptions import InconsistentSchemasError

        with pytest.raises(InconsistentSchemasError):
            upper_merge(people, things, consistency=relation)


class TestSerializationPipeline:
    def test_merge_of_deserialized_equals_serialize_of_merge(self):
        one = Schema.build(arrows=[("A", "f", "B")], spec=[("X", "A")])
        two = Schema.build(arrows=[("X", "g", "C")])
        merged = upper_merge(one, two)
        round_tripped = json_io.loads(json_io.dumps(merged))
        assert round_tripped == merged
        re_merged = upper_merge(
            json_io.loads(json_io.dumps(one)),
            json_io.loads(json_io.dumps(two)),
        )
        assert re_merged == merged


class TestKeyedEndToEnd:
    def test_merge_then_identify_objects(self):
        # Two sources, one keyed notion of Person; merging schemas and
        # then identifying instances by key yields one bob.
        source_one = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "Str")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        source_two = KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "Str"), ("Person", "name", "Str")]
            ),
        )
        merged = merge_keyed(source_one, source_two)
        assert merged.keys_of("Person") == KeyFamily.of({"ssn"})

        inst_one = Instance.build(
            extents={"Person": {"p-a"}, "Str": {"123"}},
            values={("p-a", "ssn"): "123"},
        )
        inst_two = Instance.build(
            extents={"Person": {"p-b"}, "Str": {"123", "Bob"}},
            values={("p-b", "ssn"): "123", ("p-b", "name"): "Bob"},
        )
        pooled = federate([inst_one, inst_two], disjointify=False)
        identified = identify_by_keys(pooled, merged)
        assert len(identified.extent("Person")) == 1
        (bob,) = identified.extent("Person")
        assert identified.value(bob, "name") == "Bob"
        assert identified.value(bob, "ssn") == "123"

    def test_keyed_instance_satisfies_merge(self):
        source_one = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "Str")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        merged = merge_keyed(source_one)
        good = Instance.build(
            extents={"Person": {"p"}, "Str": {"1"}},
            values={("p", "ssn"): "1"},
        )
        assert satisfies_keyed(good, merged)


class TestUpperLowerDuality:
    def test_upper_instance_coerces_lower_instances_federate(self):
        one = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        two = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
        )
        # Upper direction: an instance of the merge restricts to both.
        merged_up = upper_merge(one, two)
        rich = Instance.build(
            extents={
                "Dog": {"rex"},
                "Str": {"Rex"},
                "Int": {"3"},
                "Breed": {"lab"},
            },
            values={
                ("rex", "name"): "Rex",
                ("rex", "age"): "3",
                ("rex", "breed"): "lab",
            },
        )
        assert satisfies(rich, merged_up)
        assert satisfies(coerce(rich, one), one)
        assert satisfies(coerce(rich, two), two)
        # Lower direction: instances of the inputs federate into the GLB.
        merged_down = lower_merge(
            AnnotatedSchema.from_schema(one),
            AnnotatedSchema.from_schema(two),
        )
        thin_one = Instance.build(
            extents={"Dog": {"a"}, "Str": {"A"}, "Int": {"1"}},
            values={("a", "name"): "A", ("a", "age"): "1"},
        )
        thin_two = Instance.build(
            extents={"Dog": {"b"}, "Str": {"B"}, "Breed": {"pug"}},
            values={("b", "name"): "B", ("b", "breed"): "pug"},
        )
        pooled = federate([thin_one, thin_two])
        assert satisfies_annotated(pooled, merged_down)


class TestERPipelines:
    def test_three_way_er_merge_any_order(self):
        one = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("age", "Int")])
            ]
        )
        two = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("chip", "ChipId")])
            ]
        )
        three = ERDiagram(
            entities=[EREntity("Puppy", isa=[]), EREntity("Dog")],
        )
        results = {
            merge_er(one, two, three),
            merge_er(three, one, two),
            merge_er(two, three, one),
        }
        assert len(results) == 1

    def test_report_and_render_round(self):
        one = Schema.build(arrows=[("A", "f", "B")])
        two = Schema.build(spec=[("Z", "A")])
        report = merge_report(one, two)
        from repro.render.ascii_art import render_report

        text = render_report(report)
        assert "merged schema (proper)" in text
        assert conflict_report([one, two]) == ["no conflicts detected"]
