"""Failure-injection tests: corrupted invariants must be *caught*.

The library's constructors promise to reject any triple that is not a
weak schema (and any table that is not annotation-closed).  These tests
take randomly generated valid values, corrupt one invariant at a time
through the raw constructors, and assert the validator notices — the
complement of the happy-path suites.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.core.lower import AnnotatedSchema
from repro.core.names import name
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.exceptions import (
    IncompatibleSchemasError,
    SchemaValidationError,
)
from repro.instances.instance import Instance
from repro.exceptions import InstanceError

from tests.conftest import annotated_schemas, schemas

# filter_too_much is suppressed deliberately: several corruption
# patterns (derived arrows, strict spec edges) exist only on a fraction
# of random schemas, and assume() is the honest way to scope them.
RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestSchemaCorruption:
    @given(schemas())
    @RELAXED
    def test_dropping_a_derived_arrow_is_caught(self, schema):
        """Removing one arrow from a W1/W2-closed relation with any
        closure-relevant structure breaks closure or leaves a valid
        (smaller) schema — never a silent lie."""
        derived = [
            (source, label, target)
            for (source, label, target) in schema.arrows
            # an arrow implied by another arrow + a strict spec edge
            if any(
                (other_source, label, target) in schema.arrows
                and other_source != source
                and schema.is_spec(source, other_source)
                for other_source in schema.classes
            )
        ]
        assume(derived)
        victim = sorted(derived, key=repr)[0]
        with pytest.raises(SchemaValidationError, match="W1/W2"):
            Schema(schema.classes, schema.arrows - {victim}, schema.spec)

    @given(schemas())
    @RELAXED
    def test_dropping_a_reflexive_spec_edge_is_caught(self, schema):
        assume(schema.classes)
        victim_class = schema.sorted_classes()[0]
        with pytest.raises(SchemaValidationError, match="reflexive"):
            Schema(
                schema.classes,
                schema.arrows,
                schema.spec - {(victim_class, victim_class)},
            )

    @given(schemas())
    @RELAXED
    def test_dropping_a_transitive_edge_is_caught(self, schema):
        """Graft a guaranteed chain ``X ⇒ Y ⇒ Z`` onto a random schema
        and delete the transitive edge ``X ⇒ Z`` — the validator must
        notice regardless of the surrounding structure."""
        x, y, z = name("Fuzz-x"), name("Fuzz-y"), name("Fuzz-z")
        augmented = Schema.build(
            classes=set(schema.classes) | {x, y, z},
            arrows=schema.arrows,
            spec=set(schema.spec) | {(x, y), (y, z)},
        )
        assert augmented.is_spec(x, z)  # the closure put it there
        # Depending on the arrows present, the validator reports either
        # the broken transitivity itself or a W1/W2 gap it caused; the
        # contract is simply that the corruption cannot pass.
        with pytest.raises(SchemaValidationError):
            Schema(
                augmented.classes,
                augmented.arrows,
                augmented.spec - {(x, z)},
            )

    @given(schemas())
    @RELAXED
    def test_adding_a_cycle_is_caught(self, schema):
        strict = sorted(schema.strict_spec(), key=repr)
        assume(strict)
        sub, sup = strict[0]
        # The reversed edge breaks antisymmetry; depending on what else
        # is present the validator may surface it as a transitivity or
        # W1/W2 failure first — any rejection upholds the contract.
        with pytest.raises(SchemaValidationError):
            Schema(
                schema.classes, schema.arrows, schema.spec | {(sup, sub)}
            )

    @given(schemas())
    @RELAXED
    def test_build_rejects_cycles_with_a_witness(self, schema):
        strict = sorted(schema.strict_spec(), key=repr)
        assume(strict)
        sub, sup = strict[0]
        with pytest.raises(IncompatibleSchemasError) as excinfo:
            Schema.build(
                classes=schema.classes,
                arrows=schema.arrows,
                spec=set(schema.spec) | {(sup, sub)},
            )
        assert excinfo.value.cycle  # a concrete witness, not just "no"

    @given(schemas())
    @RELAXED
    def test_foreign_arrow_endpoint_is_caught(self, schema):
        assume(schema.classes)
        inside = schema.sorted_classes()[0]
        with pytest.raises(SchemaValidationError, match="outside C"):
            Schema(
                schema.classes,
                schema.arrows | {(inside, "zz", name("Not-A-Class"))},
                schema.spec,
            )


class TestAnnotatedCorruption:
    @given(annotated_schemas())
    @RELAXED
    def test_dropping_a_propagated_annotation_is_caught(self, schema):
        """Graft a guaranteed W1'-propagation pattern onto a random
        schema, then delete the propagated entry — the validator must
        notice regardless of the surrounding structure."""
        sub, sup = name("Fuzz-sub"), name("Fuzz-sup")
        existing = [
            (*arrow, constraint)
            for arrow, constraint in schema.participation_table().items()
        ]
        augmented = AnnotatedSchema.build(
            classes=set(schema.classes) | {sub, sup},
            arrows=existing + [(sup, "fuzz", sup, Participation.REQUIRED)],
            spec=set(schema.spec) | {(sub, sup)},
        )
        table = dict(augmented.participation_table())
        victim = (sub, "fuzz", sup)
        assert table[victim] == Participation.REQUIRED  # W1' put it there
        del table[victim]
        with pytest.raises(SchemaValidationError, match="closed"):
            AnnotatedSchema(augmented.classes, augmented.spec, table)

    @given(annotated_schemas())
    @RELAXED
    def test_absent_entries_rejected_in_tables(self, schema):
        assume(schema.classes)
        some = sorted(schema.classes, key=repr)[0]
        table = dict(schema.participation_table())
        table[(some, "zz", some)] = Participation.ABSENT
        with pytest.raises(Exception, match="0|OPTIONAL|REQUIRED"):
            AnnotatedSchema(schema.classes, schema.spec, table)


class TestInstanceCorruption:
    def test_extent_with_unknown_oid(self):
        with pytest.raises(InstanceError, match="unknown oid"):
            Instance(frozenset({"a"}), {name("C"): frozenset({"ghost"})}, {})

    def test_value_from_unknown_oid(self):
        with pytest.raises(InstanceError, match="unknown oid"):
            Instance(frozenset({"a"}), {}, {("ghost", "l"): "a"})

    def test_value_to_unknown_oid(self):
        with pytest.raises(InstanceError, match="unknown oid"):
            Instance(frozenset({"a"}), {}, {("a", "l"): "ghost"})

    def test_empty_label_rejected(self):
        with pytest.raises(InstanceError, match="label"):
            Instance(frozenset({"a"}), {}, {("a", ""): "a"})
