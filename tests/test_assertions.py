"""Unit tests for assertion schemas (§3)."""

import pytest

from repro.core.assertions import AssertionSet, arrow, class_exists, isa
from repro.core.merge import upper_merge
from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError


class TestAtomicAssertions:
    def test_class_exists(self):
        schema = class_exists("Dog")
        assert schema.has_class("Dog")
        assert len(schema) == 1
        assert not schema.arrows

    def test_isa(self):
        schema = isa("Puppy", "Dog")
        assert schema.is_spec("Puppy", "Dog")
        assert len(schema) == 2

    def test_arrow(self):
        schema = arrow("Dog", "owner", "Person")
        assert schema.has_arrow("Dog", "owner", "Person")

    def test_arrow_validates_label(self):
        with pytest.raises(SchemaValidationError):
            arrow("Dog", "", "Person")

    def test_assertions_are_ordinary_schemas(self):
        merged = upper_merge(isa("Puppy", "Dog"), arrow("Dog", "age", "Int"))
        assert merged.has_arrow("Puppy", "age", "Int")


class TestAssertionSet:
    def test_chaining(self):
        bundle = (
            AssertionSet()
            .add_isa("Puppy", "Dog")
            .add_arrow("Dog", "age", "Int")
            .add_class("Kennel")
        )
        assert len(bundle) == 3

    def test_iterates_schemas(self):
        bundle = AssertionSet().add_isa("A", "B")
        assert all(isinstance(s, Schema) for s in bundle)

    def test_usable_as_merge_assertions(self, dog_schema):
        bundle = AssertionSet().add_isa("Puppy", "Dog")
        merged = upper_merge(dog_schema, assertions=bundle)
        assert merged.has_arrow("Puppy", "owner", "Person")

    def test_add_raw_schema(self, dog_schema):
        bundle = AssertionSet().add(dog_schema)
        assert list(bundle) == [dog_schema]

    def test_repr(self):
        assert "2 assertion(s)" in repr(
            AssertionSet().add_class("A").add_class("B")
        )
