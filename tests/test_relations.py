"""Unit tests for the binary-relation toolkit."""

import pytest

from repro.core import relations


class TestClosures:
    def test_reflexive_closure(self):
        closed = relations.reflexive_closure({(1, 2)}, [1, 2, 3])
        assert closed == frozenset({(1, 2), (1, 1), (2, 2), (3, 3)})

    def test_transitive_closure_chain(self):
        closed = relations.transitive_closure({(1, 2), (2, 3), (3, 4)})
        assert (1, 4) in closed
        assert (1, 3) in closed
        assert (4, 1) not in closed

    def test_transitive_closure_of_cycle_contains_self_loops(self):
        closed = relations.transitive_closure({(1, 2), (2, 1)})
        assert (1, 1) in closed and (2, 2) in closed

    def test_reflexive_transitive_closure(self):
        closed = relations.reflexive_transitive_closure({(1, 2)}, [1, 2, 9])
        assert (9, 9) in closed and (1, 2) in closed and (1, 1) in closed


class TestPredicates:
    def test_is_reflexive(self):
        assert relations.is_reflexive({(1, 1), (2, 2)}, [1, 2])
        assert not relations.is_reflexive({(1, 1)}, [1, 2])

    def test_is_transitive(self):
        assert relations.is_transitive({(1, 2), (2, 3), (1, 3)})
        assert not relations.is_transitive({(1, 2), (2, 3)})

    def test_is_antisymmetric(self):
        assert relations.is_antisymmetric({(1, 2), (1, 1)})
        assert not relations.is_antisymmetric({(1, 2), (2, 1)})

    def test_is_partial_order(self):
        order = relations.reflexive_transitive_closure({(1, 2)}, [1, 2])
        assert relations.is_partial_order(order, [1, 2])
        assert not relations.is_partial_order({(1, 2)}, [1, 2])


class TestFindCycle:
    def test_no_cycle(self):
        assert relations.find_cycle({(1, 2), (2, 3)}) is None

    def test_self_loops_ignored(self):
        assert relations.find_cycle({(1, 1), (1, 2)}) is None

    def test_two_cycle_found(self):
        cycle = relations.find_cycle({(1, 2), (2, 1)})
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2}

    def test_longer_cycle_found(self):
        cycle = relations.find_cycle({(1, 2), (2, 3), (3, 1), (3, 4)})
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert {1, 2, 3} <= set(cycle)


class TestExtremalElements:
    ORDER = relations.reflexive_transitive_closure(
        {("c", "a"), ("c", "b"), ("d", "c")}, ["a", "b", "c", "d", "e"]
    )

    def test_minimal_elements(self):
        assert relations.minimal_elements({"a", "b", "c"}, self.ORDER) == {
            "c"
        }
        assert relations.minimal_elements({"a", "b"}, self.ORDER) == {
            "a",
            "b",
        }

    def test_maximal_elements(self):
        assert relations.maximal_elements({"a", "b", "c"}, self.ORDER) == {
            "a",
            "b",
        }

    def test_least_element_exists(self):
        assert relations.least_element({"a", "c", "d"}, self.ORDER) == "d"

    def test_least_element_missing(self):
        assert relations.least_element({"a", "b"}, self.ORDER) is None

    def test_least_of_singleton(self):
        assert relations.least_element({"e"}, self.ORDER) == "e"

    def test_greatest_element(self):
        assert relations.greatest_element({"a", "c", "d"}, self.ORDER) == "a"
        assert relations.greatest_element({"a", "b"}, self.ORDER) is None

    def test_down_and_up_sets(self):
        assert relations.down_set("a", self.ORDER) == {"a", "c", "d"}
        assert relations.up_set("c", self.ORDER) == {"a", "b", "c"}


class TestCovers:
    def test_transitive_edge_removed(self):
        order = relations.reflexive_transitive_closure(
            {(1, 2), (2, 3)}, [1, 2, 3]
        )
        assert relations.covers(order) == frozenset({(1, 2), (2, 3)})

    def test_diamond_keeps_all_sides(self):
        order = relations.reflexive_transitive_closure(
            {("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")},
            ["bot", "l", "r", "top"],
        )
        assert relations.covers(order) == frozenset(
            {("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")}
        )


class TestTopologicalOrder:
    def test_respects_order(self):
        order = relations.reflexive_transitive_closure(
            {(1, 2), (2, 3)}, [1, 2, 3]
        )
        result = relations.topological_order([1, 2, 3], order)
        assert result.index(1) < result.index(2) < result.index(3)

    def test_deterministic(self):
        order = relations.reflexive_closure(set(), [3, 1, 2])
        assert relations.topological_order(
            [3, 1, 2], order
        ) == relations.topological_order([2, 1, 3], order)

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            relations.topological_order([1, 2], {(1, 2), (2, 1)})


class TestRestrict:
    def test_keeps_internal_pairs_only(self):
        rel = {(1, 2), (2, 3), (3, 1)}
        assert relations.restrict(rel, {1, 2}) == frozenset({(1, 2)})
