"""Unit tests for JSON serialization round trips."""

import json

import pytest

from repro.core.lower import AnnotatedSchema
from repro.core.merge import upper_merge
from repro.core.names import BaseName, GenName, ImplicitName
from repro.core.participation import Participation
from repro.exceptions import SerializationError
from repro.figures import (
    figure1_er_diagram,
    figure2_schema,
    figure3_schemas,
    figure9_keyed_schema,
)
from repro.instances.instance import Instance
from repro.io.json_io import (
    annotated_from_dict,
    annotated_to_dict,
    dumps,
    er_from_dict,
    er_to_dict,
    instance_from_dict,
    instance_to_dict,
    keyed_from_dict,
    keyed_to_dict,
    loads,
    name_from_json,
    name_to_json,
    schema_from_dict,
    schema_to_dict,
)


class TestNames:
    def test_base_round_trip(self):
        assert name_from_json(name_to_json(BaseName("Dog"))) == BaseName(
            "Dog"
        )

    def test_implicit_round_trip(self):
        imp = ImplicitName(["A", "B"])
        assert name_from_json(name_to_json(imp)) == imp

    def test_gen_round_trip(self):
        gen = GenName([ImplicitName(["A", "B"]), "C"])
        assert name_from_json(name_to_json(gen)) == gen

    def test_bad_document(self):
        with pytest.raises(SerializationError):
            name_from_json({"mystery": []})


class TestSchema:
    def test_round_trip(self):
        schema = figure2_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_round_trip_with_implicit_classes(self):
        merged = upper_merge(*figure3_schemas())
        assert schema_from_dict(schema_to_dict(merged)) == merged

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"format": "nope"})

    def test_json_is_deterministic(self):
        schema = figure2_schema()
        assert dumps(schema) == dumps(schema)

    def test_dumps_loads(self):
        schema = figure2_schema()
        assert loads(dumps(schema)) == schema

    def test_document_is_valid_json(self):
        parsed = json.loads(dumps(figure2_schema()))
        assert parsed["format"] == "repro.schema/1"


class TestKeyed:
    def test_round_trip(self):
        keyed = figure9_keyed_schema()
        restored = keyed_from_dict(keyed_to_dict(keyed))
        assert restored == keyed

    def test_dumps_dispatch(self):
        keyed = figure9_keyed_schema()
        assert loads(dumps(keyed)) == keyed


class TestAnnotated:
    def test_round_trip(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("Dog", "name", "Str", Participation.REQUIRED),
                ("Dog", "age", "Int", Participation.OPTIONAL),
            ],
            spec=[("Puppy", "Dog")],
        )
        assert annotated_from_dict(annotated_to_dict(schema)) == schema

    def test_dumps_dispatch(self):
        schema = AnnotatedSchema.build(
            arrows=[("A", "f", "B", Participation.OPTIONAL)]
        )
        assert loads(dumps(schema)) == schema


class TestInstance:
    def test_round_trip(self):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Person": {"alice"}},
            values={("rex", "owner"): "alice"},
        )
        assert instance_from_dict(instance_to_dict(instance)) == instance

    def test_tuple_oids_round_trip(self):
        # The shape federation's disjointification produces.
        instance = Instance.build(
            extents={"Dog": {("src0", "d1"), "plain"}},
            values={(("src0", "d1"), "owner"): "plain"},
        )
        assert instance_from_dict(instance_to_dict(instance)) == instance
        assert loads(dumps(instance)) == instance

    def test_other_oid_types_rejected(self):
        instance = Instance.build(extents={"Dog": {42}})
        with pytest.raises(SerializationError):
            instance_to_dict(instance)

    def test_malformed_oid_document_rejected(self):
        from repro.io.json_io import instance_from_dict as decode

        with pytest.raises(SerializationError, match="oid"):
            decode(
                {"format": "repro.instance/1", "oids": [{"bad": True}]}
            )


class TestER:
    def test_round_trip(self):
        diagram = figure1_er_diagram()
        assert er_from_dict(er_to_dict(diagram)) == diagram

    def test_dumps_dispatch(self):
        diagram = figure1_er_diagram()
        assert loads(dumps(diagram)) == diagram


class TestOO:
    @staticmethod
    def _diagram():
        from repro.models.oo import OOAttribute, OOClass, OODiagram

        return OODiagram(
            classes=[
                OOClass(
                    "Person",
                    [
                        OOAttribute("name", "Str"),
                        OOAttribute("spouse", "Person"),
                    ],
                ),
                OOClass(
                    "Author",
                    [OOAttribute("royalties", "Money")],
                    bases=("Person",),
                ),
            ],
            value_types=["Unused"],
        )

    def test_round_trip(self):
        from repro.io.json_io import oo_from_dict, oo_to_dict

        diagram = self._diagram()
        assert oo_from_dict(oo_to_dict(diagram)) == diagram

    def test_dumps_dispatch(self):
        diagram = self._diagram()
        assert loads(dumps(diagram)) == diagram

    def test_wrong_format_rejected(self):
        from repro.io.json_io import oo_from_dict

        with pytest.raises(SerializationError, match="format"):
            oo_from_dict({"format": "repro.er/1"})

    def test_malformed_document_rejected(self):
        from repro.io.json_io import oo_from_dict

        with pytest.raises(SerializationError, match="malformed"):
            oo_from_dict(
                {"format": "repro.oo/1", "classes": [{"no-name": True}]}
            )

    def test_explicit_value_types_survive(self):
        from repro.io.json_io import oo_from_dict, oo_to_dict

        recovered = oo_from_dict(oo_to_dict(self._diagram()))
        assert "Unused" in recovered.value_types


class TestLoadsErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_non_object(self):
        with pytest.raises(SerializationError):
            loads("[1, 2]")

    def test_unknown_format(self):
        with pytest.raises(SerializationError):
            loads('{"format": "unknown/9"}')

    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            dumps(42)
