"""Unit tests for key families and key-aware merging (§5)."""

import pytest

from repro.core.assertions import isa
from repro.core.keys import (
    KeyFamily,
    KeyedSchema,
    is_satisfactory,
    merge_keyed,
    minimal_satisfactory_assignment,
)
from repro.core.names import BaseName
from repro.core.schema import Schema
from repro.exceptions import KeyConstraintError
from repro.figures import (
    figure9_advisor_schema,
    figure9_committee_schema,
    figure9_keyed_schema,
    figure10_keyed_schema,
)


class TestKeyFamily:
    def test_minimal_antichain(self):
        family = KeyFamily([{"a"}, {"a", "b"}, {"c"}])
        assert family.min_keys == frozenset(
            {frozenset({"a"}), frozenset({"c"})}
        )

    def test_upward_closure_semantics(self):
        family = KeyFamily([{"a"}])
        assert family.is_superkey({"a"})
        assert family.is_superkey({"a", "b"})
        assert not family.is_superkey({"b"})

    def test_none_family(self):
        family = KeyFamily.none()
        assert family.is_empty()
        assert not family.is_superkey({"a"})

    def test_empty_key_is_top(self):
        family = KeyFamily([set()])
        assert family.is_superkey(set())
        assert family.is_superkey({"anything"})

    def test_union(self):
        left = KeyFamily([{"a"}])
        right = KeyFamily([{"b"}])
        assert (left | right).min_keys == frozenset(
            {frozenset({"a"}), frozenset({"b"})}
        )

    def test_intersection_is_pairwise_union(self):
        left = KeyFamily([{"a"}])
        right = KeyFamily([{"b"}])
        both = left & right
        assert both.min_keys == frozenset({frozenset({"a", "b"})})
        assert both.is_superkey({"a", "b"})
        assert not both.is_superkey({"a"})

    def test_containment(self):
        smaller = KeyFamily([{"a", "b"}])
        larger = KeyFamily([{"a"}])
        assert larger.contains_family(smaller)
        assert not smaller.contains_family(larger)
        assert smaller <= larger
        assert larger >= smaller

    def test_figure9_containment(self):
        committee = KeyFamily.of({"faculty", "victim"})
        advisor = KeyFamily.of({"victim"})
        # SK(Advisor) ⊇ SK(Committee): the paper's check.
        assert advisor.contains_family(committee)

    def test_equality_and_hash(self):
        assert KeyFamily([{"a"}, {"a", "b"}]) == KeyFamily([{"a"}])
        assert hash(KeyFamily([{"a"}])) == hash(KeyFamily([{"a"}]))

    def test_rejects_bad_labels(self):
        with pytest.raises(KeyConstraintError):
            KeyFamily([{""}])

    def test_iteration_order_deterministic(self):
        family = KeyFamily([{"b", "c"}, {"a"}])
        assert list(family) == [frozenset({"a"}), frozenset({"b", "c"})]


class TestKeyedSchema:
    def test_valid_construction(self):
        keyed = figure10_keyed_schema()
        assert keyed.keys_of("Transaction") == KeyFamily.of(
            {"loc", "at"}, {"card", "at"}
        )

    def test_unknown_class_rejected(self, dog_schema):
        with pytest.raises(KeyConstraintError):
            KeyedSchema(dog_schema, {"Unicorn": KeyFamily.of({"horn"})})

    def test_key_outside_out_labels_rejected(self, dog_schema):
        with pytest.raises(KeyConstraintError):
            KeyedSchema(dog_schema, {"Dog": KeyFamily.of({"badge"})})

    def test_spec_monotonicity_enforced(self):
        schema = figure9_keyed_schema().schema
        with pytest.raises(KeyConstraintError):
            KeyedSchema(
                schema,
                {
                    "Committee": KeyFamily.of({"victim"}),
                    "Advisor": KeyFamily.of({"faculty", "victim"}),
                },
            )

    def test_spec_monotonicity_skippable(self):
        schema = Schema.build(
            arrows=[("Sub", "f", "X"), ("Sup", "f", "X")],
            spec=[("Sub", "Sup")],
        )
        keyed = KeyedSchema(
            schema,
            {"Sup": KeyFamily.of({"f"})},
            check_spec_monotone=False,
        )
        assert keyed.keys_of("Sub").is_empty()

    def test_missing_class_has_no_keys(self, dog_schema):
        keyed = KeyedSchema(dog_schema, {})
        assert keyed.keys_of("Dog").is_empty()

    def test_equality_ignores_empty_families(self, dog_schema):
        left = KeyedSchema(dog_schema, {"Dog": KeyFamily.none()})
        right = KeyedSchema(dog_schema, {})
        assert left == right


class TestMinimalAssignment:
    def test_figure9_merge(self):
        merged = merge_keyed(
            figure9_advisor_schema(),
            figure9_committee_schema(),
            assertions=[isa("Advisor", "Committee")],
        )
        assert merged.keys_of("Committee") == KeyFamily.of(
            {"faculty", "victim"}
        )
        # Advisor gets its own key; the Committee key propagates as a
        # superkey and is absorbed by {victim} ⊆ {faculty, victim}.
        assert merged.keys_of("Advisor") == KeyFamily.of({"victim"})

    def test_assignment_is_satisfactory(self):
        inputs = [figure9_advisor_schema(), figure9_committee_schema()]
        merged_schema = merge_keyed(
            *inputs, assertions=[isa("Advisor", "Committee")]
        ).schema
        assignment = minimal_satisfactory_assignment(merged_schema, inputs)
        assert is_satisfactory(merged_schema, assignment, inputs)

    def test_assignment_is_minimal(self):
        inputs = [figure9_advisor_schema(), figure9_committee_schema()]
        merged_schema = merge_keyed(
            *inputs, assertions=[isa("Advisor", "Committee")]
        ).schema
        ours = minimal_satisfactory_assignment(merged_schema, inputs)
        # Dropping Advisor's committee-derived superkey is fine (it is
        # absorbed), but dropping {victim} breaks condition 1.
        broken = dict(ours)
        broken[BaseName("Advisor")] = KeyFamily.of({"faculty", "victim"})
        assert not is_satisfactory(merged_schema, broken, inputs)

    def test_keys_propagate_down_spec(self):
        sup = KeyedSchema(
            Schema.build(arrows=[("Sup", "ssn", "Str")]),
            {"Sup": KeyFamily.of({"ssn"})},
        )
        sub = KeyedSchema(
            Schema.build(arrows=[("Sub", "name", "Str")]),
        )
        merged = merge_keyed(sub, sup, assertions=[isa("Sub", "Sup")])
        assert merged.keys_of("Sub") == KeyFamily.of({"ssn"})

    def test_key_strengthening_across_schemas(self):
        # One schema has the arrow but no key; the other declares the key.
        with_key = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "Str")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        without_key = KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "Str"), ("Person", "name", "Str")]
            ),
        )
        merged = merge_keyed(with_key, without_key)
        assert merged.keys_of("Person") == KeyFamily.of({"ssn"})

    def test_multiple_keys_survive(self):
        merged = merge_keyed(figure10_keyed_schema())
        assert merged.keys_of("Transaction") == KeyFamily.of(
            {"loc", "at"}, {"card", "at"}
        )

    def test_satisfactory_requires_input_containment(self):
        inputs = [figure10_keyed_schema()]
        merged_schema = inputs[0].schema
        assert not is_satisfactory(merged_schema, {}, inputs)
