"""Property tests for the dense-id bitset kernels.

The dense representation (``repro.perf.namespace`` ids + Python-int
bitmask kernels in ``repro.perf.closure``) must be observationally
identical to both preserved oracles: the cold pre-engine reference
(:mod:`repro.perf.reference`) and the pre-bitset set-based engine
(:mod:`repro.perf.setwise`).  Every test here drives the same workload
through all implementations and asserts equality — on results, on the
cycle-detection failure path (including atomic rollback of the id
table), and on the dense snapshot codec that serializes a component
without re-walking its object graph.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ordering import is_sub, join_all
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError, SerializationError
from repro.generators.random_schemas import random_schema_family
from repro.io import json_io
from repro.perf.closure import ClosureBuilder, DenseClosure
from repro.perf.reference import (
    reference_is_sub,
    reference_join_all,
)
from repro.perf.setwise import SetwiseClosureBuilder, setwise_join_all
from repro.service import MergeService
from tests.conftest import schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

families = st.lists(schemas(), min_size=0, max_size=6)


def chain_family(depth: int) -> list:
    """A single deep specialization chain, split across schemas."""
    return [
        Schema.build(
            arrows=[(f"C{i}", "next", f"C{i + 1}")],
            spec=[(f"C{i + 1}", f"C{i}")],
        )
        for i in range(depth)
    ]


def diamond_family(width: int) -> list:
    """Many diamonds sharing a top class — dense pred/succ rectangles."""
    out = []
    for i in range(width):
        out.append(
            Schema.build(
                spec=[(f"L{i}", "Top"), (f"R{i}", "Top"),
                      (f"B{i}", f"L{i}"), (f"B{i}", f"R{i}")],
                arrows=[("Top", f"f{i % 3}", f"L{i}")],
            )
        )
    return out


PATHOLOGICAL = [
    chain_family(24),
    diamond_family(12),
    # Label-heavy: W2 must union many rows per (source, label).
    [
        Schema.build(arrows=[("Hub", f"l{j}", f"T{i}_{j}") for j in range(8)])
        for i in range(6)
    ],
    # Spec-only (no arrows at all): the sweep has nothing to do.
    [Schema.build(spec=[(f"S{i}", f"S{i + 1}")]) for i in range(20)],
]


class TestOracleEquality:
    @RELAXED
    @given(families)
    def test_join_all_equals_both_oracles(self, family):
        try:
            merged = join_all(family)
        except IncompatibleSchemasError:
            with pytest.raises(IncompatibleSchemasError):
                reference_join_all(family)
            with pytest.raises(IncompatibleSchemasError):
                setwise_join_all(family)
            return
        assert merged == reference_join_all(family)
        assert merged == setwise_join_all(family)
        assert merged.spec == reference_join_all(family).spec
        assert merged.arrows == reference_join_all(family).arrows

    @pytest.mark.parametrize("seed", range(6))
    def test_random_families_equal(self, seed):
        family = random_schema_family(
            n_schemas=30,
            pool_size=40,
            n_classes=10,
            n_labels=5,
            arrow_density=0.25,
            spec_density=0.12,
            seed=seed,
        )
        merged = join_all(family)
        assert merged == reference_join_all(family)
        assert merged == setwise_join_all(family)

    @pytest.mark.parametrize(
        "family",
        PATHOLOGICAL,
        ids=["chain", "diamonds", "label-heavy", "spec-only"],
    )
    def test_pathological_families_equal(self, family):
        merged = join_all(family)
        assert merged == reference_join_all(family)
        assert merged == setwise_join_all(family)

    @RELAXED
    @given(schemas(), schemas())
    def test_is_sub_on_dense_built_schemas(self, left, right):
        """``is_sub`` agrees with the reference on engine-built merges."""
        try:
            merged = join_all([left, right])
        except IncompatibleSchemasError:
            return
        assert is_sub(left, merged)
        assert is_sub(left, merged) == reference_is_sub(left, merged)
        assert is_sub(merged, left) == reference_is_sub(merged, left)

    @pytest.mark.parametrize("seed", range(4))
    def test_reach_rows_equal_setwise(self, seed):
        """The dense reach decode matches the set-based engine row-wise."""
        family = random_schema_family(
            n_schemas=12, pool_size=30, n_classes=8, n_labels=4,
            arrow_density=0.3, spec_density=0.1, seed=seed,
        )
        dense_builder = ClosureBuilder().add_schemas(family)
        setwise_builder = SetwiseClosureBuilder(family)
        assert dense_builder.build() == setwise_builder.build()
        state = dense_builder.dense_state()
        decoded = {
            (str(state.names[src]), label): {
                str(state.names[t])
                for t in range(len(state.names))
                if (mask >> t) & 1
            }
            for (src, label), mask in state.reach.items()
        }
        setwise_index = {
            (str(src), label): {str(t) for t in targets}
            for (src, label), targets in
            setwise_builder.build()._reach_index().items()
        }
        assert decoded == setwise_index


class TestCycleDetection:
    def test_cycle_raises_and_rolls_back(self):
        builder = ClosureBuilder().add_schemas(
            [Schema.build(spec=[("B", "A")], arrows=[("A", "f", "X")])]
        )
        before = builder.build()
        bad = Schema.build(spec=[("A", "Z"), ("Z", "B")])  # A ⊑ Z ⊑ B ⊑ A
        with pytest.raises(IncompatibleSchemasError) as err:
            builder.add_schemas([bad])
        assert err.value.cycle, "error must carry a witness cycle"
        # Atomic rollback: state AND id table revert — the names the
        # failed fold interned ("Z") are gone, and the builder keeps
        # accepting compatible schemas afterwards.
        assert builder.build() == before
        assert "Z" not in {str(c) for c in builder.classes}
        builder.add_schemas([Schema.build(spec=[("C", "B")])])
        assert is_sub(before, builder.build())

    @RELAXED
    @given(families, st.randoms(use_true_random=False))
    def test_cycle_behavior_matches_reference(self, family, rng):
        """Randomly reverse spec edges; all engines agree on failure."""
        edges = sorted(
            {
                (str(p), str(q))
                for g in family
                for p, q in g.spec
                if p != q
            }
        )
        if edges:
            flipped = [
                (q, p) for p, q in rng.sample(edges, rng.randint(1, len(edges)))
            ]
            family = family + [Schema.build(spec=flipped)]
        try:
            merged = join_all(family)
        except IncompatibleSchemasError:
            with pytest.raises(IncompatibleSchemasError):
                reference_join_all(family)
            with pytest.raises(IncompatibleSchemasError):
                setwise_join_all(family)
            return
        assert merged == reference_join_all(family)
        assert merged == setwise_join_all(family)

    def test_failed_fold_leaves_dense_state_valid(self):
        builder = ClosureBuilder().add_schemas(
            [Schema.build(spec=[("B", "A")], arrows=[("B", "f", "B")])]
        )
        with pytest.raises(IncompatibleSchemasError):
            builder.add_schemas([Schema.build(spec=[("A", "New"), ("New", "B")])])
        builder.dense_state().validate()  # no partial ids, masks in range


class TestIdRemapping:
    def test_interning_keeps_existing_ids_stable(self):
        builder = ClosureBuilder().add_schemas(
            [Schema.build(spec=[("B", "A")])]
        )
        first = builder.dense_state()
        builder.add_schemas([Schema.build(spec=[("C", "B"), ("D", "A")])])
        second = builder.dense_state()
        # Dense ids are append-only: the original prefix of the id
        # table is untouched, so masks from before the fold still
        # address the same classes.
        assert second.names[: len(first.names)] == first.names

    def test_component_merge_remaps_into_one_table(self):
        service = MergeService()
        service.register(
            [
                Schema.build(spec=[("Puppy", "Dog")]),
                Schema.build(arrows=[("Case", "judge", "Court")]),
            ]
        )
        assert len(service.components()) == 2
        sid_dog = service.component_of("Dog")
        before = service.component_snapshot(sid_dog)
        # Bridge the two components: their shards merge, and the merged
        # shard's snapshot must carry one id table spanning the union.
        service.register([Schema.build(arrows=[("Dog", "case", "Case")])])
        assert len(service.components()) == 1
        after = service.component_snapshot(service.component_of("Dog"))
        union = {str(c) for c in after.dense.names}
        assert {"Puppy", "Dog", "Case", "Court"} <= union
        assert after.schema() == service.merged_view("Dog")
        # The pre-merge snapshot is still internally consistent (old id
        # space), just superseded.
        before.dense.validate()
        assert is_sub(before.schema(), after.schema())


class TestSnapshotCodec:
    @RELAXED
    @given(families)
    def test_round_trip(self, family):
        try:
            builder = ClosureBuilder().add_schemas(family)
        except IncompatibleSchemasError:
            return
        state = builder.dense_state()
        assert json_io.snapshot_from_dict(json_io.snapshot_to_dict(state)) == state
        assert json_io.loads(json_io.dumps(state)) == state

    def test_round_trip_preserves_schema(self):
        family = random_schema_family(
            n_schemas=15, pool_size=30, n_classes=8, n_labels=4,
            arrow_density=0.25, spec_density=0.1, seed=11,
        )
        state = ClosureBuilder().add_schemas(family).dense_state()
        decoded = json_io.snapshot_from_dict(json_io.snapshot_to_dict(state))
        assert decoded.to_schema() == join_all(family)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["succ"].__setitem__(0, "f00"),  # out-of-range bits
            lambda d: d["succ"].__setitem__(1, "3"),  # antisymmetry broken
            lambda d: d["reach"].append([0, "f", "0"]),  # empty target row
            lambda d: d.__setitem__("format", "repro.schema/1"),
            lambda d: d["reach"].append(["0", "f", "1"]),  # non-int id
            lambda d: d["names"].__setitem__(0, "Dog"),  # duplicate name
            lambda d: d["succ"].pop(),  # table length mismatch
        ],
    )
    def test_tampered_documents_rejected(self, mutate):
        state = (
            ClosureBuilder()
            .add_spec_edge("Puppy", "Dog")
            .add_arrow("Dog", "owner", "Person")
            .dense_state()
        )
        doc = json_io.snapshot_to_dict(state)
        mutate(doc)
        with pytest.raises(SerializationError):
            json_io.snapshot_from_dict(doc)

    def test_validate_rejects_non_transitive(self):
        good = (
            ClosureBuilder()
            .add_spec_edge("C", "B")
            .add_spec_edge("B", "A")
            .dense_state()
        )
        # Drop C ⊑ A from C's mask: still reflexive, no cycle, but the
        # relation is no longer transitively closed.
        broken = DenseClosure(
            good.names,
            tuple(
                mask & ~(1 << 2) if i == 0 else mask
                for i, mask in enumerate(good.succ)
            ),
            good.reach,
        )
        if broken.succ == good.succ:  # id layout shifted; recompute
            pytest.skip("unexpected id layout")
        with pytest.raises(ValueError):
            broken.validate()

    def test_service_snapshot_round_trip_and_cache(self):
        service = MergeService()
        service.register(
            [
                Schema.build(
                    arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
                ),
                Schema.build(arrows=[("Case", "judge", "Court")]),
            ]
        )
        snap = service.component_snapshot("Puppy")
        doc = snap.to_dict()
        assert doc["component"]["sid"] == snap.sid
        assert json_io.snapshot_from_dict(doc) == snap.dense
        assert snap.schema() == service.merged_view("Puppy")
        # Second lookup is a cache hit; a write to the *other*
        # component revalidates instead of rebuilding.
        assert service.component_snapshot("Puppy") is snap
        service.register([Schema.build(arrows=[("Case", "clerk", "Clerk")])])
        assert service.component_snapshot("Puppy") is snap
        # A write to the snapshot's own component invalidates it.
        service.register([Schema.build(spec=[("Chihuahua", "Dog")])])
        fresh = service.component_snapshot("Puppy")
        assert fresh is not snap
        assert "Chihuahua" in {str(c) for c in fresh.dense.names}
