"""Property-based tests for lower merges and annotated schemas (§6)."""

from hypothesis import HealthCheck, given, settings

from repro.core.lower import (
    annotated_leq,
    complete_classes,
    lower_merge,
    lower_properize,
    lower_properness_violations,
)
from repro.core.participation import glb

from tests.conftest import annotated_schemas

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAnnotatedOrdering:
    @given(annotated_schemas())
    @RELAXED
    def test_reflexive(self, schema):
        assert annotated_leq(schema, schema)

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_antisymmetric_on_same_classes(self, left, right):
        left_c, right_c = complete_classes([left, right])
        if annotated_leq(left_c, right_c) and annotated_leq(
            right_c, left_c
        ):
            assert left_c == right_c


class TestLowerMergeIsGLB:
    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_below_completed_inputs(self, left, right):
        merged = lower_merge(left, right)
        for completed in complete_classes([left, right]):
            assert annotated_leq(merged, completed)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_greatest_among_lower_bounds(self, one, two, three):
        merged = lower_merge(one, two)
        # lower_merge(one, two, three) is a lower bound of one and two
        # (after completion); it must lie below the binary merge.
        triple = lower_merge(one, two, three)
        completed_pair = complete_classes(
            [merged, triple]
        )
        assert annotated_leq(completed_pair[1], completed_pair[0])

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_commutative(self, left, right):
        assert lower_merge(left, right) == lower_merge(right, left)

    @given(annotated_schemas(), annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_associative(self, one, two, three):
        assert lower_merge(lower_merge(one, two), three) == lower_merge(
            one, lower_merge(two, three)
        )

    @given(annotated_schemas())
    @RELAXED
    def test_idempotent(self, schema):
        assert lower_merge(schema, schema) == schema

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_arrow_constraints_are_pointwise_glb(self, left, right):
        merged = lower_merge(left, right)
        for (source, label, target) in merged.present_arrows():
            expected = glb(
                left.participation_of(source, label, target),
                right.participation_of(source, label, target),
            )
            assert (
                merged.participation_of(source, label, target) == expected
            )


class TestLowerProperize:
    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_result_has_no_violations(self, left, right):
        merged = lower_merge(left, right)
        proper = lower_properize(merged)
        assert lower_properness_violations(proper) == []

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_idempotent(self, left, right):
        proper = lower_properize(lower_merge(left, right))
        assert lower_properize(proper) == proper

    @given(annotated_schemas())
    @RELAXED
    def test_identity_when_already_proper(self, schema):
        if not lower_properness_violations(schema):
            assert lower_properize(schema) == schema

    @given(annotated_schemas(), annotated_schemas())
    @RELAXED
    def test_base_classes_preserved(self, left, right):
        merged = lower_merge(left, right)
        proper = lower_properize(merged)
        assert merged.classes <= proper.classes
        assert merged.spec <= proper.spec
