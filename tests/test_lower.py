"""Unit tests for annotated schemas and lower merges (§6)."""

import pytest

from repro.core.lower import (
    AnnotatedSchema,
    annotated_leq,
    complete_classes,
    lower_merge,
    lower_properize,
    lower_properness_violations,
)
from repro.core.names import BaseName, GenName
from repro.core.participation import Participation
from repro.exceptions import (
    IncompatibleSchemasError,
    ParticipationError,
    SchemaValidationError,
)

P0 = Participation.ABSENT
P01 = Participation.OPTIONAL
P1 = Participation.REQUIRED


class TestAnnotatedSchemaBuild:
    def test_default_constraint_is_required(self):
        schema = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])
        assert schema.participation_of("Dog", "name", "Str") == P1

    def test_explicit_constraints(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", P01)]
        )
        assert schema.participation_of("Dog", "age", "Int") == P01

    def test_string_constraints_parsed(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "0/1")]
        )
        assert schema.participation_of("Dog", "age", "Int") == P01

    def test_absent_entries_dropped(self):
        schema = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", P0)])
        assert schema.participation_of("Dog", "age", "Int") == P0
        assert not schema.present_arrows()

    def test_required_propagates_down_spec(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", P1)],
            spec=[("Puppy", "Dog")],
        )
        assert schema.participation_of("Puppy", "name", "Str") == P1

    def test_optional_does_not_propagate_down_spec(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "chip", "Id", P01)],
            spec=[("Puppy", "Dog")],
        )
        assert schema.participation_of("Puppy", "chip", "Id") == P0

    def test_constraints_propagate_up_targets(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "home", "Kennel", P01)],
            spec=[("Kennel", "Place")],
        )
        assert schema.participation_of("Dog", "home", "Place") == P01

    def test_required_beats_optional_on_duplicates(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("Dog", "name", "Str", P01),
                ("Dog", "name", "Str", P1),
            ]
        )
        assert schema.participation_of("Dog", "name", "Str") == P1

    def test_spec_cycle_rejected(self):
        with pytest.raises(IncompatibleSchemasError):
            AnnotatedSchema.build(spec=[("A", "B"), ("B", "A")])

    def test_bad_arity_rejected(self):
        with pytest.raises(SchemaValidationError):
            AnnotatedSchema.build(arrows=[("A", "f")])

    def test_from_schema_round_trip(self, dog_schema):
        annotated = AnnotatedSchema.from_schema(dog_schema)
        assert annotated.required_schema() == dog_schema
        assert annotated.present_arrows() == dog_schema.arrows

    def test_from_schema_rejects_absent_default(self, dog_schema):
        with pytest.raises(ParticipationError):
            AnnotatedSchema.from_schema(dog_schema, default=P0)

    def test_constructor_requires_closed_table(self):
        a, b, p = BaseName("A"), BaseName("B"), BaseName("P")
        spec = frozenset({(a, a), (b, b), (p, p), (p, a)})
        with pytest.raises(SchemaValidationError):
            AnnotatedSchema(
                frozenset({a, b, p}),
                spec,
                {(a, "f", b): P1},  # missing inherited (p, f, b)
            )


class TestAnnotatedOrdering:
    def test_reflexive(self):
        schema = AnnotatedSchema.build(arrows=[("A", "f", "B", P01)])
        assert annotated_leq(schema, schema)

    def test_optional_below_required(self):
        optional = AnnotatedSchema.build(arrows=[("A", "f", "B", P01)])
        required = AnnotatedSchema.build(arrows=[("A", "f", "B", P1)])
        assert annotated_leq(optional, required)
        assert not annotated_leq(required, optional)

    def test_absence_over_known_classes_is_information(self):
        # Left knows A and B but has no arrow (constraint 0); right has
        # the arrow required: incomparable.
        bare = AnnotatedSchema.build(classes=["A", "B"])
        with_arrow = AnnotatedSchema.build(arrows=[("A", "f", "B", P1)])
        assert not annotated_leq(bare, with_arrow)
        assert not annotated_leq(with_arrow, bare)

    def test_optional_below_absence(self):
        optional = AnnotatedSchema.build(arrows=[("A", "f", "B", P01)])
        bare = AnnotatedSchema.build(classes=["A", "B"])
        assert annotated_leq(optional, bare)


class TestCompleteClasses:
    def test_union_classes_everywhere(self):
        one = AnnotatedSchema.build(classes=["A"])
        two = AnnotatedSchema.build(classes=["B"])
        completed = complete_classes([one, two])
        for schema in completed:
            assert schema.classes == {BaseName("A"), BaseName("B")}

    def test_default_adds_isolated(self):
        one = AnnotatedSchema.build(classes=["A"])
        two = AnnotatedSchema.build(spec=[("B", "C")])
        completed = complete_classes([one, two])
        assert not completed[0].is_spec("B", "C")

    def test_import_specializations(self):
        one = AnnotatedSchema.build(classes=["A"])
        two = AnnotatedSchema.build(spec=[("B", "C")])
        completed = complete_classes([one, two], import_specializations=True)
        assert completed[0].is_spec("B", "C")


class TestLowerMerge:
    def test_agreement_preserved(self):
        one = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])
        two = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])
        merged = lower_merge(one, two)
        assert merged.participation_of("Dog", "name", "Str") == P1

    def test_disagreement_becomes_optional(self):
        one = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        two = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
        )
        merged = lower_merge(one, two)
        assert merged.participation_of("Dog", "age", "Int") == P01
        assert merged.participation_of("Dog", "breed", "Breed") == P01

    def test_missing_class_retained(self):
        # The Guide-Dog problem: plain meet loses it; lower merge keeps it.
        one = AnnotatedSchema.build(
            arrows=[("Guide-dog", "name", "Str")]
        )
        two = AnnotatedSchema.build(arrows=[("Dog", "name", "Str")])
        merged = lower_merge(one, two)
        assert BaseName("Guide-dog") in merged.classes
        assert merged.participation_of("Guide-dog", "name", "Str") == P01

    def test_is_lower_bound_of_completed_inputs(self):
        one = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        two = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", P01)]
        )
        merged = lower_merge(one, two)
        for completed in complete_classes([one, two]):
            assert annotated_leq(merged, completed)

    def test_empty_merge(self):
        assert lower_merge() == AnnotatedSchema.empty()

    def test_spec_intersection(self):
        one = AnnotatedSchema.build(spec=[("A", "B"), ("C", "D")])
        two = AnnotatedSchema.build(spec=[("A", "B")])
        merged = lower_merge(one, two)
        assert merged.is_spec("A", "B")
        assert not merged.is_spec("C", "D")

    def test_import_spec_keeps_foreign_hierarchy(self):
        one = AnnotatedSchema.build(spec=[("Guide-dog", "Dog")])
        two = AnnotatedSchema.build(classes=["Dog"])
        merged = lower_merge(one, two, import_specializations=True)
        assert merged.is_spec("Guide-dog", "Dog")


class TestLowerProperize:
    def test_no_violations_is_identity(self):
        schema = AnnotatedSchema.build(arrows=[("A", "f", "B")])
        assert lower_properize(schema) is schema or lower_properize(
            schema
        ) == schema

    def test_conflicting_targets_generalized(self):
        one = AnnotatedSchema.build(arrows=[("F", "a", "C")])
        two = AnnotatedSchema.build(arrows=[("F", "a", "D")])
        merged = lower_merge(one, two)
        assert lower_properness_violations(merged)
        proper = lower_properize(merged)
        gen = GenName(["C", "D"])
        assert gen in proper.classes
        assert proper.is_spec("C", gen) and proper.is_spec("D", gen)
        assert proper.participation_of("F", "a", gen) == P01
        assert not lower_properness_violations(proper)

    def test_required_conflict_gets_intersection_class(self):
        # Two *required* arrows to incomparable targets assert the value
        # lies in both — an intersection constraint, repaired by an
        # implicit class *below* (not a generalization above).
        from repro.core.names import ImplicitName

        schema = AnnotatedSchema.build(
            arrows=[("F", "a", "C", P1), ("F", "a", "D", P1)]
        )
        proper = lower_properize(schema)
        imp = ImplicitName(["C", "D"])
        assert imp in proper.classes
        assert proper.is_spec(imp, "C") and proper.is_spec(imp, "D")
        assert proper.participation_of("F", "a", imp) == P1
        assert not lower_properness_violations(proper)

    def test_required_typing_drops_conflicting_optional_refinements(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("F", "a", "Top", P1),
                ("F", "a", "C", P01),
                ("F", "a", "D", P01),
            ],
            spec=[("C", "Top"), ("D", "Top")],
        )
        proper = lower_properize(schema)
        # The required typing at Top is the canonical class; the
        # conflicting optional refinements were soundly dropped.
        assert proper.participation_of("F", "a", "Top") == P1
        assert proper.participation_of("F", "a", "C") == Participation.ABSENT
        assert not lower_properness_violations(proper)

    def test_gen_class_below_common_generalizations(self):
        schema = AnnotatedSchema.build(
            arrows=[("F", "a", "C", P01), ("F", "a", "D", P01)],
            spec=[("C", "Top"), ("D", "Top")],
        )
        proper = lower_properize(schema)
        gen = GenName(["C", "D"])
        assert proper.is_spec(gen, "Top")

    def test_convergence_on_self_referential_gen_sources(self):
        # Regression: when a generalization class's own (regenerated)
        # member arrows conflict, the repair must not resurrect the
        # arrows it just replaced.  This exact shape looped forever
        # before the created-this-round guard.
        merged = AnnotatedSchema.build(
            arrows=[
                ("C000", "l00", "C000", P01),
                ("C000", "l00", "C001", P01),
                ("C000", "l00", "C002", P01),
                ("C000", "l00", "C003", P01),
                ("C000", "l01", "C001", P01),
                ("C000", "l01", "C002", P01),
                ("C001", "l00", "C001", P01),
                ("C001", "l01", "C000", P01),
                ("C001", "l01", "C002", P01),
                ("C002", "l00", "C000", P01),
                ("C002", "l00", "C002", P01),
                ("C002", "l01", "C002", P01),
                ("C004", "l00", "C001", P01),
                ("C004", "l00", "C002", P01),
            ],
            spec=[("C000", "C002")],
        )
        proper = lower_properize(merged)
        assert not lower_properness_violations(proper)
        assert lower_properize(proper) == proper

    def test_gen_inherits_unanimous_member_arrows(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("F", "a", "C", P01),
                ("F", "a", "D", P01),
                ("C", "g", "X", P1),
                ("D", "g", "X", P1),
            ]
        )
        proper = lower_properize(schema)
        gen = GenName(["C", "D"])
        assert proper.participation_of(gen, "g", "X") == P1
