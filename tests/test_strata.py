"""Unit tests for stratification and strata preservation (§2, §7)."""

import pytest

from repro.core.assertions import isa
from repro.core.schema import Schema
from repro.exceptions import TranslationError
from repro.models.strata import (
    ER_STRATIFICATION,
    RELATIONAL_STRATIFICATION,
    StratifiedSchema,
    Stratification,
    merge_stratified,
)


def _er_stratified(schema: Schema, assignment) -> StratifiedSchema:
    return StratifiedSchema(schema, ER_STRATIFICATION, assignment)


class TestStratification:
    def test_relational_rules(self):
        assert RELATIONAL_STRATIFICATION.allows_arrow("relation", "domain")
        assert not RELATIONAL_STRATIFICATION.allows_arrow(
            "relation", "relation"
        )
        assert not RELATIONAL_STRATIFICATION.allows_spec(
            "relation", "relation"
        )

    def test_er_rules(self):
        assert ER_STRATIFICATION.allows_arrow("relationship", "entity")
        assert ER_STRATIFICATION.allows_arrow("entity", "domain")
        assert not ER_STRATIFICATION.allows_arrow("domain", "entity")
        assert ER_STRATIFICATION.allows_spec("entity", "entity")
        assert not ER_STRATIFICATION.allows_spec("entity", "relationship")

    def test_unknown_stratum_in_rule_rejected(self):
        with pytest.raises(TranslationError):
            Stratification(
                name="broken",
                strata=("a",),
                arrow_rules=frozenset({("a", "b")}),
                spec_rules=frozenset(),
            )


class TestStratifiedSchema:
    def test_valid(self):
        schema = Schema.build(arrows=[("Dog", "age", "Int")])
        stratified = _er_stratified(
            schema, {"Dog": "entity", "Int": "domain"}
        )
        assert stratified.stratum_of("Dog") == "entity"
        assert stratified.classes_in("domain") == {
            next(iter(schema.reach("Dog", "age")))
        }

    def test_missing_assignment_rejected(self):
        schema = Schema.build(classes=["Dog"])
        with pytest.raises(TranslationError):
            _er_stratified(schema, {})

    def test_unknown_stratum_rejected(self):
        schema = Schema.build(classes=["Dog"])
        with pytest.raises(TranslationError):
            _er_stratified(schema, {"Dog": "starship"})

    def test_extra_assignment_rejected(self):
        schema = Schema.build(classes=["Dog"])
        with pytest.raises(TranslationError):
            _er_stratified(schema, {"Dog": "entity", "Cat": "entity"})

    def test_forbidden_arrow_rejected(self):
        schema = Schema.build(arrows=[("Int", "weird", "Dog")])
        with pytest.raises(TranslationError):
            _er_stratified(schema, {"Dog": "entity", "Int": "domain"})

    def test_forbidden_spec_rejected(self):
        schema = Schema.build(spec=[("Dog", "Lives")])
        with pytest.raises(TranslationError):
            _er_stratified(
                schema, {"Dog": "entity", "Lives": "relationship"}
            )


class TestMergeStratified:
    def test_merge_preserves_strata(self):
        one = _er_stratified(
            Schema.build(arrows=[("Dog", "age", "Int")]),
            {"Dog": "entity", "Int": "domain"},
        )
        two = _er_stratified(
            Schema.build(arrows=[("Dog", "owner", "Person")]),
            {"Dog": "entity", "Person": "domain"},
        )
        merged = merge_stratified(one, two)
        assert merged.stratum_of("Dog") == "entity"
        assert merged.schema.has_arrow("Dog", "age", "Int")
        assert merged.schema.has_arrow("Dog", "owner", "Person")

    def test_implicit_classes_inherit_stratum(self):
        one = _er_stratified(
            Schema.build(
                arrows=[("R", "a", "E1")],
            ),
            {"R": "relationship", "E1": "entity"},
        )
        two = _er_stratified(
            Schema.build(arrows=[("R", "a", "E2")]),
            {"R": "relationship", "E2": "entity"},
        )
        merged = merge_stratified(one, two)
        implicit = [
            cls
            for cls in merged.schema.classes
            if cls not in one.schema.classes | two.schema.classes
        ]
        assert len(implicit) == 1
        assert merged.stratum_of(implicit[0]) == "entity"

    def test_stratum_conflict_rejected(self):
        one = _er_stratified(
            Schema.build(classes=["Thing"]), {"Thing": "entity"}
        )
        two = _er_stratified(
            Schema.build(classes=["Thing"]), {"Thing": "domain"}
        )
        with pytest.raises(TranslationError) as excinfo:
            merge_stratified(one, two)
        assert "structural conflict" in str(excinfo.value)

    def test_mixed_stratum_implicit_rejected(self):
        # R gains arrows to an entity and a domain: the implicit class
        # would mix strata, which cannot translate back.
        one = _er_stratified(
            Schema.build(arrows=[("R", "a", "E")]),
            {"R": "relationship", "E": "entity"},
        )
        two = _er_stratified(
            Schema.build(arrows=[("R", "a", "D")]),
            {"R": "relationship", "D": "domain"},
        )
        with pytest.raises(TranslationError) as excinfo:
            merge_stratified(one, two)
        assert "mixes strata" in str(excinfo.value)

    def test_policy_mismatch_rejected(self):
        er = _er_stratified(
            Schema.build(classes=["Dog"]), {"Dog": "entity"}
        )
        rel = StratifiedSchema(
            Schema.build(classes=["Dog"]),
            RELATIONAL_STRATIFICATION,
            {"Dog": "relation"},
        )
        with pytest.raises(TranslationError):
            merge_stratified(er, rel)

    def test_assertion_classes_must_be_stratified(self):
        one = _er_stratified(
            Schema.build(classes=["Dog"]), {"Dog": "entity"}
        )
        with pytest.raises(TranslationError):
            merge_stratified(one, assertions=[isa("Mystery", "Dog")])

    def test_assertion_over_known_classes_fine(self):
        one = _er_stratified(
            Schema.build(classes=["Dog", "Animal"]),
            {"Dog": "entity", "Animal": "entity"},
        )
        merged = merge_stratified(one, assertions=[isa("Dog", "Animal")])
        assert merged.schema.is_spec("Dog", "Animal")
