"""Property tests for the extension modules (multivalued, restructure)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.merge import upper_merge
from repro.extensions.multivalued import (
    MultivaluedSchema,
    Valence,
    merge_multivalued,
)
from repro.tools.restructure import (
    inline_relationship,
    reify_attribute,
    reify_relationship,
)

from tests.conftest import schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def multivalued_schemas(draw):
    base = draw(schemas(max_classes=5))
    valences = {}
    for cls in base.sorted_classes():
        # Only annotate arrows the class itself carries, respecting the
        # downward-SINGLE completion by never marking a subclass MULTI.
        if base.specializations_of(cls) != {cls}:
            continue
        for label in sorted(base.out_labels(cls)):
            if draw(st.booleans()):
                valences[(cls, label)] = Valence.MULTI
    return MultivaluedSchema(base, valences)


class TestMultivaluedLaws:
    @given(multivalued_schemas(), multivalued_schemas())
    @RELAXED
    def test_upper_commutative(self, left, right):
        assert merge_multivalued(left, right) == merge_multivalued(
            right, left
        )

    @given(multivalued_schemas(), multivalued_schemas())
    @RELAXED
    def test_lower_commutative(self, left, right):
        assert merge_multivalued(
            left, right, rule="lower"
        ) == merge_multivalued(right, left, rule="lower")

    @given(multivalued_schemas())
    @RELAXED
    def test_idempotent(self, schema):
        assert merge_multivalued(schema, schema) == merge_multivalued(
            schema
        )

    @given(multivalued_schemas(), multivalued_schemas())
    @RELAXED
    def test_schema_part_is_ordinary_merge(self, left, right):
        merged = merge_multivalued(left, right)
        assert merged.schema == upper_merge(left.schema, right.schema)

    @given(multivalued_schemas(), multivalued_schemas())
    @RELAXED
    def test_rules_bracket_each_other(self, left, right):
        upper = merge_multivalued(left, right)
        lower = merge_multivalued(left, right, rule="lower")
        pairs = {
            (cls, label)
            for cls in upper.schema.classes
            for label in upper.schema.out_labels(cls)
        }
        for cls, label in pairs:
            # SINGLE is the stronger statement; upper never weakens a
            # SINGLE to MULTI that lower kept SINGLE.
            if lower.valence_of(cls, label) == Valence.SINGLE:
                assert upper.valence_of(cls, label) == Valence.SINGLE


class TestRestructureLaws:
    @given(schemas(max_classes=5))
    @RELAXED
    def test_reify_attribute_keeps_rest_intact(self, schema):
        candidates = [
            (cls, label)
            for cls in schema.sorted_classes()
            for label in sorted(schema.out_labels(cls))
        ]
        if not candidates:
            return
        cls, label = candidates[0]
        reified = reify_attribute(schema, cls, label, "Fresh-entity")
        # All arrows not under the reified label survive verbatim.
        for (s, a, t) in schema.arrows:
            if a != label:
                assert reified.has_arrow(s, a, t)
        assert reified.spec >= schema.spec

    @given(schemas(max_classes=5))
    @RELAXED
    def test_reify_then_inline_round_trips(self, schema):
        candidates = [
            (cls, label)
            for cls in schema.sorted_classes()
            for label in sorted(schema.out_labels(cls))
            # The round trip is exact when the class's own arrow is not
            # also carried by a strict generalization (otherwise W1
            # regenerates the inherited copy and inlining sees extras).
            if not any(
                label in schema.out_labels(sup)
                for sup in schema.generalizations_of(cls)
                if sup != cls
            )
            and len(schema.min_classes(schema.reach(cls, label))) == 1
            and schema.specializations_of(cls) == {cls}
        ]
        if not candidates:
            return
        cls, label = candidates[0]
        reified = reify_relationship(
            schema, cls, label, "Fresh-node", "src", "tgt"
        )
        back = inline_relationship(
            reified, "Fresh-node", "src", "tgt", label
        )
        assert back == schema
