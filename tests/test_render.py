"""Unit tests for the ASCII and DOT renderers."""


from repro.core.lower import AnnotatedSchema
from repro.core.merge import merge_report
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.figures import figure3_schemas, figure9_keyed_schema
from repro.render.ascii_art import (
    render_annotated,
    render_keyed,
    render_report,
    render_schema,
)
from repro.render.dot import annotated_to_dot, schema_to_dot


class TestRenderSchema:
    def test_sections_present(self, dog_schema):
        text = render_schema(dog_schema, "dogs")
        assert "dogs" in text
        assert "classes (6):" in text
        assert "Police-dog ==> Dog" in text
        assert "Dog --owner--> Person" in text

    def test_deterministic(self, dog_schema):
        assert render_schema(dog_schema) == render_schema(dog_schema)

    def test_empty_schema(self):
        assert "(empty schema)" in render_schema(Schema.empty())

    def test_covers_only(self):
        schema = Schema.build(spec=[("A", "B"), ("B", "C")])
        text = render_schema(schema)
        assert "A ==> B" in text and "B ==> C" in text
        assert "A ==> C" not in text


class TestRenderKeyed:
    def test_keys_section(self):
        text = render_keyed(figure9_keyed_schema(), "figure 9")
        assert "keys (2 keyed class(es)):" in text
        assert "Advisor: {victim}" in text
        assert "Committee: {faculty, victim}" in text


class TestRenderAnnotated:
    def test_optional_marker(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("Dog", "name", "Str", Participation.REQUIRED),
                ("Dog", "age", "Int", Participation.OPTIONAL),
            ]
        )
        text = render_annotated(schema)
        assert "Dog --name--> Str" in text
        assert "Dog --age?--> Int" in text


class TestRenderReport:
    def test_full_report(self):
        report = merge_report(*figure3_schemas())
        text = render_report(report)
        assert "input 1" in text and "input 2" in text
        assert "weak merge (LUB)" in text
        assert "implicit classes introduced below: {B1, B2}" in text
        assert "merged schema (proper)" in text


class TestDot:
    def test_digraph_structure(self, dog_schema):
        text = schema_to_dot(dog_schema, "dogs")
        assert text.startswith('digraph "dogs" {')
        assert text.endswith("}")
        assert 'label="Dog"' in text
        assert "style=bold" in text  # an ISA edge exists

    def test_implicit_class_dashed(self):
        from repro.core.merge import upper_merge

        merged = upper_merge(*figure3_schemas())
        text = schema_to_dot(merged)
        assert "style=dashed" in text

    def test_label_quoting(self):
        schema = Schema.build(arrows=[('We"ird', "f", "B")])
        text = schema_to_dot(schema)
        assert '\\"' in text

    def test_inherited_arrows_not_drawn(self, dog_schema):
        text = schema_to_dot(dog_schema)
        # Police-dog inherits owner from Dog; the figure convention
        # omits the inherited copy.
        dog_line = [l for l in text.splitlines() if 'label="owner"' in l]
        assert len(dog_line) == 1

    def test_annotated_optional_dashed(self):
        schema = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", Participation.OPTIONAL)]
        )
        text = annotated_to_dot(schema)
        assert "style=dashed" in text

    def test_deterministic(self, dog_schema):
        assert schema_to_dot(dog_schema) == schema_to_dot(dog_schema)


class TestRenderInstance:
    def test_renders_extents_and_values(self):
        from repro.instances.instance import Instance
        from repro.render.ascii_art import render_instance

        instance = Instance.build(
            extents={"Dog": {"d1"}, "Person": {"p1"}},
            values={("d1", "owner"): "p1"},
        )
        text = render_instance(instance, "pets")
        assert text.startswith("pets\n====")
        assert "objects (2):" in text
        assert "Dog (1): 'd1'" in text
        assert "'d1'.owner = 'p1'" in text

    def test_empty_instance(self):
        from repro.instances.instance import Instance
        from repro.render.ascii_art import render_instance

        assert "(empty instance)" in render_instance(Instance.empty())

    def test_deterministic(self):
        from repro.instances.instance import Instance
        from repro.render.ascii_art import render_instance

        instance = Instance.build(
            extents={"Dog": {"b", "a", "c"}},
            values={("a", "x"): "b", ("c", "x"): "a"},
        )
        assert render_instance(instance) == render_instance(instance)

    def test_tuple_oids_render(self):
        from repro.instances.instance import Instance
        from repro.render.ascii_art import render_instance

        instance = Instance.build(extents={"Dog": {("src0", "d1")}})
        assert "('src0', 'd1')" in render_instance(instance)
