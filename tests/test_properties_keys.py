"""Property-based tests for key families and key merging (§5)."""



from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import (
    KeyFamily,
    is_satisfactory,
    merge_keyed,
    minimal_satisfactory_assignment,
)
from repro.generators.random_schemas import random_keyed_family

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MERGE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

LABELS = ["a", "b", "c", "d"]


@st.composite
def key_families(draw):
    n_keys = draw(st.integers(min_value=0, max_value=3))
    keys = [
        draw(
            st.sets(
                st.sampled_from(LABELS), min_size=1, max_size=len(LABELS)
            )
        )
        for _ in range(n_keys)
    ]
    return KeyFamily(keys)


class TestKeyFamilyAlgebra:
    @given(key_families())
    @RELAXED
    def test_min_keys_form_antichain(self, family):
        for key_one in family.min_keys:
            for key_two in family.min_keys:
                if key_one != key_two:
                    assert not key_one <= key_two

    @given(key_families())
    @RELAXED
    def test_upward_closure(self, family):
        for key in family.min_keys:
            assert family.is_superkey(key | {"z-extra"})

    @given(key_families(), key_families())
    @RELAXED
    def test_union_is_least_upper_bound(self, left, right):
        union = left | right
        assert union.contains_family(left)
        assert union.contains_family(right)
        # Least: anything containing both contains the union.
        assert (left | right | left).contains_family(union)

    @given(key_families(), key_families())
    @RELAXED
    def test_intersection_semantics(self, left, right):
        both = left & right
        for labels_size in range(len(LABELS) + 1):
            sample = set(LABELS[:labels_size])
            assert both.is_superkey(sample) == (
                left.is_superkey(sample) and right.is_superkey(sample)
            )

    @given(key_families(), key_families())
    @RELAXED
    def test_commutativity(self, left, right):
        assert left | right == right | left
        assert left & right == right & left

    @given(key_families(), key_families(), key_families())
    @RELAXED
    def test_associativity(self, one, two, three):
        assert (one | two) | three == one | (two | three)
        assert (one & two) & three == one & (two & three)

    @given(key_families())
    @RELAXED
    def test_idempotence(self, family):
        assert family | family == family
        assert family & family == family

    @given(key_families(), key_families())
    @RELAXED
    def test_containment_is_partial_order(self, left, right):
        if left.contains_family(right) and right.contains_family(left):
            assert left == right


class TestMergedAssignments:
    @given(st.integers(min_value=0, max_value=30))
    @MERGE_SETTINGS
    def test_minimal_assignment_is_satisfactory(self, seed):
        inputs = random_keyed_family(n_schemas=2, seed=seed)
        merged = merge_keyed(*inputs)
        assignment = minimal_satisfactory_assignment(
            merged.schema, inputs
        )
        assert is_satisfactory(merged.schema, assignment, inputs)

    @given(st.integers(min_value=0, max_value=30))
    @MERGE_SETTINGS
    def test_minimality_pointwise(self, seed):
        inputs = random_keyed_family(n_schemas=2, seed=seed)
        merged = merge_keyed(*inputs)
        ours = minimal_satisfactory_assignment(merged.schema, inputs)
        # Minimality: strictly shrinking any class's family (dropping
        # one of its minimal keys) breaks satisfaction unless the key
        # was implied elsewhere — in which case the propagation would
        # have reconstructed exactly the same family.
        for cls, family in ours.items():
            weakened = dict(ours)
            weakened.pop(cls)
            if not is_satisfactory(merged.schema, weakened, inputs):
                continue  # dropping broke it: that family was needed
            rebuilt = minimal_satisfactory_assignment(
                merged.schema, inputs
            )
            assert rebuilt[cls] == family

    @given(st.integers(min_value=0, max_value=30))
    @MERGE_SETTINGS
    def test_merge_keyed_order_independent(self, seed):
        one, two = random_keyed_family(n_schemas=2, seed=seed)
        assert merge_keyed(one, two) == merge_keyed(two, one)

    @given(st.integers(min_value=0, max_value=30))
    @MERGE_SETTINGS
    def test_merged_assignment_spec_monotone(self, seed):
        inputs = random_keyed_family(n_schemas=2, seed=seed)
        merged = merge_keyed(*inputs)
        for sub, sup in merged.schema.strict_spec():
            assert merged.keys_of(sub).contains_family(
                merged.keys_of(sup)
            )
