"""Unit tests for class names and implicit-name flattening."""

import pytest

from repro.core.names import (
    BaseName,
    GenName,
    ImplicitName,
    base_members,
    check_label,
    name,
    names,
    sort_key,
)
from repro.exceptions import SchemaValidationError


class TestBaseName:
    def test_wraps_string(self):
        assert BaseName("Dog").value == "Dog"
        assert str(BaseName("Dog")) == "Dog"

    def test_equality_and_hash(self):
        assert BaseName("Dog") == BaseName("Dog")
        assert BaseName("Dog") != BaseName("Cat")
        assert hash(BaseName("Dog")) == hash(BaseName("Dog"))

    def test_ordering_is_lexicographic(self):
        assert BaseName("Ant") < BaseName("Bee")

    def test_rejects_empty_string(self):
        with pytest.raises(SchemaValidationError):
            BaseName("")

    def test_rejects_non_string(self):
        with pytest.raises(SchemaValidationError):
            BaseName(3)

    def test_immutable(self):
        cls = BaseName("Dog")
        with pytest.raises(AttributeError):
            cls.value = "Cat"


class TestImplicitName:
    def test_members_are_recorded(self):
        imp = ImplicitName(["A", "B"])
        assert imp.members == frozenset({BaseName("A"), BaseName("B")})

    def test_order_independent(self):
        assert ImplicitName(["A", "B"]) == ImplicitName(["B", "A"])

    def test_flattens_nested_implicits(self):
        inner = ImplicitName(["A", "B"])
        outer = ImplicitName([inner, "C"])
        assert outer == ImplicitName(["A", "B", "C"])

    def test_flattening_is_associative(self):
        left = ImplicitName([ImplicitName(["A", "B"]), "C"])
        right = ImplicitName(["A", ImplicitName(["B", "C"])])
        assert left == right

    def test_does_not_flatten_gen_names(self):
        gen = GenName(["A", "B"])
        imp = ImplicitName([gen, "C"])
        assert gen in imp.members

    def test_requires_two_members(self):
        with pytest.raises(SchemaValidationError):
            ImplicitName(["A"])
        with pytest.raises(SchemaValidationError):
            ImplicitName(["A", "A"])

    def test_str_is_origin_recording(self):
        assert str(ImplicitName(["B", "A"])) == "<A&B>"

    def test_distinct_from_gen_of_same_members(self):
        assert ImplicitName(["A", "B"]) != GenName(["A", "B"])
        assert hash(ImplicitName(["A", "B"])) != hash(GenName(["A", "B"]))


class TestGenName:
    def test_flattens_nested_gens(self):
        inner = GenName(["A", "B"])
        assert GenName([inner, "C"]) == GenName(["A", "B", "C"])

    def test_str(self):
        assert str(GenName(["B", "A"])) == "[A|B]"

    def test_requires_two_members(self):
        with pytest.raises(SchemaValidationError):
            GenName(["X"])


class TestCoercions:
    def test_name_accepts_strings(self):
        assert name("Dog") == BaseName("Dog")

    def test_name_passes_through(self):
        imp = ImplicitName(["A", "B"])
        assert name(imp) is imp

    def test_name_rejects_other_types(self):
        with pytest.raises(SchemaValidationError):
            name(3.14)

    def test_names_builds_frozenset(self):
        assert names(["A", "B", "A"]) == frozenset(
            {BaseName("A"), BaseName("B")}
        )

    def test_check_label(self):
        assert check_label("owner") == "owner"
        with pytest.raises(SchemaValidationError):
            check_label("")
        with pytest.raises(SchemaValidationError):
            check_label(7)


class TestSortKey:
    def test_total_order_across_kinds(self):
        base = BaseName("Z")
        imp = ImplicitName(["A", "B"])
        gen = GenName(["A", "B"])
        ordered = sorted([gen, imp, base], key=sort_key)
        assert ordered == [base, imp, gen]

    def test_deterministic_for_composites(self):
        a = ImplicitName(["A", "B"])
        b = ImplicitName(["A", "C"])
        assert sort_key(a) < sort_key(b)

    def test_rejects_non_names(self):
        with pytest.raises(SchemaValidationError):
            sort_key("not-a-name")


class TestBaseMembers:
    def test_base_name(self):
        assert base_members(BaseName("A")) == frozenset({BaseName("A")})

    def test_composite_recursion(self):
        nested = ImplicitName([GenName(["A", "B"]), "C"])
        assert base_members(nested) == frozenset(
            {BaseName("A"), BaseName("B"), BaseName("C")}
        )
