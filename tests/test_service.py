"""Tests for repro.service — the long-lived, sharded merge service.

Four properties carry the whole design, and each gets its own class
here: answers equal the cold-path ``join_all`` (per component and
globally), registration batches commit atomically or not at all,
invalidation is component-local, and everything survives concurrent
use from a thread pool.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError
from repro.generators.random_schemas import random_schema_family
from repro.generators.workloads import get_request_stream
from repro.service import (
    MergeService,
    RegisterReceipt,
    SnapshotCache,
    UnionFind,
    plan_groups,
)
from repro.service.bench import replay


def pets_schema() -> Schema:
    return Schema.build(
        arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
    )


def court_schema() -> Schema:
    return Schema.build(arrows=[("Case", "judge", "Court")])


def bridge_schema() -> Schema:
    return Schema.build(arrows=[("Person", "argues", "Case")])


class TestRegistry:
    def test_disjoint_schemas_land_in_separate_components(self):
        service = MergeService()
        outcome = service.register([pets_schema(), court_schema()])
        assert outcome == RegisterReceipt(
            accepted=2, components=2, generation=1
        )
        assert service.component_of("Dog") != service.component_of("Case")

    def test_overlapping_schemas_share_a_component(self):
        service = MergeService(
            [pets_schema(), Schema.build(arrows=[("Person", "name", "Str")])]
        )
        assert service.component_of("Dog") == service.component_of("Str")
        assert len(service.components()) == 1

    def test_bridge_merges_existing_components(self):
        service = MergeService([pets_schema(), court_schema()])
        assert len(service.components()) == 2
        service.register([bridge_schema()])
        assert len(service.components()) == 1
        assert service.component_of("Dog") == service.component_of("Court")
        merged = service.merged_view("Dog")
        assert merged.has_arrow("Person", "argues", "Case")
        assert merged.has_arrow("Puppy", "owner", "Person")

    def test_generation_bumps_once_per_batch(self):
        service = MergeService()
        outcome = service.register([pets_schema(), court_schema()])
        assert outcome.generation == 1
        outcome = service.register([bridge_schema()])
        assert outcome.generation == 2

    def test_empty_schemas_are_accepted_but_change_nothing(self):
        service = MergeService([pets_schema()])
        before = service.service_stats()["generation"]
        outcome = service.register([Schema.empty()])
        assert outcome.accepted == 1
        assert outcome.generation == before
        assert service.service_stats()["components"] == 1

    def test_unknown_lookups_raise_key_error(self):
        service = MergeService([pets_schema()])
        with pytest.raises(KeyError):
            service.merged_view("Unicorn")
        with pytest.raises(KeyError):
            service.merged_view(99)
        with pytest.raises(KeyError):
            service.query("Unicorn")
        assert service.component_of("Unicorn") is None


class TestColdPathEquivalence:
    def test_global_view_equals_join_all_on_overlapping_family(self):
        family = random_schema_family(n_schemas=20, seed=3)
        service = MergeService(family)
        assert service.merged_view() == join_all(family)

    def test_component_views_equal_join_all_after_full_replay(self):
        initial, requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        replay(service, requests)
        assert len(service.components()) > 1
        for sid in service.components():
            members = list(service.component_schemas(sid))
            assert service.merged_view(sid) == join_all(members)

    def test_global_view_equals_join_all_across_shards(self):
        initial, _requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        assert service.merged_view() == join_all(initial)

    def test_incremental_equals_batch_registration(self):
        family = random_schema_family(n_schemas=12, seed=5)
        one_shot = MergeService(family)
        incremental = MergeService()
        for schema in family:
            incremental.register([schema])
        assert incremental.merged_view() == one_shot.merged_view()


class TestAtomicRollback:
    def incompatible_pair(self):
        return (
            Schema.build(spec=[("X", "Y")]),
            Schema.build(spec=[("Y", "X")]),
        )

    def test_incompatible_batch_raises_and_commits_nothing(self):
        service = MergeService([pets_schema()])
        baseline_view = service.merged_view("Dog")
        baseline = service.service_stats()
        good = Schema.build(arrows=[("Fresh", "f", "Dog")])
        bad_one, bad_two = self.incompatible_pair()
        with pytest.raises(IncompatibleSchemasError):
            service.register([good, bad_one, bad_two])
        after = service.service_stats()
        assert after["generation"] == baseline["generation"]
        assert after["components"] == baseline["components"]
        assert after["registered_schemas"] == baseline["registered_schemas"]
        # The good member of the failed batch must not leak in.
        assert service.component_of("Fresh") is None
        assert service.merged_view("Dog") == baseline_view

    def test_conflict_with_already_registered_schema_rolls_back(self):
        service = MergeService([Schema.build(spec=[("X", "Y")])])
        with pytest.raises(IncompatibleSchemasError):
            service.register([Schema.build(spec=[("Y", "X")])])
        assert service.service_stats()["generation"] == 1
        assert service.merged_view("X") == Schema.build(spec=[("X", "Y")])

    def test_failed_batch_leaves_caches_serving(self):
        service = MergeService([pets_schema(), court_schema()])
        service.merged_view("Dog")
        bad_one, bad_two = self.incompatible_pair()
        with pytest.raises(IncompatibleSchemasError):
            service.register([bad_one, bad_two])
        hits_before = service.service_stats()["component_cache"]["hits"]
        service.merged_view("Dog")
        assert (
            service.service_stats()["component_cache"]["hits"]
            == hits_before + 1
        )


class TestInvalidation:
    @pytest.fixture
    def sharded_service(self):
        initial, _requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        for sid in service.components():
            service.merged_view(sid)
        service.merged_view()
        return service

    def test_registration_invalidates_only_its_component(
        self, sharded_service
    ):
        service = sharded_service
        components = sorted(service.components())
        anchor = str(
            service.component_schemas(components[0])[0].sorted_classes()[0]
        )
        before = service.service_stats()["component_cache"]["misses"]
        service.register(
            [Schema.build(arrows=[(anchor, "probe", "ProbeTarget")])]
        )
        for sid in sorted(service.components()):
            service.merged_view(sid)
        delta = service.service_stats()["component_cache"]["misses"] - before
        assert delta == 1

    def test_query_partial_hit_when_other_component_changes(
        self, sharded_service
    ):
        service = sharded_service
        components = sorted(service.components())
        anchor_touched = str(
            service.component_schemas(components[0])[0].sorted_classes()[0]
        )
        anchor_other = str(
            service.component_schemas(components[1])[0].sorted_classes()[0]
        )
        first = service.query(anchor_other)
        service.register(
            [
                Schema.build(
                    arrows=[(anchor_touched, "probe", "ProbeTarget")]
                )
            ]
        )
        partial_before = service.service_stats()["snapshot_cache"][
            "partial_hits"
        ]
        second = service.query(anchor_other)
        assert second == first
        assert (
            service.service_stats()["snapshot_cache"]["partial_hits"]
            == partial_before + 1
        )

    def test_query_recomputed_when_its_component_changes(
        self, sharded_service
    ):
        service = sharded_service
        components = sorted(service.components())
        anchor = str(
            service.component_schemas(components[0])[0].sorted_classes()[0]
        )
        first = service.query(anchor)
        service.register(
            [Schema.build(arrows=[(anchor, "probe", "ProbeTarget")])]
        )
        second = service.query(anchor)
        assert ("probe", "ProbeTarget") in second.arrows_out
        assert second != first

    def test_global_view_tracks_registrations(self, sharded_service):
        service = sharded_service
        before = service.merged_view()
        components = sorted(service.components())
        anchor = str(
            service.component_schemas(components[0])[0].sorted_classes()[0]
        )
        service.register(
            [Schema.build(arrows=[(anchor, "probe", "ProbeTarget")])]
        )
        after = service.merged_view()
        assert after != before
        assert after.has_arrow(anchor, "probe", "ProbeTarget")

    def test_clear_caches_only_costs_recomputation(self, sharded_service):
        service = sharded_service
        view = service.merged_view()
        service.clear_caches()
        assert service.merged_view() == view


class TestConcurrency:
    def test_concurrent_queries_against_static_registry(self):
        initial, _requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        expected = join_all(initial)
        classes = sorted(str(c) for g in initial for c in g.classes)

        def read(index: int):
            assert service.merged_view() == expected
            answer = service.query(classes[index % len(classes)])
            assert answer.component in service.components()
            return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(read, range(64)))

    def test_concurrent_register_and_query(self):
        initial, _requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        components = sorted(service.components())
        anchors = [
            str(service.component_schemas(sid)[0].sorted_classes()[0])
            for sid in components
        ]

        def write(index: int):
            anchor = anchors[index % len(anchors)]
            service.register(
                [
                    Schema.build(
                        arrows=[(anchor, f"w{index:02d}", f"W{index:02d}")]
                    )
                ]
            )
            return True

        def read(index: int):
            service.merged_view(anchors[index % len(anchors)])
            answer = service.query(anchors[index % len(anchors)])
            return answer.class_name == anchors[index % len(anchors)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            writes = [pool.submit(write, i) for i in range(16)]
            reads = [pool.submit(read, i) for i in range(48)]
            assert all(f.result() for f in writes + reads)

        # Every write landed exactly once, atomically.
        stats = service.service_stats()
        assert stats["registered_schemas"] == len(initial) + 16
        assert stats["generation"] == 1 + 16
        for sid in service.components():
            members = list(service.component_schemas(sid))
            assert service.merged_view(sid) == join_all(members)


class TestSnapshotCache:
    def test_miss_is_distinct_from_none(self):
        cache = SnapshotCache("t", maxsize=4)
        assert cache.lookup("k", 1) is SnapshotCache.MISS
        cache.store("k", None, 1)
        assert cache.lookup("k", 1) is None

    def test_generation_mismatch_without_predicate_is_a_miss(self):
        cache = SnapshotCache("t", maxsize=4)
        cache.store("k", "v", 1)
        assert cache.lookup("k", 2) is SnapshotCache.MISS

    def test_partial_hit_restamps_to_current_generation(self):
        cache = SnapshotCache("t", maxsize=4)
        cache.store("k", "v", 1, stamp="fingerprint")
        seen = []
        assert cache.lookup("k", 5, lambda s: seen.append(s) or True) == "v"
        assert seen == ["fingerprint"]
        # Re-stamped: a plain lookup at the new generation now hits.
        assert cache.lookup("k", 5) == "v"
        assert cache.stats()["partial_hits"] == 1
        assert cache.stats()["hits"] == 1

    def test_eviction_respects_maxsize(self):
        cache = SnapshotCache("t", maxsize=3)
        for index in range(10):
            cache.store(index, index, 1)
        assert len(cache) <= 3
        assert cache.lookup(9, 1) == 9


class TestSharding:
    def test_union_find_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        uf.find("e")
        groups = {
            frozenset(members) for members in uf.groups().values()
        }
        assert groups == {frozenset("abcd"), frozenset("e")}

    def test_plan_groups_links_batch_members_through_shared_names(self):
        left = Schema.build(arrows=[("A", "f", "B")])
        right = Schema.build(arrows=[("B", "g", "C")])
        plans = plan_groups([left, right], {})
        assert len(plans) == 1
        assert plans[0][1] == [0, 1]

    def test_plan_groups_links_through_existing_shards(self):
        incoming = Schema.build(arrows=[("A", "f", "B")])
        schema_a = Schema.build(classes=["A"])
        schema_b = Schema.build(classes=["B"])
        assignment = {
            schema_a.sorted_classes()[0]: 0,
            schema_b.sorted_classes()[0]: 7,
        }
        plans = plan_groups([incoming], assignment)
        assert plans == [({0, 7}, [0])]

    def test_plan_groups_reports_untouched_shards_nowhere(self):
        schema_c = Schema.build(classes=["C"])
        assignment = {schema_c.sorted_classes()[0]: 3}
        plans = plan_groups([Schema.build(classes=["Z"])], {**assignment})
        assert plans == [(set(), [0])]


class TestRequestStreams:
    def test_streams_are_deterministic(self):
        stream = get_request_stream("service-tiny")
        first_initial, first_requests = stream.make()
        second_initial, second_requests = stream.make()
        assert first_initial == second_initial
        assert first_requests == second_requests

    def test_unknown_stream_raises_with_known_names(self):
        with pytest.raises(KeyError, match="service-tiny"):
            get_request_stream("nope")

    def test_sharded_stream_registrations_stay_in_their_pod(self):
        initial, requests = get_request_stream("service-sharded-small").make()
        service = MergeService(initial)
        components_before = len(service.components())
        replay(service, requests)
        # Late registrations overlap existing pods, never bridge them.
        assert len(service.components()) == components_before

    def test_replay_counts_every_request(self):
        initial, requests = get_request_stream("service-tiny").make()
        counts = replay(MergeService(initial), requests)
        assert sum(counts.values()) == len(requests)
        assert counts["register"] == 2
