"""Tests for repro.obs: metrics, tracing, exporters, service integration.

The contracts under test, roughly in dependency order:

* streaming histograms estimate p50/p95/p99 within one log-bucket ratio
  of the exact ``statistics.quantiles`` answer, with exact min/max;
* the registry get-or-creates shared instruments and replaces
  (last-wins) registered per-instance ones;
* spans nest per thread and parent-link correctly, and the disabled
  mode allocates no span objects at all (the regression bar for the
  hot-path budget);
* exporters round-trip spans/metrics through JSONL and rotate files;
* one ``MergeService.register`` call produces the documented span tree
  and increments the documented counters, and the ``stats()``
  compatibility views keep their historical shapes.
"""

from __future__ import annotations

import json
import statistics
import threading

import pytest

from repro import obs
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError
from repro.obs import _state
from repro.obs.exporters import JsonlExporter, parse_jsonl, prometheus_text
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import _NULL_SPAN, render_spans, span, tracer
from repro.sentinels import Sentinel
from repro.service import MergeService
from repro.service.snapshots import SnapshotCache


@pytest.fixture(autouse=True)
def _telemetry_reset():
    """Every test starts disabled with an empty span ring."""
    was_enabled = _state.enabled
    tracer().clear()
    yield
    _state.set_enabled(was_enabled)
    tracer().clear()


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class TestHistogram:
    def test_percentiles_track_exact_quantiles(self):
        # A lognormal spread over ~3 decades: the shape service
        # latencies actually have.
        import random

        rng = random.Random(42)
        samples = [rng.lognormvariate(-9.0, 1.0) for _ in range(5000)]
        h = Histogram("t.latency")
        for value in samples:
            h.observe(value)
        # One bucket spans a factor of 10**(1/10) ~ 1.26; allow a shade
        # more for interpolation at the distribution's steep ends.
        factor = 1.35
        for q in (0.50, 0.95, 0.99):
            exact = statistics.quantiles(samples, n=100)[int(q * 100) - 1]
            estimate = h.quantile(q)
            assert exact / factor <= estimate <= exact * factor, (
                f"q={q}: estimate {estimate:.3g} vs exact {exact:.3g}"
            )

    def test_extremes_are_exact(self):
        h = Histogram("t.extremes")
        for value in (0.003, 0.017, 0.4):
            h.observe(value)
        assert h.quantile(0.0) == 0.003
        assert h.quantile(1.0) == 0.4
        assert h.min == 0.003 and h.max == 0.4

    def test_empty_histogram(self):
        h = Histogram("t.empty")
        assert h.quantile(0.5) is None
        assert h.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_overflow_and_underflow_observations_still_count(self):
        h = Histogram("t.range", lo=1e-3, hi=1.0)
        h.observe(1e-9)   # below lo: first bucket
        h.observe(50.0)   # above hi: overflow bucket
        assert h.count == 2
        assert h.quantile(1.0) == 50.0
        bounds = [bound for bound, _count in h.buckets()]
        assert bounds[-1] == float("inf")

    def test_quantile_fraction_validated(self):
        with pytest.raises(ValueError):
            Histogram("t.bad").quantile(1.5)

    def test_thread_safety_of_observe(self):
        h = Histogram("t.threads")

        def hammer():
            for i in range(1000):
                h.observe(1e-6 * (i + 1))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("t.requests", shard="x")
        b = registry.counter("t.requests", shard="x")
        assert a is b
        assert registry.counter("t.requests", shard="y") is not a

    def test_register_is_last_wins(self):
        registry = MetricsRegistry()
        old = registry.register(Counter("t.hits", cache="c"))
        old.inc(5)
        new = registry.register(Counter("t.hits", cache="c"))
        assert registry.get("t.hits", cache="c") is new
        assert registry.value("t.hits", cache="c") == 0
        assert old.value == 5  # the old owner's reference still works

    def test_callback_gauge_reads_live(self):
        registry = MetricsRegistry()
        box = {"n": 1}
        registry.register(Gauge("t.size", fn=lambda: box["n"]))
        assert registry.value("t.size") == 1
        box["n"] = 7
        assert registry.value("t.size") == 7

    def test_snapshot_is_sorted_and_jsonable(self):
        registry = MetricsRegistry()
        registry.counter("t.b").inc()
        registry.counter("t.a").inc(2)
        registry.histogram("t.h").observe(0.5)
        snapshot = registry.snapshot()
        assert [e["name"] for e in snapshot] == ["t.a", "t.b", "t.h"]
        json.dumps(snapshot)  # must not raise


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracing:
    def test_disabled_mode_allocates_no_spans(self):
        # The regression bar: while the switch is off, span() returns
        # one shared no-op object and records nothing.
        handle_a = span("t.request", user=1)
        handle_b = span("t.other")
        assert handle_a is _NULL_SPAN and handle_b is _NULL_SPAN
        with span("t.request"):
            with span("t.child"):
                pass
        assert tracer().spans() == []

    def test_nesting_links_parents(self):
        obs.enable()
        with span("t.root", request=9) as root:
            with span("t.mid") as mid:
                with span("t.leaf") as leaf:
                    pass
        finished = {s.name: s for s in tracer().spans()}
        assert finished["t.leaf"].parent_id == mid.span_id
        assert finished["t.mid"].parent_id == root.span_id
        assert finished["t.root"].parent_id is None
        assert finished["t.root"].attrs["request"] == 9
        assert leaf.duration_s >= 0

    def test_exception_is_recorded_and_propagates(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with span("t.boom"):
                raise RuntimeError("kaput")
        (finished,) = tracer().spans()
        assert "kaput" in finished.attrs["error"]

    def test_threads_get_independent_stacks(self):
        obs.enable()
        errors = []
        barrier = threading.Barrier(4)

        def work(tag):
            try:
                barrier.wait(timeout=5)
                with span("t.outer", tag=tag) as outer:
                    with span("t.inner", tag=tag) as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append((tag, "bad parent"))
                    if outer.parent_id is not None:
                        errors.append((tag, "outer should be a root"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((tag, repr(exc)))

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        finished = tracer().spans()
        assert len(finished) == 8
        # Every inner span parents to its own thread's outer span.
        by_id = {s.span_id: s for s in finished}
        for s in finished:
            if s.name == "t.inner":
                assert by_id[s.parent_id].attrs["tag"] == s.attrs["tag"]

    def test_sink_errors_are_contained(self):
        obs.enable()

        def bad_sink(finished):
            raise OSError("disk full")

        tracer().add_sink(bad_sink)
        try:
            with span("t.survives"):
                pass
        finally:
            tracer().remove_sink(bad_sink)
        assert [s.name for s in tracer().spans()] == ["t.survives"]
        assert tracer().dropped_sink_errors >= 1

    def test_render_spans_indents_children(self):
        obs.enable()
        with span("t.root"):
            with span("t.child"):
                pass
        text = render_spans(tracer().spans())
        root_line, child_line = (
            line for line in text.splitlines() if line.strip()
        )
        assert root_line.startswith("t.root")
        assert child_line.startswith("  t.child")


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("t.requests").inc(11)
        registry.histogram("t.latency").observe(0.002)
        path = tmp_path / "telemetry.jsonl"
        obs.enable()
        exporter = JsonlExporter(path)
        tracer().add_sink(exporter.export_span)
        try:
            with span("t.work", component=3):
                pass
            exporter.export_event("t.done", outcome="ok")
            exporter.export_metrics(registry)
        finally:
            tracer().remove_sink(exporter.export_span)
            exporter.close()
        records = parse_jsonl(path)
        assert [r["type"] for r in records] == ["span", "event", "metrics"]
        span_record, event, metrics = records
        assert span_record["name"] == "t.work"
        assert span_record["attrs"] == {"component": 3}
        assert span_record["duration_s"] >= 0
        assert event["outcome"] == "ok"
        by_name = {e["name"]: e for e in metrics["instruments"]}
        assert by_name["t.requests"]["value"] == 11
        assert by_name["t.latency"]["count"] == 1

    def test_jsonl_rotation_keeps_one_backup(self, tmp_path):
        path = tmp_path / "log.jsonl"
        exporter = JsonlExporter(path, max_bytes=200)
        for i in range(50):
            exporter.export_event("t.tick", i=i)
        exporter.close()
        backup = tmp_path / "log.jsonl.1"
        assert backup.exists()
        assert path.stat().st_size <= 400
        # Both generations parse; together they end with the last tick.
        combined = parse_jsonl(backup) + parse_jsonl(path)
        assert combined[-1]["i"] == 49

    def test_callback_sink(self):
        lines = []
        exporter = JsonlExporter(lines.append)
        exporter.export_event("t.ping")
        assert parse_jsonl(lines)[0]["name"] == "t.ping"

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("t.hits", cache="snap").inc(4)
        registry.histogram("t.lat").observe(0.01)
        text = prometheus_text(registry)
        assert '# TYPE t_hits counter' in text
        assert 't_hits{cache="snap"} 4' in text
        assert "t_lat_count 1" in text
        assert 't_lat_bucket{le="+Inf"} 1' in text


# ----------------------------------------------------------------------
# Sentinels
# ----------------------------------------------------------------------


class TestSentinels:
    def test_shared_sentinel_class(self):
        from repro.perf.memo import MemoCache

        assert isinstance(MemoCache.MISS, Sentinel)
        assert isinstance(SnapshotCache.MISS, Sentinel)
        assert MemoCache.MISS is not SnapshotCache.MISS
        assert repr(SnapshotCache.MISS) == "<SnapshotCache.MISS>"


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


def _schema(*arrows):
    return Schema.build(arrows=list(arrows))


class TestServiceTelemetry:
    def test_register_produces_documented_span_tree(self):
        obs.enable()
        service = MergeService()
        service.register(
            [
                _schema(("Dog", "owner", "Person")),
                _schema(("Case", "judge", "Court")),
            ]
        )
        names = [s.name for s in tracer().spans()]
        # Spans finish leaves-first; the register root closes last.
        assert names[-1] == "service.register"
        assert names.count("service.rebuild") == 2
        assert "service.plan" in names and "service.snapshot" in names
        root = tracer().spans()[-1]
        children = [
            s for s in tracer().spans() if s.parent_id == root.span_id
        ]
        assert {c.name for c in children} == {
            "service.plan",
            "service.rebuild",
            "service.snapshot",
        }

    def test_register_counters(self):
        service = MergeService()  # counters live even while disabled
        tel = service.telemetry
        service.register([_schema(("Dog", "owner", "Person"))])
        service.register([])
        assert tel.calls.value == 2
        assert tel.schemas.value == 1
        assert tel.rollbacks.value == 0

    def test_rollback_counter_and_atomicity(self):
        service = MergeService()
        service.register(
            [
                Schema.build(
                    classes=["Dog", "Animal"], spec=[("Dog", "Animal")]
                )
            ]
        )
        # Individually fine, but folding it into the existing shard
        # closes a Dog <=> Animal cycle — the batch must roll back.
        bad = Schema.build(
            classes=["Dog", "Animal"], spec=[("Animal", "Dog")]
        )
        with pytest.raises(IncompatibleSchemasError):
            service.register([bad])
        assert service.telemetry.rollbacks.value == 1
        assert service.service_stats()["generation"] == 1

    def test_merged_view_outcome_counters(self):
        service = MergeService(
            [
                _schema(("Dog", "owner", "Person")),
                _schema(("Case", "judge", "Court")),
            ]
        )
        tel = service.telemetry
        service.merged_view("Dog")      # cold: miss
        service.merged_view("Dog")      # cached: hit
        assert tel.view_misses.value == 1
        assert tel.view_hits.value == 1
        service.merged_view()           # global, parts cold for "Case"
        assert tel.view_misses.value == 2
        service.merged_view()           # snapshot hit
        assert tel.view_hits.value == 2

    def test_global_view_from_cached_parts_is_partial_hit(self):
        service = MergeService(
            [
                _schema(("Dog", "owner", "Person")),
                _schema(("Case", "judge", "Court")),
            ]
        )
        tel = service.telemetry
        service.merged_view()  # warm the parts and the global snapshot
        # A registration bumps the generation; the parts of the touched
        # component rebuild, the other part is served from cache — but
        # once all parts are warm again, the next global view rebuilds
        # purely from cached parts: a partial hit.
        service.register([_schema(("Dog", "walks", "Park"))])
        service.merged_view("Dog")
        before = tel.view_partial.value
        service.merged_view()
        assert tel.view_partial.value == before + 1

    def test_sampled_latency_histograms(self):
        obs.enable()
        service = MergeService(
            [_schema(("Dog", "owner", "Person"))],
            telemetry_sample_every=1,
        )
        for _ in range(5):
            service.merged_view("Dog")
            service.query("Dog")
        tel = service.telemetry
        assert tel.view_duration.count == 5
        assert tel.query_duration.count == 5
        assert tel.register_duration.count == 1
        assert tel.view_duration.quantile(0.5) > 0

    def test_disabled_mode_records_no_durations(self):
        service = MergeService(
            [_schema(("Dog", "owner", "Person"))],
            telemetry_sample_every=1,
        )
        for _ in range(5):
            service.merged_view("Dog")
        assert service.telemetry.view_duration.count == 0
        assert tracer().spans() == []

    def test_enable_rephases_live_services(self):
        service = MergeService(
            [_schema(("Dog", "owner", "Person"))],
            telemetry_sample_every=1,
        )
        service.merged_view("Dog")
        assert service.telemetry.view_duration.count == 0
        obs.enable()
        service.merged_view("Dog")
        assert service.telemetry.view_duration.count == 1
        obs.disable()
        service.merged_view("Dog")
        assert service.telemetry.view_duration.count == 1

    def test_sample_every_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MergeService(telemetry_sample_every=3)

    def test_service_stats_compat_shape(self):
        service = MergeService([_schema(("Dog", "owner", "Person"))])
        service.merged_view("Dog")
        service.query("Dog")
        stats = service.service_stats()
        assert stats["components"] == 1
        assert stats["registered_schemas"] == 1
        assert stats["generation"] == 1
        assert stats["requests_served"] == 2
        for block in ("component_cache", "snapshot_cache"):
            assert {
                "size",
                "maxsize",
                "hits",
                "misses",
                "partial_hits",
                "evictions",
            } <= set(stats[block])
        assert stats["telemetry"]["merged_view"]["misses"] == 1
        json.dumps(stats)  # must stay JSON-able

    def test_instruments_visible_in_global_registry(self):
        service = MergeService([_schema(("Dog", "owner", "Person"))])
        service.merged_view("Dog")
        registry = obs.registry()
        assert registry.value("service.register.schemas") == 1
        assert registry.value("service.components") == 1
        assert (
            registry.value("snapshot.misses", cache="service.components") == 1
        )
        # A newer service takes over the shared names (last-wins).
        replacement = MergeService()
        assert registry.value("service.register.schemas") == 0
        del replacement

    def test_gauges_survive_service_collection(self):
        import gc

        service = MergeService([_schema(("Dog", "owner", "Person"))])
        assert obs.registry().value("service.generation") == 1
        del service
        gc.collect()
        assert obs.registry().value("service.generation") == 0


class TestSnapshotCacheTelemetry:
    def test_evictions_are_counted(self):
        cache = SnapshotCache("t.tiny", maxsize=2)
        for i in range(4):
            cache.store(i, i, generation=1)
        assert cache.evictions == 2
        assert cache.stats()["evictions"] == 2
        assert len(cache) == 2

    def test_counters_report_through_registry(self):
        cache = SnapshotCache("t.reporting")
        cache.lookup("missing", generation=1)
        cache.store("k", 1, generation=1)
        cache.lookup("k", generation=1)
        registry = obs.registry()
        assert registry.value("snapshot.misses", cache="t.reporting") == 1
        assert registry.value("snapshot.hits", cache="t.reporting") == 1
        assert (
            registry.value("snapshot.revalidations", cache="t.reporting") == 0
        )


class TestMemoGauges:
    def test_memo_caches_publish_gauges(self):
        from repro.core.ordering import is_sub

        registry = obs.registry()
        hits_before = registry.value("memo.hits", cache="ordering.is_sub")
        misses_before = registry.value("memo.misses", cache="ordering.is_sub")
        left = _schema(("Dog", "owner", "Person"))
        right = _schema(
            ("Dog", "owner", "Person"), ("Dog", "walks", "Park")
        )
        assert is_sub(left, right) and is_sub(left, right)
        assert (
            registry.value("memo.misses", cache="ordering.is_sub")
            >= misses_before + 1
        )
        assert (
            registry.value("memo.hits", cache="ordering.is_sub")
            >= hits_before + 1
        )


class TestClosureCounters:
    def test_build_and_insert_counters_advance(self):
        from repro.perf.closure import ClosureBuilder

        registry = obs.registry()
        inserts = registry.get("closure.inserts")
        rebuilds = registry.get("closure.components_rebuilt")
        swept = registry.get("closure.arrows_swept")
        i0, r0, s0 = inserts.value, rebuilds.value, swept.value
        builder = ClosureBuilder()
        builder.add_spec_edge("Puppy", "Dog")
        builder.add_arrow("Dog", "owner", "Person")
        builder.build()
        assert inserts.value == i0 + 1
        assert rebuilds.value == r0 + 1
        assert swept.value == s0 + 1
