"""Tests for repro.service.api_types — typed results and the compat shim.

The API redesign's contract: ``register`` and ``query`` return frozen
dataclasses that (a) are immutable and hashable, (b) compare equal to
the dict shape they replaced without warning, and (c) still *subscript*
like those dicts for exactly one release, loudly.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.core.schema import Schema
from repro.service import (
    MergeService,
    QueryResult,
    RegisterReceipt,
    RegistrationEntry,
    RetireReceipt,
)


@pytest.fixture
def receipt() -> RegisterReceipt:
    return RegisterReceipt(accepted=2, components=2, generation=1)


@pytest.fixture
def retirement() -> RetireReceipt:
    return RetireReceipt(name="pets", versions=(1, 2), components=3,
                         generation=7)


@pytest.fixture
def result() -> QueryResult:
    service = MergeService(
        [
            Schema.build(
                arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
            )
        ]
    )
    return service.query("Dog")


class TestRegisterReceipt:
    def test_service_returns_the_typed_receipt(self):
        service = MergeService()
        outcome = service.register([Schema.build(classes=["A"])])
        assert isinstance(outcome, RegisterReceipt)
        assert (outcome.accepted, outcome.components, outcome.generation) == (
            1,
            1,
            1,
        )

    def test_frozen(self, receipt):
        with pytest.raises(dataclasses.FrozenInstanceError):
            receipt.generation = 9

    def test_to_dict_round_trips_through_json(self, receipt):
        doc = json.loads(json.dumps(receipt.to_dict()))
        assert doc == {"accepted": 2, "components": 2, "generation": 1}

    def test_equality_with_mapping_is_silent(self, receipt):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert receipt == {
                "accepted": 2,
                "components": 2,
                "generation": 1,
            }
            assert receipt != {"accepted": 0, "components": 2, "generation": 1}

    def test_equality_with_same_type(self, receipt):
        twin = RegisterReceipt(accepted=2, components=2, generation=1)
        other = RegisterReceipt(accepted=2, components=2, generation=9)
        assert receipt == twin
        assert receipt != other
        assert hash(receipt) == hash(twin)

    def test_subscription_works_but_warns(self, receipt):
        with pytest.deprecated_call():
            assert receipt["generation"] == 1

    def test_iteration_warns(self, receipt):
        with pytest.deprecated_call():
            assert sorted(receipt) == ["accepted", "components", "generation"]

    def test_contains_is_silent(self, receipt):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert "generation" in receipt
            assert "nope" not in receipt


class TestRetireReceipt:
    def test_service_returns_the_typed_receipt(self):
        service = MergeService()
        service.register(
            [RegistrationEntry(Schema.build(classes=["A"]), name="alpha")]
        )
        outcome = service.retire("alpha")
        assert isinstance(outcome, RetireReceipt)
        assert outcome == RetireReceipt(
            name="alpha", versions=(1,), components=0, generation=2
        )

    def test_frozen(self, retirement):
        with pytest.raises(dataclasses.FrozenInstanceError):
            retirement.generation = 9

    def test_to_dict_is_json_ready(self, retirement):
        doc = json.loads(json.dumps(retirement.to_dict()))
        assert doc == {
            "name": "pets",
            "versions": [1, 2],
            "components": 3,
            "generation": 7,
        }

    def test_equality_with_mapping_is_silent(self, retirement):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert retirement == {
                "name": "pets",
                "versions": [1, 2],
                "components": 3,
                "generation": 7,
            }

    def test_subscription_works_but_warns(self, retirement):
        with pytest.warns(DeprecationWarning):
            assert retirement["versions"] == [1, 2]

    def test_hashable(self, retirement):
        assert hash(retirement) == hash(
            RetireReceipt(name="pets", versions=(1, 2), components=3,
                          generation=7)
        )


class TestQueryResult:
    def test_fields_are_sorted_tuples(self, result):
        assert result.class_name == "Dog"
        assert result.arrows_out == (("owner", "Person"),)
        assert result.specializations == ("Puppy",)
        assert result.generalizations == ()

    def test_to_dict_keeps_the_legacy_class_key(self, result):
        doc = result.to_dict()
        assert doc["class"] == "Dog"
        assert doc["component"] == result.component
        assert doc["arrows_out"] == (("owner", "Person"),)

    def test_equality_with_legacy_dict_shape(self, result):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result == result.to_dict()

    def test_subscription_warns_once_per_access(self, result):
        with pytest.deprecated_call():
            assert result["class"] == "Dog"

    def test_hashable_and_cache_safe(self, result):
        assert {result: "cached"}[result] == "cached"

    def test_frozen(self, result):
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.component = 99
