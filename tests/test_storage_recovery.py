"""Crash-recovery battery for the durable registry (repro.service.storage).

Three layers of assurance, from the wire up:

* **encoding faults** — sealed log records and snapshot documents detect
  every byte we flip (checksums), reject impossible sequences, and
  treat a torn final line as the crash footprint it is;
* **fault injection** — a service directory is damaged in targeted ways
  (truncated log tail, flipped bytes in a record / a snapshot / the
  manifest, a deleted snapshot file, a rewritten generation) and reopened:
  every case must end in either a clean replay or a typed
  ``CorruptLogError`` / ``CorruptSnapshotError`` — never a silently
  wrong merged view;
* **restart equivalence** — random and pathological workloads (named
  registrations, supersede chains, mid-stream retires, rolled-back
  incompatible batches, snapshot cuts at arbitrary points) are run to
  completion, the service is killed and reopened, and the recovered
  instance must answer ``merged_view`` / ``query`` /
  ``component_snapshot`` identically — with the pre-engine
  ``reference_join_all`` as the independent oracle for the view itself.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schema import Schema
from repro.exceptions import (
    CorruptLogError,
    CorruptSnapshotError,
    IncompatibleSchemasError,
    UnknownSchemaError,
)
from repro.perf.reference import reference_join_all
from repro.service import (
    FileBackend,
    MemoryBackend,
    MergeService,
    RegistrationEntry,
)
from repro.service.storage import (
    LogRecord,
    _seal,
    _unseal,
    record_from_dict,
    record_to_dict,
)
from tests.conftest import schemas


def pets() -> Schema:
    return Schema.build(
        arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
    )


def court() -> Schema:
    return Schema.build(arrows=[("Case", "judge", "Court")])


def bridge() -> Schema:
    return Schema.build(arrows=[("Person", "sued-in", "Case")])


def incompatible_pair() -> Tuple[Schema, Schema]:
    return (
        Schema.build(spec=[("X1", "X2")]),
        Schema.build(spec=[("X2", "X1")]),
    )


def log_path(data_dir: Path) -> Path:
    return data_dir / FileBackend.LOG_NAME


def rewrite_record(data_dir: Path, index: int, **fields) -> None:
    """Re-seal log record *index* with *fields* patched in (crc stays valid)."""
    path = log_path(data_dir)
    lines = path.read_text(encoding="utf-8").splitlines()
    doc = json.loads(lines[index])
    doc.pop("crc")
    doc.update(fields)
    lines[index] = _seal(doc)
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


def flip_crc(path: Path, line_index: int = 0) -> None:
    """Damage the payload of one sealed line without touching its crc."""
    lines = path.read_text(encoding="utf-8").splitlines()
    doc = json.loads(lines[line_index])
    target = "generation" if "generation" in doc else "seq"
    damaged = dict(doc)
    damaged[target] = doc[target] + 1  # payload changes, crc does not
    lines[line_index] = json.dumps(damaged, sort_keys=True, separators=(",", ":"))
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


class TestWireEncoding:
    def test_sealed_record_round_trips(self):
        record = LogRecord(
            kind="register",
            generation=3,
            entries=(RegistrationEntry(pets(), name="pets", version=1,
                                       lifecycle="recommended"),),
        )
        text = _seal(record_to_dict(7, record))
        seq, decoded = record_from_dict(_unseal(text, CorruptLogError))
        assert seq == 7
        assert decoded == record

    def test_retire_record_round_trips(self):
        record = LogRecord(kind="retire", generation=5, name="pets",
                           versions=(1, 2))
        text = _seal(record_to_dict(2, record))
        seq, decoded = record_from_dict(_unseal(text, CorruptLogError))
        assert (seq, decoded) == (2, record)

    def test_any_payload_change_fails_the_checksum(self):
        text = _seal(record_to_dict(1, LogRecord(kind="retire", generation=1,
                                                 name="pets", versions=(1,))))
        tampered = text.replace('"generation":1', '"generation":2')
        assert tampered != text
        with pytest.raises(CorruptLogError, match="checksum"):
            _unseal(tampered, CorruptLogError)

    def test_unknown_kind_is_corruption(self):
        doc = record_to_dict(1, LogRecord(kind="retire", generation=1,
                                          name="pets", versions=(1,)))
        doc["kind"] = "compact"
        with pytest.raises(CorruptLogError, match="kind"):
            record_from_dict(_unseal(_seal(doc), CorruptLogError))


class TestLogFaults:
    def make_dir(self, tmp_path: Path) -> Path:
        data = tmp_path / "registry"
        service = MergeService.open(data)
        service.register([RegistrationEntry(pets(), name="pets")])
        service.register([court()])
        service.register([bridge()])
        service.close()
        return data

    def test_clean_reopen_replays_every_record(self, tmp_path):
        data = self.make_dir(tmp_path)
        service = MergeService.open(data)
        try:
            assert service.service_stats()["storage"]["log_seq"] == 3
            assert service.merged_view() == reference_join_all(
                [pets(), court(), bridge()]
            )
        finally:
            service.close()

    def test_torn_final_record_is_truncated_not_fatal(self, tmp_path):
        data = self.make_dir(tmp_path)
        with open(log_path(data), "ab") as fh:
            fh.write(b'{"format":"repro.log/1","seq":4,"kind":"regi')
        service = MergeService.open(data)
        try:
            # The torn append never happened; the durable prefix did.
            assert service.service_stats()["storage"]["log_seq"] == 3
            assert service.merged_view() == reference_join_all(
                [pets(), court(), bridge()]
            )
            # The next commit reuses the reclaimed sequence number.
            service.register([Schema.build(classes=["Z"])])
            assert service.service_stats()["storage"]["log_seq"] == 4
        finally:
            service.close()

    def test_truncation_mid_record_drops_only_the_tail(self, tmp_path):
        data = self.make_dir(tmp_path)
        raw = log_path(data).read_bytes()
        second_line_end = raw.index(b"\n", raw.index(b"\n") + 1)
        cut = second_line_end + 1 + (len(raw) - second_line_end) // 2
        log_path(data).write_bytes(raw[:cut])
        service = MergeService.open(data)
        try:
            assert service.service_stats()["storage"]["log_seq"] == 2
            assert service.merged_view() == reference_join_all(
                [pets(), court()]
            )
        finally:
            service.close()

    def test_flipped_byte_in_a_middle_record_is_typed_corruption(
        self, tmp_path
    ):
        data = self.make_dir(tmp_path)
        flip_crc(log_path(data), line_index=1)
        with pytest.raises(CorruptLogError, match="checksum"):
            MergeService.open(data)

    def test_sequence_gap_is_typed_corruption(self, tmp_path):
        data = self.make_dir(tmp_path)
        rewrite_record(data, 1, seq=5)
        with pytest.raises(CorruptLogError, match="sequence"):
            MergeService.open(data)

    def test_wrong_format_tag_is_typed_corruption(self, tmp_path):
        data = self.make_dir(tmp_path)
        rewrite_record(data, 0, format="repro.log/0")
        with pytest.raises(CorruptLogError, match="format"):
            MergeService.open(data)

    def test_diverged_generation_is_typed_corruption(self, tmp_path):
        # A record whose checksum is fine but whose replay does not
        # reproduce the recorded generation: the log and the registry
        # algebra disagree, and recovery must refuse to guess.
        data = self.make_dir(tmp_path)
        rewrite_record(data, 2, generation=99)
        with pytest.raises(CorruptLogError, match="generation"):
            MergeService.open(data)

    def test_non_utf8_line_is_typed_corruption(self, tmp_path):
        data = self.make_dir(tmp_path)
        raw = log_path(data).read_bytes()
        first_end = raw.index(b"\n")
        log_path(data).write_bytes(b"\xff\xfe garbage\n" + raw[first_end + 1:])
        with pytest.raises(CorruptLogError):
            MergeService.open(data)


class TestSnapshotFaults:
    def make_dir(self, tmp_path: Path) -> Path:
        data = tmp_path / "registry"
        service = MergeService.open(data)
        service.register([RegistrationEntry(pets(), name="pets")])
        service.register([court()])
        service.save()
        service.register([bridge()])  # a log suffix past the cut
        service.close()
        return data

    def expected_view(self) -> Schema:
        return reference_join_all([pets(), court(), bridge()])

    def test_snapshot_plus_suffix_replay_is_exact(self, tmp_path):
        data = self.make_dir(tmp_path)
        service = MergeService.open(data)
        try:
            stats = service.service_stats()["storage"]
            assert stats == {**stats, "log_seq": 3, "last_cut_seq": 2}
            assert service.merged_view() == self.expected_view()
        finally:
            service.close()

    def test_deleted_snapshot_file_falls_back_to_clean_replay(
        self, tmp_path
    ):
        data = self.make_dir(tmp_path)
        snaps = sorted(data.glob("snap-*.json"))
        assert snaps
        snaps[-1].unlink()
        service = MergeService.open(data)
        try:
            assert service.merged_view() == self.expected_view()
            assert service.service_stats()["storage"]["log_seq"] == 3
        finally:
            service.close()

    def test_deleted_manifest_falls_back_to_clean_replay(self, tmp_path):
        data = self.make_dir(tmp_path)
        (data / FileBackend.MANIFEST_NAME).unlink()
        service = MergeService.open(data)
        try:
            assert service.merged_view() == self.expected_view()
        finally:
            service.close()

    def test_flipped_byte_in_snapshot_is_typed_corruption(self, tmp_path):
        data = self.make_dir(tmp_path)
        snap = sorted(data.glob("snap-*.json"))[0]
        flip_crc(snap)
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            MergeService.open(data)

    def test_flipped_byte_in_manifest_is_typed_corruption(self, tmp_path):
        data = self.make_dir(tmp_path)
        flip_crc(data / FileBackend.MANIFEST_NAME)
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            MergeService.open(data)

    def test_crash_between_snapshots_and_manifest_replays_the_log(
        self, tmp_path
    ):
        # Simulate dying after the new snap-*.json files landed but
        # before the manifest rename: the stale manifest names a cut
        # whose snapshot files now carry a newer seq.
        data = self.make_dir(tmp_path)
        stale_manifest = (data / FileBackend.MANIFEST_NAME).read_bytes()
        service = MergeService.open(data)
        service.register([Schema.build(classes=["Z"])])
        service.save()
        service.close()
        (data / FileBackend.MANIFEST_NAME).write_bytes(stale_manifest)
        recovered = MergeService.open(data)
        try:
            assert recovered.merged_view() == reference_join_all(
                [pets(), court(), bridge(), Schema.build(classes=["Z"])]
            )
            assert recovered.service_stats()["storage"]["log_seq"] == 4
        finally:
            recovered.close()

    def test_open_on_an_empty_directory_is_a_fresh_service(self, tmp_path):
        service = MergeService.open(tmp_path / "fresh")
        try:
            assert service.service_stats()["generation"] == 0
            assert service.merged_view() == Schema.empty()
        finally:
            service.close()


# ----------------------------------------------------------------------
# Restart equivalence
# ----------------------------------------------------------------------


def assert_equivalent(before: MergeService, after: MergeService) -> None:
    """The recovered service answers every read exactly like the original."""
    assert after.service_stats()["generation"] == (
        before.service_stats()["generation"]
    )
    view = before.merged_view()
    assert after.merged_view() == view
    assert after.components() == before.components()
    for cls in sorted(str(c) for c in view.classes):
        assert after.query(cls) == before.query(cls)
        assert after.component_of(cls) == before.component_of(cls)
    for sid in before.components():
        assert after.component_snapshot(sid).to_dict() == (
            before.component_snapshot(sid).to_dict()
        )


def run_workload(
    service: MergeService, operations: List[Tuple], save_every: Optional[int]
) -> List[Schema]:
    """Apply *operations*; return the live (non-retired) member schemas."""
    live: List[Schema] = []
    generations = [service.service_stats()["generation"]]
    for index, op in enumerate(operations):
        if op[0] == "register":
            entries = op[1]
            service.register(entries)
            live.extend(
                e.schema for e in entries if not e.schema.is_empty()
            )
        elif op[0] == "retire":
            name = op[1]
            try:
                receipt = service.retire(name)
            except UnknownSchemaError:
                continue
            for schema in op[2][: len(receipt.versions)]:
                live.remove(schema)
        elif op[0] == "rollback":
            first, second = incompatible_pair()
            with pytest.raises(IncompatibleSchemasError):
                service.register([first, second])
        generation = service.service_stats()["generation"]
        assert generation >= generations[-1]
        generations.append(generation)
        if save_every and (index + 1) % save_every == 0:
            service.save()
    return live


@st.composite
def workloads(draw):
    """Operations over the shared universe + a retire-eligible name pool."""
    operations: List[Tuple] = []
    named: dict = {}
    count = draw(st.integers(min_value=1, max_value=6))
    for _ in range(count):
        kind = draw(
            st.sampled_from(
                ["register", "register", "named", "retire", "rollback"]
            )
        )
        if kind == "register":
            batch = draw(
                st.lists(schemas(), min_size=1, max_size=3)
            )
            operations.append(
                ("register", [RegistrationEntry(g) for g in batch])
            )
        elif kind == "named":
            schema = draw(schemas().filter(lambda g: not g.is_empty()))
            name = draw(st.sampled_from(["alpha", "beta", "gamma"]))
            operations.append(
                ("register", [RegistrationEntry(schema, name=name)])
            )
            named.setdefault(name, []).append(schema)
        elif kind == "retire":
            name = draw(st.sampled_from(["alpha", "beta", "gamma", "ghost"]))
            operations.append(("retire", name, list(named.get(name, []))))
            named.pop(name, None)
        else:
            operations.append(("rollback",))
    return operations


class TestRestartEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=workloads(), save_every=st.sampled_from([None, 1, 2]))
    def test_random_workloads_survive_a_restart(self, operations, save_every):
        with tempfile.TemporaryDirectory() as tmp:
            data = Path(tmp) / "registry"
            before = MergeService.open(data, fsync=False)
            try:
                live = run_workload(before, operations, save_every)
                assert before.merged_view() == reference_join_all(live)
                after = MergeService.open(data, fsync=False)
                try:
                    assert_equivalent(before, after)
                    assert after.merged_view() == reference_join_all(live)
                finally:
                    after.close()
            finally:
                before.close()

    def test_memory_and_file_backends_agree(self, tmp_path):
        operations = [
            ("register", [RegistrationEntry(pets(), name="pets")]),
            ("register", [RegistrationEntry(court())]),
            ("rollback",),
            ("register", [RegistrationEntry(pets(), name="pets")]),
            ("retire", "pets", [pets(), pets()]),
            ("register", [RegistrationEntry(bridge(), name="bridge")]),
        ]
        durable = MergeService.open(tmp_path / "registry")
        transient = MergeService(storage=MemoryBackend())
        try:
            live_a = run_workload(durable, operations, save_every=2)
            live_b = run_workload(transient, operations, save_every=None)
            assert live_a == live_b
            assert_equivalent(durable, transient)
        finally:
            durable.close()
            transient.close()

    def test_mid_stream_retire_and_reregistration_survive_restart(
        self, tmp_path
    ):
        data = tmp_path / "registry"
        before = MergeService.open(data)
        before.register([RegistrationEntry(pets(), name="pets")])
        before.register([RegistrationEntry(pets(), name="pets")])
        before.retire("pets")
        # Re-registration after retirement: version numbers continue,
        # they are never reused.
        before.register([RegistrationEntry(pets(), name="pets")])
        info = before.schema_info("pets")
        assert [v["version"] for v in info["versions"]] == [1, 2, 3]
        assert info["recommended"] == 3
        before.close()
        after = MergeService.open(data)
        try:
            assert after.schema_info("pets") == info
            assert after.resolve_schema("pets") == pets()
        finally:
            after.close()

    def test_rolled_back_batches_are_never_logged(self, tmp_path):
        data = tmp_path / "registry"
        service = MergeService.open(data)
        service.register([pets()])
        first, second = incompatible_pair()
        with pytest.raises(IncompatibleSchemasError):
            service.register([court(), first, second])
        assert service.service_stats()["storage"]["log_seq"] == 1
        service.close()
        backend = FileBackend(data)
        try:
            kinds = [record.kind for _seq, record in backend.records()]
            assert kinds == ["register"]
        finally:
            backend.close()

    def test_warm_restart_equals_cold_restart(self, tmp_path):
        """Snapshot-based recovery and pure log replay reach the same state."""
        data = tmp_path / "registry"
        service = MergeService.open(data)
        service.register([RegistrationEntry(pets(), name="pets")])
        service.register([court()])
        service.save()
        service.register([bridge()])
        service.retire("pets")
        service.close()

        warm = MergeService.open(data)
        (data / FileBackend.MANIFEST_NAME).unlink()
        cold = MergeService.open(data)
        try:
            assert_equivalent(warm, cold)
        finally:
            warm.close()
            cold.close()
