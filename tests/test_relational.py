"""Unit tests for the relational substrate model (§2, §3)."""

import pytest

from repro.exceptions import TranslationError
from repro.models.relational import (
    RelationSchema,
    RelationalDatabase,
    from_schema,
    merge_relational,
    merge_relational_keyed,
    to_keyed_schema,
    to_schema,
)


@pytest.fixture
def person_db() -> RelationalDatabase:
    return RelationalDatabase(
        [
            RelationSchema(
                "Person",
                {"ssn": "Str", "name": "Str", "address": "Str"},
                keys=[{"ssn"}, {"name", "address"}],
            )
        ]
    )


class TestValidation:
    def test_empty_attributes_rejected(self):
        with pytest.raises(TranslationError):
            RelationSchema("R", {})

    def test_key_over_unknown_attribute_rejected(self):
        with pytest.raises(TranslationError):
            RelationSchema("R", {"a": "D"}, keys=[{"b"}])

    def test_duplicate_relation_rejected(self):
        relation = RelationSchema("R", {"a": "D"})
        with pytest.raises(TranslationError):
            RelationalDatabase([relation, relation])

    def test_lookup_error(self):
        database = RelationalDatabase([])
        with pytest.raises(TranslationError):
            database.relation("R")


class TestTranslation:
    def test_strata(self, person_db):
        stratified = to_schema(person_db)
        assert stratified.stratum_of("Person") == "relation"
        assert stratified.stratum_of("Str") == "domain"

    def test_no_spec_edges(self, person_db):
        assert not to_schema(person_db).schema.strict_spec()

    def test_keyed_translation(self, person_db):
        keyed = to_keyed_schema(person_db)
        family = keyed.keys_of("Person")
        assert family.is_superkey({"ssn"})
        assert family.is_superkey({"name", "address"})
        assert not family.is_superkey({"name"})

    def test_round_trip_modulo_keys(self, person_db):
        back = from_schema(to_schema(person_db))
        assert back.relation("Person").attribute_map() == person_db.relation(
            "Person"
        ).attribute_map()


class TestMerge:
    def test_section3_dog_example(self):
        one = RelationalDatabase(
            [
                RelationSchema(
                    "Dog",
                    {"License#": "Str", "Owner": "Str", "Breed": "Str"},
                )
            ]
        )
        two = RelationalDatabase(
            [
                RelationSchema(
                    "Dog", {"Name": "Str", "Age": "Int", "Breed": "Str"}
                )
            ]
        )
        merged = merge_relational(one, two)
        assert merged.relation("Dog").attribute_names() == {
            "License#",
            "Owner",
            "Name",
            "Age",
            "Breed",
        }

    def test_disjoint_relations_coexist(self):
        one = RelationalDatabase([RelationSchema("A", {"x": "D"})])
        two = RelationalDatabase([RelationSchema("B", {"y": "D"})])
        merged = merge_relational(one, two)
        assert {r.name for r in merged.relations} == {"A", "B"}

    def test_domain_conflict_detected(self):
        one = RelationalDatabase([RelationSchema("R", {"age": "Int"})])
        two = RelationalDatabase([RelationSchema("R", {"age": "Str"})])
        with pytest.raises(TranslationError) as excinfo:
            merge_relational(one, two)
        assert "typed differently" in str(excinfo.value)

    def test_keyed_merge(self, person_db):
        extra = RelationalDatabase(
            [
                RelationSchema(
                    "Person",
                    {"ssn": "Str", "phone": "Str"},
                )
            ]
        )
        merged, keys = merge_relational_keyed(person_db, extra)
        assert merged.relation("Person").attribute_names() == {
            "ssn",
            "name",
            "address",
            "phone",
        }
        assert keys["Person"].is_superkey({"ssn"})

    def test_merge_is_order_independent(self, person_db):
        extra = RelationalDatabase([RelationSchema("Other", {"z": "D"})])
        assert merge_relational(person_db, extra) == merge_relational(
            extra, person_db
        )
