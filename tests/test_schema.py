"""Unit tests for the Schema data structure (weak schemas, §4.1)."""

import pytest

from repro.core.names import BaseName
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError, SchemaValidationError


class TestBuild:
    def test_empty(self):
        schema = Schema.empty()
        assert schema.is_empty()
        assert len(schema) == 0

    def test_classes_from_edges_are_added(self):
        schema = Schema.build(arrows=[("Dog", "owner", "Person")])
        assert schema.has_class("Dog") and schema.has_class("Person")

    def test_strings_coerced_to_names(self):
        schema = Schema.build(classes=["Dog"])
        assert BaseName("Dog") in schema.classes

    def test_spec_reflexive_transitive_closure(self):
        schema = Schema.build(spec=[("A", "B"), ("B", "C")])
        assert schema.is_spec("A", "C")
        assert schema.is_spec("A", "A")

    def test_w1_closure_inherits_arrows(self, dog_schema):
        # Police-dog ==> Dog, Dog --owner--> Person  ⟹  Police-dog --owner--> Person
        assert dog_schema.has_arrow("Police-dog", "owner", "Person")
        assert dog_schema.has_arrow("Guide-dog", "breed", "Breed")

    def test_w2_closure_lifts_targets(self):
        schema = Schema.build(
            arrows=[("Owner", "pet", "Police-dog")],
            spec=[("Police-dog", "Dog")],
        )
        assert schema.has_arrow("Owner", "pet", "Dog")

    def test_w1_w2_interact(self):
        schema = Schema.build(
            arrows=[("A", "f", "X")],
            spec=[("B", "A"), ("X", "Y")],
        )
        assert schema.has_arrow("B", "f", "Y")

    def test_specialization_cycle_rejected(self):
        with pytest.raises(IncompatibleSchemasError) as excinfo:
            Schema.build(spec=[("A", "B"), ("B", "A")])
        assert excinfo.value.cycle

    def test_longer_cycle_rejected(self):
        with pytest.raises(IncompatibleSchemasError):
            Schema.build(spec=[("A", "B"), ("B", "C"), ("C", "A")])

    def test_malformed_arrow_rejected(self):
        with pytest.raises(SchemaValidationError):
            Schema.build(arrows=[("A", "B")])

    def test_empty_label_rejected(self):
        with pytest.raises(SchemaValidationError):
            Schema.build(arrows=[("A", "", "B")])


class TestConstructorValidation:
    def test_arrow_endpoint_outside_classes(self):
        with pytest.raises(SchemaValidationError):
            Schema(
                frozenset({BaseName("A")}),
                frozenset({(BaseName("A"), "f", BaseName("B"))}),
                frozenset({(BaseName("A"), BaseName("A"))}),
            )

    def test_missing_reflexivity(self):
        with pytest.raises(SchemaValidationError):
            Schema(frozenset({BaseName("A")}), frozenset(), frozenset())

    def test_missing_transitivity(self):
        a, b, c = BaseName("A"), BaseName("B"), BaseName("C")
        refl = {(a, a), (b, b), (c, c)}
        with pytest.raises(SchemaValidationError):
            Schema(
                frozenset({a, b, c}),
                frozenset(),
                frozenset(refl | {(a, b), (b, c)}),
            )

    def test_unclosed_arrows_rejected(self):
        a, b, p = BaseName("A"), BaseName("B"), BaseName("P")
        spec = {(a, a), (b, b), (p, p), (p, a)}
        # P ==> A and A --f--> B requires P --f--> B, which is missing.
        with pytest.raises(SchemaValidationError) as excinfo:
            Schema(
                frozenset({a, b, p}),
                frozenset({(a, "f", b)}),
                frozenset(spec),
            )
        assert "W1/W2" in str(excinfo.value)

    def test_non_name_class_rejected(self):
        with pytest.raises(SchemaValidationError):
            Schema(frozenset({"raw-string"}), frozenset(), frozenset())


class TestEqualityAndHash:
    def test_structural_equality(self, dog_schema):
        rebuilt = Schema.build(
            arrows=[
                ("Dog", "owner", "Person"),
                ("Dog", "breed", "Breed"),
                ("Police-dog", "badge", "Badge"),
            ],
            spec=[("Police-dog", "Dog"), ("Guide-dog", "Dog")],
        )
        assert rebuilt == dog_schema
        assert hash(rebuilt) == hash(dog_schema)

    def test_inequality(self, dog_schema):
        assert dog_schema != Schema.empty()
        assert dog_schema != "not a schema"

    def test_usable_in_sets(self, dog_schema):
        assert len({dog_schema, dog_schema}) == 1


class TestQueries:
    def test_reach(self, dog_schema):
        assert dog_schema.reach("Dog", "owner") == {BaseName("Person")}
        assert dog_schema.reach("Dog", "badge") == frozenset()

    def test_reach_set(self, dog_schema):
        reached = dog_schema.reach_set(["Dog", "Police-dog"], "owner")
        assert reached == {BaseName("Person")}

    def test_out_labels(self, dog_schema):
        assert dog_schema.out_labels("Police-dog") == {
            "owner",
            "breed",
            "badge",
        }

    def test_specializations_and_generalizations(self, dog_schema):
        subs = dog_schema.specializations_of("Dog")
        assert BaseName("Police-dog") in subs and BaseName("Guide-dog") in subs
        sups = dog_schema.generalizations_of("Police-dog")
        assert BaseName("Dog") in sups

    def test_min_classes(self, dog_schema):
        minimal = dog_schema.min_classes(["Dog", "Police-dog", "Person"])
        assert minimal == {BaseName("Police-dog"), BaseName("Person")}

    def test_roots_and_leaves(self, dog_schema):
        assert BaseName("Dog") in dog_schema.root_classes()
        assert BaseName("Police-dog") in dog_schema.leaf_classes()
        assert BaseName("Police-dog") not in dog_schema.root_classes()

    def test_contains_and_iter(self, dog_schema):
        assert "Dog" in dog_schema
        assert list(dog_schema) == sorted(
            dog_schema.classes, key=lambda c: str(c)
        )

    def test_spec_covers_hides_transitive(self):
        schema = Schema.build(spec=[("A", "B"), ("B", "C")])
        assert (BaseName("A"), BaseName("C")) not in schema.spec_covers()
        assert (BaseName("A"), BaseName("B")) in schema.spec_covers()

    def test_stats(self, dog_schema):
        stats = dog_schema.stats()
        assert stats["classes"] == 6
        assert stats["implicit_classes"] == 0
        assert stats["spec_edges"] == 2


class TestDerivedSchemas:
    def test_restrict_keeps_weak_schema(self, dog_schema):
        restricted = dog_schema.restrict(["Dog", "Person", "Police-dog"])
        assert restricted.has_arrow("Dog", "owner", "Person")
        assert not restricted.has_class("Breed")
        assert restricted.is_spec("Police-dog", "Dog")

    def test_without_classes(self, dog_schema):
        smaller = dog_schema.without_classes(["Badge"])
        assert not smaller.has_class("Badge")
        assert smaller.has_arrow("Police-dog", "owner", "Person")

    def test_rename(self, dog_schema):
        renamed = dog_schema.rename({"Dog": "Canine"})
        assert renamed.has_class("Canine")
        assert not renamed.has_class("Dog")
        assert renamed.has_arrow("Canine", "owner", "Person")
        assert renamed.is_spec("Police-dog", "Canine")

    def test_rename_collapse_rejected(self, dog_schema):
        with pytest.raises(SchemaValidationError):
            dog_schema.rename({"Dog": "Person"})

    def test_rename_labels(self, dog_schema):
        renamed = dog_schema.rename_labels({"owner": "keeper"})
        assert renamed.has_arrow("Dog", "keeper", "Person")
        assert not renamed.has_arrow("Dog", "owner", "Person")

    def test_with_arrow_recloses(self, dog_schema):
        extended = dog_schema.with_arrow("Dog", "licence", "Licence")
        assert extended.has_arrow("Police-dog", "licence", "Licence")

    def test_with_spec_recloses(self, dog_schema):
        extended = dog_schema.with_spec("Puppy", "Dog")
        assert extended.has_arrow("Puppy", "owner", "Person")

    def test_with_class_idempotent(self, dog_schema):
        assert dog_schema.with_class("Dog") is dog_schema
        extended = dog_schema.with_class("Cat")
        assert extended.has_class("Cat")
        assert extended.is_spec("Cat", "Cat")

    def test_immutability(self, dog_schema):
        with pytest.raises(AttributeError):
            dog_schema.classes = frozenset()
