"""Unit tests for the baseline mergers (§1, §3, Figure 5)."""


from repro.baselines.naive import (
    naive_binary_merge,
    naive_merge_sequence,
    order_sensitivity,
)
from repro.baselines.superviews import (
    heuristic_binary_merge,
    heuristic_merge_sequence,
    heuristic_order_sensitivity,
    lost_information,
)
from repro.core.merge import upper_merge
from repro.core.names import ImplicitName
from repro.core.proper import is_proper
from repro.core.schema import Schema
from repro.figures import figure3_schemas, figure4_schemas


class TestNaiveBaseline:
    def test_single_merge_resembles_ours(self):
        one, two = figure3_schemas()
        naive = naive_binary_merge(one, two)
        assert is_proper(naive)
        # Same shape, different naming: one anonymous class below B1, B2.
        anonymous = [
            c for c in naive.classes if str(c).startswith("?")
        ]
        assert len(anonymous) == 1
        assert naive.is_spec(anonymous[0], "B1")
        assert naive.is_spec(anonymous[0], "B2")

    def test_anonymous_names_carry_no_origin(self):
        one, two = figure3_schemas()
        naive = naive_binary_merge(one, two)
        assert not any(
            isinstance(c, ImplicitName) for c in naive.classes
        )

    def test_figure5_non_associativity(self):
        g1, g2, g3 = figure4_schemas()
        left = naive_binary_merge(naive_binary_merge(g1, g2), g3)
        right = naive_binary_merge(naive_binary_merge(g1, g3), g2)
        assert left != right

    def test_figure5_intermediate_classes_pile_up(self):
        g1, g2, g3 = figure4_schemas()
        result = naive_binary_merge(naive_binary_merge(g1, g2), g3)
        anonymous = [c for c in result.classes if str(c).startswith("?")]
        # X? below {D, E} and Y? below {X?, F} — two stacked classes.
        assert len(anonymous) == 2

    def test_order_sensitivity_exceeds_one(self):
        result = order_sensitivity(list(figure4_schemas()))
        assert result["permutations"] == 6
        assert result["distinct_results"] >= 2

    def test_our_merge_order_insensitive_same_inputs(self):
        from itertools import permutations

        schemas = list(figure4_schemas())
        results = {
            upper_merge(*(schemas[i] for i in order))
            for order in permutations(range(3))
        }
        assert len(results) == 1

    def test_empty_sequence(self):
        assert naive_merge_sequence([]) == Schema.empty()

    def test_fresh_names_avoid_collisions(self):
        # A user class literally named "?1" must not be captured.
        one = Schema.build(
            classes=["?1"], arrows=[("A", "a", "B1"), ("A", "a", "B2")]
        )
        merged = naive_binary_merge(one, Schema.empty())
        anonymous = [
            c
            for c in merged.classes
            if str(c).startswith("?") and str(c) != "?1"
        ]
        assert len(anonymous) == 1


class TestHeuristicBaseline:
    def test_result_is_proper(self):
        one, two = figure3_schemas()
        assert is_proper(heuristic_binary_merge(one, two))

    def test_loses_information(self):
        one, two = figure3_schemas()
        merged = heuristic_binary_merge(one, two)
        lost = lost_information(merged, [one, two])
        assert lost  # something asserted by an input was dropped

    def test_our_merge_loses_nothing(self):
        one, two = figure3_schemas()
        merged = upper_merge(one, two)
        assert lost_information(merged, [one, two]) == []

    def test_never_invents_classes(self):
        one, two = figure3_schemas()
        merged = heuristic_binary_merge(one, two)
        assert merged.classes <= one.classes | two.classes

    def test_sequence_fold(self):
        schemas = list(figure4_schemas())
        merged = heuristic_merge_sequence(schemas)
        assert is_proper(merged)

    def test_order_sensitivity_report_shape(self):
        report = heuristic_order_sensitivity(list(figure4_schemas()))
        assert report["permutations"] == 6
        assert report["distinct_results"] >= 1
        assert all(
            isinstance(n, int) for n in report["arrow_counts"]
        )

    def test_order_sensitive_example_exists(self):
        # A family where the heuristic's fold genuinely depends on order:
        # the alphabetical survivor differs depending on which conflict
        # is resolved first.
        one = Schema.build(arrows=[("P", "a", "M")])
        two = Schema.build(
            arrows=[("P", "a", "B")], spec=[("B", "M")]
        )
        three = Schema.build(
            arrows=[("P", "a", "C")], spec=[("C", "M")]
        )
        report = heuristic_order_sensitivity([one, two, three])
        # Whatever the distinct count, the fold must stay proper and lossy
        # in at least one order.
        assert report["permutations"] == 6
        losses = [
            lost_information(result, [one, two, three])
            for result in report["results"]
        ]
        assert any(losses)

    def test_empty_sequence(self):
        assert heuristic_merge_sequence([]) == Schema.empty()
