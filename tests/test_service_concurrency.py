"""Concurrency tests for the per-shard-locking merge service.

The three claims the locking redesign makes, each exercised directly:

* writers on **disjoint components** are independent — N threads
  hammering N separate pods lose nothing and corrupt nothing;
* **bridging** registrations (which must take several shard locks)
  are deadlock-free under contention, because every writer acquires
  in ascending shard-id order;
* **readers never block** — a warm ``merged_view`` completes while a
  writer holds the very shard lock the view reads through.

The heavier storm variants carry ``@pytest.mark.slow`` so the CI
matrix (``-m "not slow"``) runs the fast versions on every push.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.exceptions import (
    IncompatibleSchemasError,
    ServiceShutdownError,
    UnknownClassError,
)
from repro.check.witness import (
    disable_witness,
    enable_witness,
    reset_witness_stats,
    witness_stats,
)
from repro.generators.workloads import get_concurrent_stream
from repro.service import MergeService

#: Generous watchdog: a deadlock hangs forever, a healthy run takes
#: well under a second.
JOIN_TIMEOUT = 30.0


def run_writers(service, lanes, barrier_timeout=JOIN_TIMEOUT):
    """Run one thread per lane; returns per-lane exception lists."""
    barrier = threading.Barrier(len(lanes))
    errors = [[] for _ in lanes]

    def writer(index, lane):
        barrier.wait(timeout=barrier_timeout)
        for kind, schema in lane:
            assert kind == "register"
            try:
                service.register([schema])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors[index].append(exc)

    threads = [
        threading.Thread(target=writer, args=(i, lane), daemon=True)
        for i, lane in enumerate(lanes)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert not any(thread.is_alive() for thread in threads), (
        "writer threads did not finish — deadlock?"
    )
    return errors


class TestDisjointWriters:
    def test_no_lost_registrations_across_16_disjoint_writers(self):
        initial, lanes = get_concurrent_stream("concurrent-disjoint-16").make()
        service = MergeService(initial)
        assert len(service.components()) == len(lanes)

        errors = run_writers(service, lanes)
        assert not any(errors), errors

        total = len(initial) + sum(len(lane) for lane in lanes)
        stats = service.service_stats()
        assert stats["registered_schemas"] == total
        # One generation bump per register call, none coalesced or lost.
        assert stats["generation"] == 1 + sum(len(lane) for lane in lanes)
        # Disjoint pods never merge: still one component per lane, and
        # each equals the cold-path join of exactly its own schemas.
        assert len(service.components()) == len(lanes)
        for sid in service.components():
            members = list(service.component_schemas(sid))
            assert service.merged_view(sid) == join_all(members)

    def test_writers_racing_on_the_same_fresh_class_serialize(self):
        # Every schema mentions a brand-new shared class, so the
        # reservation path must funnel all writers into one component.
        service = MergeService()
        schemas = [
            Schema.build(arrows=[("Hub", f"spoke{i}", f"Rim{i}")])
            for i in range(12)
        ]

        def write(schema):
            service.register([schema])
            return True

        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(write, schemas))

        assert len(service.components()) == 1
        assert service.service_stats()["registered_schemas"] == 12
        merged = service.merged_view("Hub")
        for i in range(12):
            assert merged.has_arrow("Hub", f"spoke{i}", f"Rim{i}")


class TestBridgingUnderContention:
    def _pod(self, pod: int) -> Schema:
        return Schema.build(
            arrows=[(f"Pod{pod}_A", "link", f"Pod{pod}_B")]
        )

    def _bridge(self, left: int, right: int, tag: int) -> Schema:
        return Schema.build(
            arrows=[(f"Pod{left}_A", f"bridge{tag}", f"Pod{right}_A")]
        )

    def test_two_components_merge_exactly_once_under_contention(self):
        service = MergeService([self._pod(0), self._pod(1)])
        assert len(service.components()) == 2
        # Eight threads all try to bridge the same two components at
        # once; every one must succeed (ordered acquisition, replanning
        # after the first merge) and the result is a single component.
        lanes = [
            [("register", self._bridge(0, 1, tag))] for tag in range(8)
        ]
        errors = run_writers(service, lanes)
        assert not any(errors), errors
        assert len(service.components()) == 1
        assert service.component_of("Pod0_A") == service.component_of(
            "Pod1_B"
        )
        merged = service.merged_view("Pod0_A")
        for tag in range(8):
            assert merged.has_arrow("Pod0_A", f"bridge{tag}", "Pod1_A")

    def test_bridge_chain_storm(self):
        # 8 pods; concurrent writers bridge neighbours in both orders
        # (0-1, 1-2, ... and 6-7, 5-6, ...) while pod-local writers keep
        # the shard locks warm.  Lock ordering by ascending sid makes
        # the opposite acquisition orders safe.
        pods = 8
        service = MergeService([self._pod(p) for p in range(pods)])
        forward = [
            ("register", self._bridge(p, p + 1, 100 + p))
            for p in range(pods - 1)
        ]
        backward = [
            ("register", self._bridge(p, p + 1, 200 + p))
            for p in reversed(range(pods - 1))
        ]
        local = [
            ("register", Schema.build(
                arrows=[(f"Pod{p}_B", "extra", f"Pod{p}_C")]
            ))
            for p in range(pods)
        ]
        errors = run_writers(service, [forward, backward, local])
        assert not any(errors), errors
        assert len(service.components()) == 1
        members = list(
            service.component_schemas(service.component_of("Pod0_A"))
        )
        assert service.merged_view("Pod0_A") == join_all(members)

    @pytest.mark.slow
    def test_bridge_storm_many_rounds(self):
        for round_seed in range(5):
            service = MergeService([self._pod(p) for p in range(6)])
            lanes = [
                [
                    ("register", self._bridge(p, (p + 1) % 6, round_seed))
                ]
                for p in range(5)
            ]
            errors = run_writers(service, lanes)
            assert not any(errors), errors
            assert len(service.components()) == 1


class TestReadersNeverBlock:
    def test_warm_view_completes_while_shard_lock_is_held(self):
        initial, _lanes = get_concurrent_stream("concurrent-disjoint-4").make()
        service = MergeService(initial)
        sid = sorted(service.components())[0]
        service.merged_view(sid)  # warm the component cache
        anchor = str(service.component_schemas(sid)[0].sorted_classes()[0])

        # Simulate an in-flight writer: hold the component's own lock.
        lock = service._shard_locks[sid]
        assert lock.acquire(timeout=5)
        try:
            done = threading.Event()
            answers = {}

            def read():
                answers["view"] = service.merged_view(sid)
                answers["query"] = service.query(anchor)
                answers["global"] = service.merged_view()
                done.set()

            thread = threading.Thread(target=read, daemon=True)
            start = time.perf_counter()
            thread.start()
            assert done.wait(timeout=5), (
                "reads blocked behind a held shard lock"
            )
            elapsed = time.perf_counter() - start
        finally:
            lock.release()
        assert answers["view"].has_arrow is not None
        assert answers["query"].component == sid
        # Not a performance bar — just "nowhere near the lock timeout".
        assert elapsed < 2.0

    def test_writer_on_other_component_proceeds_while_lock_held(self):
        initial, _lanes = get_concurrent_stream("concurrent-disjoint-4").make()
        service = MergeService(initial)
        sids = sorted(service.components())
        lock = service._shard_locks[sids[0]]
        other_anchor = str(
            service.component_schemas(sids[1])[0].sorted_classes()[0]
        )
        assert lock.acquire(timeout=5)
        try:
            done = threading.Event()

            def write():
                service.register(
                    [
                        Schema.build(
                            arrows=[(other_anchor, "probe", "OtherProbe")]
                        )
                    ]
                )
                done.set()

            thread = threading.Thread(target=write, daemon=True)
            thread.start()
            assert done.wait(timeout=5), (
                "a disjoint-component write blocked behind an unrelated "
                "shard lock"
            )
        finally:
            lock.release()
        assert service.merged_view(other_anchor).has_arrow(
            other_anchor, "probe", "OtherProbe"
        )


class TestFailureModes:
    def test_rollback_under_contention_leaves_no_reservations(self):
        service = MergeService([Schema.build(spec=[("X", "Y")])])
        good_lane = [
            ("register", Schema.build(classes=[f"Fresh{i}"]))
            for i in range(6)
        ]
        bad_lane = [
            ("register", Schema.build(spec=[("Y", "X")])) for _ in range(6)
        ]
        errors = run_writers(service, [good_lane, bad_lane])
        assert not errors[0], errors[0]
        assert len(errors[1]) == 6
        assert all(
            isinstance(exc, IncompatibleSchemasError) for exc in errors[1]
        )
        # Failed writes left no claims behind; the registry still works.
        assert service._reserved == {}
        service.register([Schema.build(classes=["AfterTheStorm"])])
        assert service.component_of("AfterTheStorm") is not None

    def test_closed_service_refuses_requests(self):
        service = MergeService([Schema.build(classes=["A"])])
        service.close()
        assert service.closed
        with pytest.raises(ServiceShutdownError):
            service.register([Schema.build(classes=["B"])])
        with pytest.raises(ServiceShutdownError):
            service.merged_view()
        with pytest.raises(ServiceShutdownError):
            service.query("A")
        service.close()  # idempotent

    def test_unknown_class_is_service_error_and_key_error(self):
        service = MergeService([Schema.build(classes=["A"])])
        with pytest.raises(UnknownClassError) as excinfo:
            service.query("Unicorn")
        assert isinstance(excinfo.value, KeyError)
        assert "Unicorn" in str(excinfo.value)
        assert "'" not in str(excinfo.value)  # no KeyError repr-quoting


@pytest.fixture()
def lock_witness():
    """Run a test with the lock-order witness armed (and stats reset).

    The witness only wraps locks created while it is active, so every
    service a witnessed test exercises must be constructed *inside* the
    test body.
    """
    enable_witness()
    reset_witness_stats()
    try:
        yield
    finally:
        disable_witness()


class TestLockOrderWitness:
    """The dynamic cross-check: storms re-run under witnessed locks.

    Any interleaving that acquires out of ascending-sid order, blocks
    inside the planner section, or re-enters a held lock raises
    :class:`repro.check.witness.LockOrderViolation` inside the writer
    thread — which ``run_writers`` collects and the asserts then fail
    on.  A clean pass is therefore positive evidence the discipline
    held on every explored interleaving, not merely the absence of a
    deadlock within the watchdog timeout.
    """

    def _pod(self, pod: int) -> Schema:
        return Schema.build(arrows=[(f"Pod{pod}_A", "link", f"Pod{pod}_B")])

    def _bridge(self, left: int, right: int, tag: int) -> Schema:
        return Schema.build(
            arrows=[(f"Pod{left}_A", f"bridge{tag}", f"Pod{right}_A")]
        )

    def test_witnessed_bridge_chain_storm(self, lock_witness):
        pods = 8
        service = MergeService([self._pod(p) for p in range(pods)])
        forward = [
            ("register", self._bridge(p, p + 1, 100 + p))
            for p in range(pods - 1)
        ]
        backward = [
            ("register", self._bridge(p, p + 1, 200 + p))
            for p in reversed(range(pods - 1))
        ]
        errors = run_writers(service, [forward, backward])
        assert not any(errors), errors
        assert len(service.components()) == 1
        stats = witness_stats()
        # The witness really was on the hot path: every single-shard
        # write checks at least one ordered acquire.
        assert stats["checked"] > 0
        assert stats["acquires"] >= stats["checked"]

    def test_witnessed_fresh_class_race(self, lock_witness):
        service = MergeService()
        schemas = [
            Schema.build(arrows=[("Hub", f"spoke{i}", f"Rim{i}")])
            for i in range(12)
        ]

        def write(schema):
            service.register([schema])
            return True

        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(write, schemas))
        assert len(service.components()) == 1
        assert witness_stats()["checked"] > 0

    @pytest.mark.slow
    def test_witnessed_storm_many_rounds(self, lock_witness):
        for round_seed in range(5):
            service = MergeService([self._pod(p) for p in range(6)])
            lanes = [
                [("register", self._bridge(p, (p + 1) % 6, round_seed))]
                for p in range(5)
            ]
            errors = run_writers(service, lanes)
            assert not any(errors), errors
            assert len(service.components()) == 1
        assert witness_stats()["checked"] > 0
