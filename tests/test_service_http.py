"""Tests for the asyncio HTTP front end (repro.service.http).

A real server on a real socket (port 0, loopback), driven with
``http.client`` — the same wire a curl user sees.  Covers the four
routes, the taxonomy → status-code mapping, keep-alive, and the
wire-format round trip through ``io/json_io.py``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.schema import Schema
from repro.exceptions import (
    CorruptLogError,
    CorruptSnapshotError,
    IncompatibleSchemasError,
    InvalidRequestError,
    RetiredSchemaError,
    ServiceShutdownError,
    StorageError,
    UnknownClassError,
    UnknownSchemaError,
)
from repro.io.json_io import schema_from_dict, schema_to_dict
from repro.service import API_FORMAT, HttpFrontend, MergeService
from repro.service.http import status_for


def schema_doc(schema: Schema) -> dict:
    return schema_to_dict(schema)


def post(conn, path, payload):
    conn.request(
        "POST",
        path,
        json.dumps(payload),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def get(conn, path):
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    content_type = response.getheader("Content-Type", "")
    if content_type.startswith("application/json"):
        return response.status, json.loads(body)
    return response.status, body.decode()


@pytest.fixture
def service():
    return MergeService(
        [
            Schema.build(
                arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
            ),
            Schema.build(arrows=[("Case", "judge", "Court")]),
        ]
    )


@pytest.fixture
def frontend(service):
    with HttpFrontend(service, port=0) as server:
        yield server


@pytest.fixture
def conn(frontend):
    connection = http.client.HTTPConnection(*frontend.address, timeout=10)
    yield connection
    connection.close()


class TestRoutes:
    def test_register_round_trip(self, conn, service):
        incoming = Schema.build(arrows=[("Person", "argues", "Case")])
        status, doc = post(
            conn,
            "/v1/schemas",
            {"format": API_FORMAT, "schemas": [schema_doc(incoming)]},
        )
        assert status == 200
        assert doc["format"] == API_FORMAT
        assert doc["accepted"] == 1
        assert doc["generation"] == 2
        # The bridge merged the two seed components.
        assert doc["components"] == 1
        assert service.component_of("Dog") == service.component_of("Court")

    def test_component_view_round_trips_through_json_io(self, conn, service):
        sid = service.component_of("Dog")
        status, doc = get(conn, f"/v1/components/{sid}/view")
        assert status == 200
        assert doc["component"] == sid
        decoded = schema_from_dict(doc["view"])
        assert decoded == service.merged_view(sid)
        assert decoded.has_arrow("Puppy", "owner", "Person")

    def test_query(self, conn):
        status, doc = get(conn, "/v1/query/Dog")
        assert status == 200
        assert doc["format"] == API_FORMAT
        assert doc["class"] == "Dog"
        assert ["owner", "Person"] in doc["arrows_out"]
        assert "Puppy" in doc["specializations"]

    def test_stats_prometheus_text(self, conn):
        status, text = get(conn, "/v1/stats")
        assert status == 200
        assert "service_components" in text or "service" in text

    def test_stats_json(self, conn):
        status, doc = get(conn, "/v1/stats?format=json")
        assert status == 200
        assert doc["stats"]["components"] == 2

    def test_keep_alive_serves_many_requests_per_connection(self, conn):
        for _ in range(5):
            status, doc = get(conn, "/v1/query/Dog")
            assert status == 200
            assert doc["class"] == "Dog"


class TestSchemaLifecycleRoutes:
    def register_named(self, conn, name="pets", lifecycle=None):
        entry = {
            "name": name,
            "schema": schema_doc(
                Schema.build(arrows=[("Dog", "owner", "Person")])
            ),
        }
        if lifecycle is not None:
            entry["lifecycle"] = lifecycle
        return post(
            conn, "/v1/schemas", {"format": API_FORMAT, "schemas": [entry]}
        )

    def test_named_entry_registers_and_reads_back(self, conn):
        status, doc = self.register_named(conn)
        assert status == 200
        status, info = get(conn, "/v1/schemas/pets")
        assert status == 200
        assert info["name"] == "pets"
        assert info["recommended"] == 1
        assert info["versions"][0]["lifecycle"] == "recommended"

    def test_supersede_chain_over_the_wire(self, conn):
        self.register_named(conn)
        self.register_named(conn)
        status, info = get(conn, "/v1/schemas/pets")
        assert status == 200
        assert info["recommended"] == 2
        assert [v["lifecycle"] for v in info["versions"]] == [
            "supported",
            "recommended",
        ]

    def test_delete_retires_and_subsequent_reads_are_410(self, conn):
        self.register_named(conn)
        conn.request("DELETE", "/v1/schemas/pets")
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 200
        assert doc["name"] == "pets"
        assert doc["versions"] == [1]
        status, doc = get(conn, "/v1/schemas/pets")
        assert status == 410
        assert doc["type"] == "RetiredSchemaError"

    def test_unknown_schema_name_is_404(self, conn):
        status, doc = get(conn, "/v1/schemas/never-registered")
        assert status == 404
        assert doc["type"] == "UnknownSchemaError"

    def test_delete_unknown_schema_is_404(self, conn):
        conn.request("DELETE", "/v1/schemas/never-registered")
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 404
        assert doc["type"] == "UnknownSchemaError"

    def test_bad_lifecycle_is_400(self, conn):
        status, doc = self.register_named(conn, lifecycle="zombie")
        assert status == 400
        assert doc["type"] == "InvalidRequestError"

    def test_put_on_schema_name_is_405(self, conn):
        conn.request("PUT", "/v1/schemas/pets")
        response = conn.getresponse()
        response.read()
        assert response.status == 405


class TestStatusMapping:
    def test_unknown_class_is_404(self, conn):
        status, doc = get(conn, "/v1/query/Unicorn")
        assert status == 404
        assert doc["type"] == "UnknownClassError"
        assert "Unicorn" in doc["error"]

    def test_unknown_component_is_404(self, conn):
        status, doc = get(conn, "/v1/components/99/view")
        assert status == 404

    def test_malformed_body_is_400(self, conn):
        conn.request("POST", "/v1/schemas", "this is not json")
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 400
        assert doc["type"] == "InvalidRequestError"

    def test_wrong_wire_format_is_400(self, conn):
        status, doc = post(conn, "/v1/schemas", {"format": "nope", "schemas": []})
        assert status == 400

    def test_bad_schema_document_is_400(self, conn):
        status, doc = post(
            conn,
            "/v1/schemas",
            {"format": API_FORMAT, "schemas": [{"format": "bogus"}]},
        )
        assert status == 400
        assert doc["type"] == "SerializationError"

    def test_incompatible_batch_is_409_and_rolls_back(self, conn, service):
        generation = service.service_stats()["generation"]
        status, doc = post(
            conn,
            "/v1/schemas",
            {
                "format": API_FORMAT,
                "schemas": [
                    schema_doc(Schema.build(spec=[("X", "Y")])),
                    schema_doc(Schema.build(spec=[("Y", "X")])),
                ],
            },
        )
        assert status == 409
        assert doc["type"] == "IncompatibleSchemasError"
        assert service.service_stats()["generation"] == generation
        assert service.component_of("X") is None

    def test_unknown_route_is_404(self, conn):
        status, doc = get(conn, "/v2/anything")
        assert status == 404

    def test_wrong_method_is_405(self, conn):
        status, doc = get(conn, "/v1/schemas")
        assert status == 405

    def test_non_integer_component_id_is_400(self, conn):
        status, doc = get(conn, "/v1/components/dog/view")
        assert status == 400

    def test_closed_service_is_503(self, conn, service):
        service.close()
        status, doc = get(conn, "/v1/query/Dog")
        assert status == 503
        assert doc["type"] == "ServiceShutdownError"

    def test_status_for_covers_the_taxonomy(self):
        assert status_for(UnknownClassError("x")) == 404
        assert status_for(UnknownSchemaError("x")) == 404
        assert status_for(RetiredSchemaError("x")) == 410
        assert status_for(InvalidRequestError("x")) == 400
        assert status_for(IncompatibleSchemasError("x")) == 409
        assert status_for(ServiceShutdownError("x")) == 503
        assert status_for(StorageError("x")) == 500
        assert status_for(CorruptLogError("x")) == 500
        assert status_for(CorruptSnapshotError("x")) == 500
        assert status_for(Exception("x")) == 500


class TestLifecycle:
    def test_port_zero_picks_a_free_port(self, frontend):
        host, port = frontend.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_stop_is_idempotent(self, service):
        server = HttpFrontend(service, port=0).start()
        server.stop()
        server.stop()

    def test_address_before_start_raises(self, service):
        with pytest.raises(RuntimeError):
            HttpFrontend(service).address

    def test_two_frontends_can_share_a_process(self, service):
        with HttpFrontend(service, port=0) as first:
            with HttpFrontend(service, port=0) as second:
                assert first.address != second.address
                for server in (first, second):
                    connection = http.client.HTTPConnection(
                        *server.address, timeout=10
                    )
                    status, doc = get(connection, "/v1/query/Dog")
                    connection.close()
                    assert status == 200
