"""Unit tests for IntegrationSession (the designer workflow object)."""

import pytest

from repro.core.consistency import ConsistencyRelation
from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.schema import Schema
from repro.exceptions import InconsistentSchemasError, SchemaError
from repro.tools.session import IntegrationSession


@pytest.fixture
def session() -> IntegrationSession:
    return (
        IntegrationSession()
        .add_schema(
            "registry",
            Schema.build(arrows=[("Hound", "license", "LicenseNo")]),
        )
        .add_schema(
            "clinic",
            Schema.build(arrows=[("Dog", "chart", "Chart")]),
        )
    )


class TestRegistration:
    def test_names_in_order(self, session):
        assert session.schema_names() == ("registry", "clinic")

    def test_duplicate_rejected(self, session):
        with pytest.raises(SchemaError):
            session.add_schema("registry", Schema.empty())

    def test_unknown_scope_rejected(self, session):
        with pytest.raises(SchemaError):
            session.rename_class("A", "B", schema="nope")


class TestWorkflow:
    def test_rename_then_merge_unifies(self, session):
        session.rename_class("Hound", "Dog", schema="registry")
        merged = session.merge()
        assert merged.has_arrow("Dog", "license", "LicenseNo")
        assert merged.has_arrow("Dog", "chart", "Chart")
        assert not merged.has_class("Hound")

    def test_assertions_participate(self, session):
        session.rename_class("Hound", "Dog", schema="registry")
        session.assert_isa("Puppy", "Dog")
        merged = session.merge()
        assert merged.has_arrow("Puppy", "chart", "Chart")

    def test_decisions_are_not_destructive(self, session):
        session.rename_class("Hound", "Dog", schema="registry")
        first = session.merge()
        # Re-merging gives the same result: inputs were never mutated.
        assert session.merge() == first

    def test_conflict_report_reflects_renamings(self, session):
        report_before = session.conflict_report()
        session.rename_class("Hound", "Dog", schema="registry")
        report_after = session.conflict_report()
        # Before: two disjoint schemas, nothing to say.  After the
        # unifying rename, the detector asks the (legitimate) homonym
        # question about the now-shared class with disjoint signatures.
        assert report_before == ["no conflicts detected"]
        assert any("Dog" in line and "homonym" in line for line in report_after)

    def test_consistency_gate(self, session):
        # Force an implicit class by giving both schemas conflicting
        # arrow targets, then forbid it.
        session = (
            IntegrationSession()
            .add_schema(
                "one", Schema.build(arrows=[("F", "a", "C")])
            )
            .add_schema(
                "two", Schema.build(arrows=[("F", "a", "D")])
            )
            .set_consistency(ConsistencyRelation())  # nothing consistent
        )
        with pytest.raises(InconsistentSchemasError):
            session.merge()

    def test_report_exposes_intermediates(self, session):
        session.rename_class("Hound", "Dog", schema="registry")
        report = session.report()
        assert report.merged == session.merge()
        assert len(report.inputs) == 2


class TestKeyedSessions:
    def test_keyed_merge(self):
        session = (
            IntegrationSession()
            .add_keyed_schema(
                "people",
                KeyedSchema(
                    Schema.build(arrows=[("Person", "ssn", "Str")]),
                    {"Person": KeyFamily.of({"ssn"})},
                ),
            )
            .add_schema(
                "extra",
                Schema.build(arrows=[("Person", "name", "Str")]),
            )
        )
        merged = session.merge_keyed()
        assert merged.keys_of("Person") == KeyFamily.of({"ssn"})
        assert merged.schema.has_arrow("Person", "name", "Str")

    def test_keyed_sessions_reject_renamings(self):
        session = (
            IntegrationSession()
            .add_keyed_schema(
                "people",
                KeyedSchema(
                    Schema.build(arrows=[("Person", "ssn", "Str")]),
                    {"Person": KeyFamily.of({"ssn"})},
                ),
            )
            .rename_class("Person", "Human")
        )
        with pytest.raises(SchemaError):
            session.merge_keyed()


class TestOrderIndependence:
    def test_permuted_sessions_agree(self):
        one = Schema.build(arrows=[("A", "f", "B")])
        two = Schema.build(spec=[("Z", "A")])
        three = Schema.build(arrows=[("Z", "g", "C")])
        forward = (
            IntegrationSession()
            .add_schema("one", one)
            .add_schema("two", two)
            .add_schema("three", three)
            .assert_isa("C", "B")
            .merge()
        )
        backward = (
            IntegrationSession()
            .add_schema("three", three)
            .add_schema("one", one)
            .add_schema("two", two)
            .assert_isa("C", "B")
            .merge()
        )
        assert forward == backward
