"""Integration tests for the schema-merge CLI."""

import json

import pytest

from repro.core.lower import AnnotatedSchema
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.figures import figure3_schemas
from repro.io import json_io
from repro.tools.cli import main


@pytest.fixture
def schema_files(tmp_path):
    one, two = figure3_schemas()
    path_one = tmp_path / "g1.json"
    path_two = tmp_path / "g2.json"
    path_one.write_text(json_io.dumps(one))
    path_two.write_text(json_io.dumps(two))
    return path_one, path_two


class TestShow:
    def test_show_schema(self, schema_files, capsys):
        path_one, _ = schema_files
        assert main(["show", str(path_one)]) == 0
        out = capsys.readouterr().out
        assert "classes" in out

    def test_show_annotated(self, tmp_path, capsys):
        schema = AnnotatedSchema.build(
            arrows=[("A", "f", "B", Participation.OPTIONAL)]
        )
        path = tmp_path / "ann.json"
        path.write_text(json_io.dumps(schema))
        assert main(["show", str(path)]) == 0
        assert "--f?-->" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent/file.json"]) == 2


class TestMerge:
    def test_merge_to_file(self, schema_files, tmp_path, capsys):
        path_one, path_two = schema_files
        out_path = tmp_path / "merged.json"
        code = main(
            ["merge", str(path_one), str(path_two), "-o", str(out_path)]
        )
        assert code == 0
        merged = json_io.loads(out_path.read_text())
        assert isinstance(merged, Schema)
        assert any(str(c) == "<B1&B2>" for c in merged.classes)

    def test_merge_explain(self, schema_files, capsys):
        path_one, path_two = schema_files
        assert main(["merge", str(path_one), str(path_two), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "weak merge (LUB)" in out
        assert "implicit classes introduced below" in out

    def test_merge_with_assertion(self, schema_files, capsys):
        path_one, path_two = schema_files
        assert (
            main(["merge", str(path_one), str(path_two), "--isa", "B1:B2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "<B1&B2>" not in out  # assertion removed the conflict

    def test_bad_assertion_syntax(self, schema_files, capsys):
        path_one, path_two = schema_files
        code = main(
            ["merge", str(path_one), str(path_two), "--isa", "nonsense"]
        )
        assert code == 1
        assert "SUB:SUPER" in capsys.readouterr().err

    def test_incompatible_merge_fails_cleanly(self, tmp_path, capsys):
        one = tmp_path / "a.json"
        two = tmp_path / "b.json"
        one.write_text(json_io.dumps(Schema.build(spec=[("A", "B")])))
        two.write_text(json_io.dumps(Schema.build(spec=[("B", "A")])))
        assert main(["merge", str(one), str(two)]) == 1
        assert "cycle" in capsys.readouterr().err


class TestLower:
    def test_lower_merge(self, tmp_path, capsys):
        one = tmp_path / "a.json"
        two = tmp_path / "b.json"
        one.write_text(
            json_io.dumps(
                Schema.build(
                    arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
                )
            )
        )
        two.write_text(
            json_io.dumps(Schema.build(arrows=[("Dog", "name", "Str")]))
        )
        assert main(["lower", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "Dog --age?--> Int" in out
        assert "Dog --name--> Str" in out


class TestCheckDiffDot:
    def test_check(self, schema_files, capsys):
        path_one, path_two = schema_files
        assert main(["check", str(path_one), str(path_two)]) == 0
        assert "no conflicts detected" in capsys.readouterr().out

    def test_diff(self, schema_files, capsys):
        path_one, path_two = schema_files
        assert main(["diff", str(path_one), str(path_two)]) == 0
        out = capsys.readouterr().out
        assert "only in left" in out and "only in right" in out

    def test_dot_to_file(self, schema_files, tmp_path):
        path_one, _ = schema_files
        out_path = tmp_path / "g.dot"
        assert main(["dot", str(path_one), "-o", str(out_path)]) == 0
        assert out_path.read_text().startswith("digraph")


class TestTextDialect:
    def test_merge_text_files(self, tmp_path, capsys):
        one = tmp_path / "a.schema"
        two = tmp_path / "b.schema"
        one.write_text("C ==> A1\nC ==> A2\n")
        two.write_text("A1 --a--> B1\nA2 --a--> B2\n")
        assert main(["merge", str(one), str(two)]) == 0
        assert "<B1&B2>" in capsys.readouterr().out

    def test_mixed_dialects(self, tmp_path, schema_files, capsys):
        json_one, _ = schema_files
        text_two = tmp_path / "b.schema"
        text_two.write_text("A1 --a--> B1\nA2 --a--> B2\n")
        assert main(["merge", str(json_one), str(text_two)]) == 0
        assert "<B1&B2>" in capsys.readouterr().out

    def test_convert_round_trip(self, tmp_path, schema_files):
        json_one, _ = schema_files
        text_path = tmp_path / "a.schema"
        back_path = tmp_path / "a2.json"
        assert main(
            ["convert", str(json_one), "--to", "text", "-o", str(text_path)]
        ) == 0
        assert main(
            ["convert", str(text_path), "--to", "json", "-o", str(back_path)]
        ) == 0
        from repro.figures import figure3_schemas

        original, _two = figure3_schemas()
        assert json_io.loads(back_path.read_text()) == original

    def test_show_keyed_text(self, tmp_path, capsys):
        path = tmp_path / "t.schema"
        path.write_text(
            "T --loc--> M\nT --at--> Time\nkey T: {loc, at}\n"
        )
        assert main(["show", str(path)]) == 0
        assert "keys" in capsys.readouterr().out

    def test_unparseable_text(self, tmp_path, capsys):
        path = tmp_path / "bad.schema"
        path.write_text("this is not a schema\n")
        assert main(["show", str(path)]) == 1
        assert "line 1" in capsys.readouterr().err


class TestCorrespond:
    @pytest.fixture
    def keyed_files(self, tmp_path):
        from repro.core.keys import KeyFamily, KeyedSchema

        census = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "SSN")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        payroll = KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "SSN"), ("Person", "name", "Str")]
            )
        )
        one = tmp_path / "census.json"
        two = tmp_path / "payroll.json"
        one.write_text(json_io.dumps(census))
        two.write_text(json_io.dumps(payroll))
        return one, two

    def test_reports_the_imposed_key(self, keyed_files, capsys):
        one, two = keyed_files
        assert main(["correspond", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "imposed" in out

    def test_plain_schemas_are_accepted(self, schema_files, capsys):
        one, two = schema_files
        assert main(["correspond", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "identity" in out or "no class is shared" in out

    def test_instance_file_rejected(self, tmp_path, capsys):
        from repro.instances.instance import Instance

        path = tmp_path / "inst.json"
        path.write_text(json_io.dumps(Instance.build(extents={"A": {"x"}})))
        assert main(["correspond", str(path), str(path)]) == 1
        assert "expected" in capsys.readouterr().err


class TestOOMerge:
    @pytest.fixture
    def diagram_files(self, tmp_path):
        from repro.models.oo import OOAttribute, OOClass, OODiagram

        one = OODiagram(
            classes=[OOClass("Person", [OOAttribute("name", "Str")])]
        )
        two = OODiagram(
            classes=[
                OOClass("Person", [OOAttribute("age", "Int")]),
                OOClass("Pet", [OOAttribute("owner", "Person")]),
            ]
        )
        path_one = tmp_path / "lib1.json"
        path_two = tmp_path / "lib2.json"
        path_one.write_text(json_io.dumps(one))
        path_two.write_text(json_io.dumps(two))
        return path_one, path_two

    def test_merges_and_prints_classes(self, diagram_files, capsys):
        one, two = diagram_files
        assert main(["oo-merge", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "class Person:" in out
        assert "age: Int" in out and "name: Str" in out

    def test_writes_mergeable_json(self, diagram_files, tmp_path, capsys):
        from repro.models.oo import OODiagram

        one, two = diagram_files
        out_path = tmp_path / "merged.json"
        assert main(
            ["oo-merge", str(one), str(two), "-o", str(out_path)]
        ) == 0
        merged = json_io.loads(out_path.read_text())
        assert isinstance(merged, OODiagram)
        assert merged.all_attributes("Person") == {
            "name": "Str",
            "age": "Int",
        }

    def test_non_diagram_rejected(self, schema_files, capsys):
        one, _two = schema_files
        assert main(["oo-merge", str(one)]) == 1
        assert "repro.oo/1" in capsys.readouterr().err


class TestFuse:
    @pytest.fixture
    def source_files(self, tmp_path):
        from repro.datasets import person_registry_scenario

        entries = []
        for index, (keyed, instance) in enumerate(
            person_registry_scenario()
        ):
            schema_path = tmp_path / f"schema{index}.json"
            instance_path = tmp_path / f"instance{index}.json"
            schema_path.write_text(json_io.dumps(keyed))
            instance_path.write_text(json_io.dumps(instance))
            entries.append(f"{schema_path}:{instance_path}")
        return entries

    def test_fuses_and_reports(self, source_files, capsys):
        code = main(
            ["fuse"]
            + [arg for entry in source_files for arg in ("--source", entry)]
            + [
                "--value-class", "SSN",
                "--value-class", "Date",
                "--value-class", "Str",
                "--value-class", "Money",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 identified by keys" in out
        assert "imposed" in out

    def test_writes_fused_instance(self, source_files, tmp_path, capsys):
        from repro.instances.instance import Instance

        out_path = tmp_path / "fused.json"
        code = main(
            ["fuse"]
            + [arg for entry in source_files for arg in ("--source", entry)]
            + ["--value-class", "SSN", "-o", str(out_path)]
        )
        assert code == 0
        fused = json_io.loads(out_path.read_text())
        assert isinstance(fused, Instance)
        assert len(fused.extent("Person")) == 3

    def test_malformed_source_spec_rejected(self, capsys):
        assert main(["fuse", "--source", "only-one-path.json"]) == 1
        assert "SCHEMA.json:INSTANCE.json" in capsys.readouterr().err


class TestOOShowAndDot:
    @pytest.fixture
    def diagram_file(self, tmp_path):
        from repro.models.oo import OOAttribute, OOClass, OODiagram

        diagram = OODiagram(
            classes=[
                OOClass("Person", [OOAttribute("name", "Str")]),
                OOClass("Author", bases=("Person",)),
            ]
        )
        path = tmp_path / "lib.json"
        path.write_text(json_io.dumps(diagram))
        return path

    def test_show_renders_classes(self, diagram_file, capsys):
        assert main(["show", str(diagram_file)]) == 0
        out = capsys.readouterr().out
        assert "class Author (Person):" in out

    def test_dot_renders_via_general_model(self, diagram_file, capsys):
        assert main(["dot", str(diagram_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "Author" in out and "name" in out


class TestShowInstance:
    def test_show_instance_renders_extents(self, tmp_path, capsys):
        from repro.instances.instance import Instance

        instance = Instance.build(
            extents={"Dog": {"d1"}},
            values={("d1", "name"): "d1"},
        )
        path = tmp_path / "inst.json"
        path.write_text(json_io.dumps(instance))
        assert main(["show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "objects (1):" in out


class TestServe:
    @pytest.fixture
    def service_files(self, tmp_path):
        pets = Schema.build(
            arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
        )
        court = Schema.build(arrows=[("Case", "judge", "Court")])
        pets_path = tmp_path / "pets.json"
        court_path = tmp_path / "court.json"
        pets_path.write_text(json_io.dumps(pets))
        court_path.write_text(json_io.dumps(court))
        return pets_path, court_path

    def run_session(self, monkeypatch, argv, script):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(script))
        return main(argv)

    def test_session_views_queries_and_quits(
        self, service_files, monkeypatch, capsys
    ):
        pets_path, court_path = service_files
        script = "components\nview Dog\nquery Person\nstats\nquit\n"
        assert (
            self.run_session(
                monkeypatch,
                ["serve", str(pets_path), str(court_path)],
                script,
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "registered 2 schemas in 2 components" in out
        assert "Puppy --owner--> Person" in out
        assert '"arrows_in"' in out
        assert '"requests_served": 2' in out

    def test_session_registers_mid_flight(
        self, service_files, monkeypatch, capsys, tmp_path
    ):
        pets_path, court_path = service_files
        bridge = Schema.build(arrows=[("Person", "argues", "Case")])
        bridge_path = tmp_path / "bridge.json"
        bridge_path.write_text(json_io.dumps(bridge))
        script = f"register {bridge_path}\ncomponents\nquit\n"
        assert (
            self.run_session(
                monkeypatch,
                ["serve", str(pets_path), str(court_path)],
                script,
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "generation 2: 1 components" in out

    def test_session_survives_bad_requests(
        self, service_files, monkeypatch, capsys
    ):
        pets_path, _ = service_files
        script = "query Unicorn\nbogus\nview Dog\n"  # EOF ends the session
        assert (
            self.run_session(monkeypatch, ["serve", str(pets_path)], script)
            == 0
        )
        out = capsys.readouterr().out
        assert "error: no registered schema mentions class Unicorn" in out
        assert "unknown command 'bogus'" in out
        assert "Dog --owner--> Person" in out

    def test_workload_preload(self, monkeypatch, capsys):
        script = "stats\nquit\n"
        assert (
            self.run_session(
                monkeypatch,
                ["serve", "--workload", "service-tiny"],
                script,
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "registered 12 schemas" in out


class TestBench:
    def test_bench_writes_summary_and_json(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--workload",
                    "service-tiny",
                    "--repeat",
                    "1",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "workload: service-tiny" in out
        assert "view speedup:" in out
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["invalidation_ok"] is True
        assert payload["service_stats"]["requests_served"] > 0

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["bench", "--workload", "nope"]) == 1
        assert "unknown request stream" in capsys.readouterr().err
