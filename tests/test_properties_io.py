"""Property tests: JSON serialization is the identity on round trips."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import KeyedSchema, minimal_satisfactory_assignment
from repro.io.json_io import dumps, loads
from repro.models.oo import from_schema as oo_from_general
from repro.models.oo import to_schema as oo_to_general

from tests.conftest import annotated_schemas, schemas
from tests.test_properties_oo import oo_diagrams

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoundTrips:
    @given(schemas())
    @RELAXED
    def test_schema(self, schema):
        assert loads(dumps(schema)) == schema

    @given(annotated_schemas())
    @RELAXED
    def test_annotated(self, schema):
        assert loads(dumps(schema)) == schema

    @given(schemas())
    @RELAXED
    def test_keyed(self, schema):
        raw = {}
        for cls in schema.sorted_classes():
            labels = sorted(schema.out_labels(cls))
            if labels:
                raw[cls] = [frozenset(labels[:1])]
        seeded = KeyedSchema(schema, raw, check_spec_monotone=False)
        keyed = KeyedSchema(
            schema, minimal_satisfactory_assignment(schema, [seeded])
        )
        assert loads(dumps(keyed)) == keyed

    @given(oo_diagrams())
    @RELAXED
    def test_oo_diagram(self, diagram):
        assert loads(dumps(diagram)) == diagram

    @given(schemas(), st.integers(min_value=0, max_value=999))
    @RELAXED
    def test_instance_of_random_schema(self, schema, seed):
        from repro.core.implicit import properize
        from repro.exceptions import NotProperError
        from repro.generators.random_schemas import random_instance
        from hypothesis import assume

        try:
            proper = properize(schema)
        except NotProperError:
            assume(False)
        instance = random_instance(proper, seed=seed)
        assert loads(dumps(instance)) == instance

    @given(schemas())
    @RELAXED
    def test_merged_schema_with_implicit_names(self, schema):
        """Composite names survive: merge a schema with itself shifted,
        forcing implicit classes where reach sets have two minima."""
        from repro.core.merge import upper_merge

        merged = upper_merge(schema)
        assert loads(dumps(merged)) == merged

    @given(oo_diagrams())
    @RELAXED
    def test_serialization_commutes_with_translation(self, diagram):
        """dumps/loads then translate == translate directly."""
        recovered = loads(dumps(diagram))
        assert oo_from_general(oo_to_general(recovered)) == oo_from_general(
            oo_to_general(diagram)
        )
