"""Unit tests for instance federation and key-based identification."""

import pytest

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema, lower_merge
from repro.core.schema import Schema
from repro.exceptions import InstanceError
from repro.instances.instance import Instance
from repro.instances.merging import federate, identify_by_keys
from repro.instances.satisfaction import satisfies_annotated


class TestFederate:
    def test_disjointification(self):
        one = Instance.build(extents={"Dog": {"rex"}})
        two = Instance.build(extents={"Dog": {"rex"}})
        combined = federate([one, two])
        assert len(combined.extent("Dog")) == 2

    def test_without_disjointification(self):
        one = Instance.build(extents={"Dog": {"rex"}})
        two = Instance.build(extents={"Dog": {"rex"}})
        combined = federate([one, two], disjointify=False)
        assert combined.extent("Dog") == {"rex"}

    def test_union_satisfies_lower_merge(self):
        schema_one = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        schema_two = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
        )
        inst_one = Instance.build(
            extents={"Dog": {"rex"}, "Str": {"s"}, "Int": {"i"}},
            values={("rex", "name"): "s", ("rex", "age"): "i"},
        )
        inst_two = Instance.build(
            extents={"Dog": {"fido"}, "Str": {"t"}, "Breed": {"lab"}},
            values={("fido", "name"): "t", ("fido", "breed"): "lab"},
        )
        assert satisfies_annotated(inst_one, schema_one)
        assert satisfies_annotated(inst_two, schema_two)
        merged_schema = lower_merge(schema_one, schema_two)
        combined = federate([inst_one, inst_two])
        assert satisfies_annotated(combined, merged_schema)

    def test_empty_federation(self):
        assert federate([]) == Instance.empty()


class TestIdentifyByKeys:
    @pytest.fixture
    def keyed(self) -> KeyedSchema:
        schema = Schema.build(arrows=[("Person", "ssn", "Str")])
        return KeyedSchema(schema, {"Person": KeyFamily.of({"ssn"})})

    def test_same_key_identified(self, keyed):
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}, "Str": {"s"}},
            values={("p1", "ssn"): "s", ("p2", "ssn"): "s"},
        )
        identified = identify_by_keys(instance, keyed)
        assert len(identified.extent("Person")) == 1

    def test_different_keys_kept_apart(self, keyed):
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}, "Str": {"s1", "s2"}},
            values={("p1", "ssn"): "s1", ("p2", "ssn"): "s2"},
        )
        identified = identify_by_keys(instance, keyed)
        assert len(identified.extent("Person")) == 2

    def test_undefined_key_values_never_identify(self, keyed):
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}},
        )
        identified = identify_by_keys(instance, keyed)
        assert len(identified.extent("Person")) == 2

    def test_cascading_identification(self):
        # Identifying two values can make two key tuples equal: the
        # fixpoint must catch the second round.
        schema = Schema.build(
            arrows=[
                ("Person", "ssn", "SSN"),
                ("Account", "holder", "Person"),
            ]
        )
        keyed = KeyedSchema(
            schema,
            {
                "Person": KeyFamily.of({"ssn"}),
                "Account": KeyFamily.of({"holder"}),
            },
        )
        instance = Instance.build(
            extents={
                "Person": {"p1", "p2"},
                "SSN": {"s"},
                "Account": {"a1", "a2"},
            },
            values={
                ("p1", "ssn"): "s",
                ("p2", "ssn"): "s",
                ("a1", "holder"): "p1",
                ("a2", "holder"): "p2",
            },
        )
        identified = identify_by_keys(instance, keyed)
        assert len(identified.extent("Person")) == 1
        assert len(identified.extent("Account")) == 1

    def test_inconsistent_data_rejected(self, keyed):
        # p1 and p2 share an ssn but have different names: identifying
        # them forces one oid to carry two name values.
        schema = Schema.build(
            arrows=[
                ("Person", "ssn", "Str"),
                ("Person", "name", "Str"),
            ]
        )
        keyed2 = KeyedSchema(schema, {"Person": KeyFamily.of({"ssn"})})
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}, "Str": {"s", "n1", "n2"}},
            values={
                ("p1", "ssn"): "s",
                ("p2", "ssn"): "s",
                ("p1", "name"): "n1",
                ("p2", "name"): "n2",
            },
        )
        with pytest.raises(InstanceError):
            identify_by_keys(instance, keyed2)

    def test_cross_database_identification_story(self, keyed):
        # The section 5 narrative: one source has the person, the other
        # has the same person under a different oid.
        g1_instance = Instance.build(
            extents={"Person": {"bob"}, "Str": {"123"}},
            values={("bob", "ssn"): "123"},
        )
        g2_instance = Instance.build(
            extents={"Person": {"robert"}, "Str": {"123"}},
            values={("robert", "ssn"): "123"},
        )
        combined = federate([g1_instance, g2_instance], disjointify=False)
        identified = identify_by_keys(combined, keyed)
        assert len(identified.extent("Person")) == 1
