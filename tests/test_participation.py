"""Unit tests for the participation semilattice (§6, Figure 11)."""

import pytest

from repro.core.participation import Participation, glb, glb_all, leq, lub
from repro.exceptions import ParticipationError

P0 = Participation.ABSENT
P01 = Participation.OPTIONAL
P1 = Participation.REQUIRED


class TestOrder:
    def test_reflexive(self):
        for value in Participation:
            assert leq(value, value)

    def test_optional_is_bottom(self):
        assert leq(P01, P0)
        assert leq(P01, P1)

    def test_maximal_elements_incomparable(self):
        assert not leq(P0, P1)
        assert not leq(P1, P0)
        assert not leq(P0, P01)
        assert not leq(P1, P01)


class TestGlb:
    def test_idempotent(self):
        for value in Participation:
            assert glb(value, value) == value

    def test_disagreement_resolves_to_optional(self):
        assert glb(P0, P1) == P01
        assert glb(P1, P0) == P01
        assert glb(P0, P01) == P01
        assert glb(P1, P01) == P01

    def test_glb_is_greatest_lower_bound(self):
        for left in Participation:
            for right in Participation:
                bound = glb(left, right)
                assert leq(bound, left) and leq(bound, right)
                for candidate in Participation:
                    if leq(candidate, left) and leq(candidate, right):
                        assert leq(candidate, bound)

    def test_commutative_associative(self):
        for a in Participation:
            for b in Participation:
                assert glb(a, b) == glb(b, a)
                for c in Participation:
                    assert glb(glb(a, b), c) == glb(a, glb(b, c))

    def test_glb_all(self):
        assert glb_all([P1, P1, P1]) == P1
        assert glb_all([P1, P0]) == P01
        assert glb_all([P0]) == P0
        with pytest.raises(ParticipationError):
            glb_all([])


class TestLub:
    def test_exists_on_chains(self):
        assert lub(P01, P1) == P1
        assert lub(P01, P0) == P0
        assert lub(P1, P1) == P1

    def test_absent_vs_required_has_no_lub(self):
        assert lub(P0, P1) is None
        assert lub(P1, P0) is None


class TestParse:
    def test_paper_notation(self):
        assert Participation.parse("0") == P0
        assert Participation.parse("0/1") == P01
        assert Participation.parse("1") == P1

    def test_str_round_trip(self):
        for value in Participation:
            assert Participation.parse(str(value)) == value

    def test_bad_text_rejected(self):
        with pytest.raises(ParticipationError):
            Participation.parse("2")
