"""Unit tests for schema restructuring (§7 structural conflicts)."""

import pytest

from repro.core.merge import upper_merge
from repro.core.names import BaseName
from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError
from repro.tools.restructure import (
    inline_relationship,
    reify_attribute,
    reify_relationship,
)


class TestReifyAttribute:
    def test_basic_reification(self):
        schema = Schema.build(arrows=[("Person", "address", "Str")])
        reified = reify_attribute(schema, "Person", "address", "Address")
        assert reified.has_arrow("Person", "address", "Address")
        assert reified.has_arrow("Address", "value", "Str")
        assert not reified.has_arrow("Person", "address", "Str")

    def test_enables_merge_with_entity_view(self):
        # One schema models address as a string attribute, the other as
        # an entity with structure.  Reifying the first makes them agree.
        flat = Schema.build(arrows=[("Person", "address", "Str")])
        structured = Schema.build(
            arrows=[
                ("Person", "address", "Address"),
                ("Address", "street", "Str"),
                ("Address", "city", "Str"),
            ]
        )
        reified = reify_attribute(flat, "Person", "address", "Address")
        merged = upper_merge(reified, structured)
        targets = merged.min_classes(merged.reach("Person", "address"))
        assert targets == {BaseName("Address")}

    def test_inherited_copies_regenerate(self):
        schema = Schema.build(
            arrows=[("Person", "address", "Str")],
            spec=[("Employee", "Person")],
        )
        reified = reify_attribute(schema, "Person", "address", "Address")
        assert reified.has_arrow("Employee", "address", "Address")
        assert not reified.has_arrow("Employee", "address", "Str")

    def test_existing_class_rejected(self):
        schema = Schema.build(arrows=[("Person", "address", "Str")])
        with pytest.raises(SchemaValidationError):
            reify_attribute(schema, "Person", "address", "Str")

    def test_missing_arrow_rejected(self):
        schema = Schema.build(classes=["Person"])
        with pytest.raises(SchemaValidationError):
            reify_attribute(schema, "Person", "ghost", "G")


class TestReifyRelationship:
    def test_basic(self):
        schema = Schema.build(arrows=[("Dog", "lives-in", "Kennel")])
        reified = reify_relationship(
            schema, "Dog", "lives-in", "Lives", "occ", "home"
        )
        assert reified.has_arrow("Lives", "occ", "Dog")
        assert reified.has_arrow("Lives", "home", "Kennel")
        assert not reified.has_arrow("Dog", "lives-in", "Kennel")

    def test_matches_node_style_schema(self):
        arrow_style = Schema.build(arrows=[("Dog", "lives-in", "Kennel")])
        node_style = Schema.build(
            arrows=[("Lives", "occ", "Dog"), ("Lives", "home", "Kennel")]
        )
        reified = reify_relationship(
            arrow_style, "Dog", "lives-in", "Lives", "occ", "home"
        )
        assert upper_merge(reified, node_style) == upper_merge(node_style)


class TestInlineRelationship:
    def test_round_trip(self):
        schema = Schema.build(arrows=[("Dog", "lives-in", "Kennel")])
        reified = reify_relationship(
            schema, "Dog", "lives-in", "Lives", "occ", "home"
        )
        back = inline_relationship(
            reified, "Lives", "occ", "home", "lives-in"
        )
        assert back == schema

    def test_extra_arrows_rejected(self):
        schema = Schema.build(
            arrows=[
                ("Lives", "occ", "Dog"),
                ("Lives", "home", "Kennel"),
                ("Lives", "since", "Date"),
            ]
        )
        with pytest.raises(SchemaValidationError):
            inline_relationship(schema, "Lives", "occ", "home", "lives-in")

    def test_referenced_node_rejected(self):
        schema = Schema.build(
            arrows=[
                ("Lives", "occ", "Dog"),
                ("Lives", "home", "Kennel"),
                ("Audit", "entry", "Lives"),
            ]
        )
        with pytest.raises(SchemaValidationError):
            inline_relationship(schema, "Lives", "occ", "home", "lives-in")

    def test_unknown_node_rejected(self):
        schema = Schema.build(classes=["A"])
        with pytest.raises(SchemaValidationError):
            inline_relationship(schema, "Lives", "occ", "home", "x")
