"""Unit tests for instance-satisfies-schema (§§1, 5, 6 semantics)."""

import pytest

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.instances.instance import Instance
from repro.instances.satisfaction import (
    satisfies,
    satisfies_annotated,
    satisfies_keyed,
    violations_annotated,
    violations_keyed,
    violations_weak,
)

P01 = Participation.OPTIONAL
P1 = Participation.REQUIRED


@pytest.fixture
def schema() -> Schema:
    return Schema.build(
        arrows=[("Dog", "owner", "Person")],
        spec=[("Puppy", "Dog")],
    )


class TestWeakSatisfaction:
    def test_good_instance(self, schema):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Person": {"alice"}, "Puppy": set()},
            values={("rex", "owner"): "alice"},
        )
        assert satisfies(instance, schema)

    def test_spec_containment_enforced(self, schema):
        instance = Instance.build(
            extents={"Puppy": {"rex"}, "Dog": set(), "Person": set()},
        )
        problems = violations_weak(instance, schema)
        assert any("extent" in p for p in problems)

    def test_missing_attribute_detected(self, schema):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Person": {"alice"}},
        )
        problems = violations_weak(instance, schema)
        assert any("lacks required attribute" in p for p in problems)

    def test_ill_typed_attribute_detected(self, schema):
        instance = Instance.build(
            extents={"Dog": {"rex", "spot"}, "Person": set()},
            values={("rex", "owner"): "spot", ("spot", "owner"): "rex"},
        )
        problems = violations_weak(instance, schema)
        assert any("is not in" in p for p in problems)

    def test_closure_arrows_checked(self, schema):
        # Puppy inherits the owner arrow through W1.
        instance = Instance.build(
            extents={
                "Puppy": {"rex"},
                "Dog": {"rex"},
                "Person": {"alice"},
            },
        )
        assert not satisfies(instance, schema)

    def test_empty_instance_satisfies_everything(self, schema):
        assert satisfies(Instance.empty(), schema)


class TestKeyedSatisfaction:
    @pytest.fixture
    def keyed(self) -> KeyedSchema:
        schema = Schema.build(arrows=[("Person", "ssn", "Str")])
        return KeyedSchema(schema, {"Person": KeyFamily.of({"ssn"})})

    def test_unique_keys_ok(self, keyed):
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}, "Str": {"s1", "s2"}},
            values={("p1", "ssn"): "s1", ("p2", "ssn"): "s2"},
        )
        assert satisfies_keyed(instance, keyed)

    def test_duplicate_key_detected(self, keyed):
        instance = Instance.build(
            extents={"Person": {"p1", "p2"}, "Str": {"s1"}},
            values={("p1", "ssn"): "s1", ("p2", "ssn"): "s1"},
        )
        problems = violations_keyed(instance, keyed)
        assert any("agree on key" in p for p in problems)

    def test_composite_key(self):
        schema = Schema.build(
            arrows=[
                ("T", "loc", "Machine"),
                ("T", "at", "Time"),
            ]
        )
        keyed = KeyedSchema(schema, {"T": KeyFamily.of({"loc", "at"})})
        instance = Instance.build(
            extents={
                "T": {"t1", "t2"},
                "Machine": {"m"},
                "Time": {"noon", "night"},
            },
            values={
                ("t1", "loc"): "m",
                ("t1", "at"): "noon",
                ("t2", "loc"): "m",
                ("t2", "at"): "night",
            },
        )
        assert satisfies_keyed(instance, keyed)


class TestAnnotatedSatisfaction:
    @pytest.fixture
    def annotated(self) -> AnnotatedSchema:
        return AnnotatedSchema.build(
            arrows=[
                ("Dog", "name", "Str", P1),
                ("Dog", "age", "Int", P01),
            ]
        )

    def test_optional_may_be_missing(self, annotated):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Str": {"s"}, "Int": set()},
            values={("rex", "name"): "s"},
        )
        assert satisfies_annotated(instance, annotated)

    def test_required_must_be_present(self, annotated):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Str": set(), "Int": set()},
        )
        problems = violations_annotated(instance, annotated)
        assert any("lacks required" in p for p in problems)

    def test_optional_value_must_be_licensed(self, annotated):
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Str": {"s"}, "Int": set()},
            values={("rex", "name"): "s", ("rex", "age"): "rex"},
        )
        problems = violations_annotated(instance, annotated)
        assert any("lies in no present" in p for p in problems)

    def test_forbidden_label_detected(self):
        schema = AnnotatedSchema.build(
            classes=["Dog", "Str"],
            arrows=[("Cat", "name", "Str", P1)],
        )
        instance = Instance.build(
            extents={"Dog": {"rex"}, "Str": {"s"}, "Cat": set()},
            values={("rex", "name"): "s"},
        )
        problems = violations_annotated(instance, schema)
        assert any("constraint 0" in p for p in problems)

    def test_spec_containment(self):
        schema = AnnotatedSchema.build(spec=[("Puppy", "Dog")])
        instance = Instance.build(
            extents={"Puppy": {"rex"}, "Dog": set()},
        )
        assert not satisfies_annotated(instance, schema)
