"""Unit tests for proper schemas, canonical classes and D1/D2 (§2)."""

import pytest

from repro.core.names import BaseName
from repro.core.proper import (
    canonical_arrows,
    canonical_class,
    check_d2,
    check_proper,
    from_canonical,
    is_proper,
    properness_violations,
)
from repro.core.schema import Schema
from repro.exceptions import NotProperError, SchemaValidationError


@pytest.fixture
def proper_schema() -> Schema:
    return Schema.build(
        arrows=[("Owner", "pet", "Police-dog")],
        spec=[("Police-dog", "Dog")],
    )


@pytest.fixture
def weak_only_schema() -> Schema:
    # F has a-arrows to incomparable C and D: no canonical class.
    return Schema.build(arrows=[("F", "a", "C"), ("F", "a", "D")])


class TestCanonicalClass:
    def test_least_target_found(self, proper_schema):
        assert canonical_class(proper_schema, "Owner", "pet") == BaseName(
            "Police-dog"
        )

    def test_empty_reach_returns_none(self, proper_schema):
        assert canonical_class(proper_schema, "Dog", "pet") is None

    def test_no_least_raises(self, weak_only_schema):
        with pytest.raises(NotProperError):
            canonical_class(weak_only_schema, "F", "a")


class TestProperness:
    def test_proper_schema_accepted(self, proper_schema):
        assert is_proper(proper_schema)
        assert check_proper(proper_schema) is proper_schema

    def test_weak_schema_detected(self, weak_only_schema):
        assert not is_proper(weak_only_schema)
        violations = properness_violations(weak_only_schema)
        assert len(violations) == 1
        cls, label, minimal = violations[0]
        assert cls == BaseName("F") and label == "a"
        assert minimal == {BaseName("C"), BaseName("D")}

    def test_check_proper_raises_with_witness(self, weak_only_schema):
        with pytest.raises(NotProperError) as excinfo:
            check_proper(weak_only_schema)
        assert "F" in str(excinfo.value)

    def test_empty_schema_is_proper(self):
        assert is_proper(Schema.empty())

    def test_comparable_targets_are_fine(self):
        schema = Schema.build(
            arrows=[("F", "a", "Sub"), ("F", "a", "Sup")],
            spec=[("Sub", "Sup")],
        )
        assert is_proper(schema)
        assert canonical_class(schema, "F", "a") == BaseName("Sub")


class TestCanonicalArrows:
    def test_extracts_partial_function(self, proper_schema):
        table = canonical_arrows(proper_schema)
        assert table == {
            (BaseName("Owner"), "pet"): BaseName("Police-dog")
        }

    def test_inherited_arrows_get_own_entries(self, dog_schema):
        table = canonical_arrows(dog_schema)
        assert table[(BaseName("Police-dog"), "owner")] == BaseName("Person")

    def test_weak_schema_rejected(self, weak_only_schema):
        with pytest.raises(NotProperError):
            canonical_arrows(weak_only_schema)


class TestFromCanonical:
    def test_round_trip(self, dog_schema):
        rebuilt = from_canonical(
            classes=dog_schema.classes,
            spec=dog_schema.spec,
            canon=canonical_arrows(dog_schema),
        )
        assert rebuilt == dog_schema

    def test_d2_violation_rejected(self):
        # P ==> Q, Q has an f-arrow, P has none: D2 fails.
        with pytest.raises(SchemaValidationError):
            from_canonical(
                classes=["P", "Q", "R"],
                spec=[("P", "Q")],
                canon={("Q", "f"): "R"},
            )

    def test_d2_refinement_accepted(self):
        schema = from_canonical(
            classes=["P", "Q", "R", "SubR"],
            spec=[("P", "Q"), ("SubR", "R")],
            canon={("Q", "f"): "R", ("P", "f"): "SubR"},
        )
        assert schema.has_arrow("P", "f", "R")
        assert canonical_class(schema, "P", "f") == BaseName("SubR")

    def test_spec_cycle_rejected(self):
        with pytest.raises(SchemaValidationError):
            from_canonical(
                classes=["A", "B"], spec=[("A", "B"), ("B", "A")], canon={}
            )

    def test_result_is_w2_closed(self):
        schema = from_canonical(
            classes=["P", "S", "Sup"],
            spec=[("S", "Sup")],
            canon={("P", "f"): "S"},
        )
        assert schema.has_arrow("P", "f", "Sup")


class TestCheckD2:
    def test_accepts_valid_table(self, dog_schema):
        check_d2(
            dog_schema.classes,
            dog_schema.spec,
            canonical_arrows(dog_schema),
        )

    def test_rejects_incomparable_refinement(self):
        a, b, q, p = (BaseName(x) for x in "ABQP")
        spec = frozenset(
            {(p, q), (a, a), (b, b), (q, q), (p, p)}
        )
        with pytest.raises(SchemaValidationError):
            check_d2(
                [a, b, q, p],
                spec,
                {(q, "f"): a, (p, "f"): b},  # B is not below A
            )
