"""Unit tests for the object-oriented substrate model."""

import pytest

from repro.core.assertions import isa
from repro.core.names import ImplicitName, name
from repro.models.oo import (
    OO_STRATIFICATION,
    OOAttribute,
    OOClass,
    OODiagram,
    from_schema,
    merge_oo,
    to_schema,
)
from repro.models.strata import StratifiedSchema
from repro.exceptions import TranslationError


@pytest.fixture
def library() -> OODiagram:
    return OODiagram(
        classes=[
            OOClass(
                "Person",
                [OOAttribute("name", "String"), OOAttribute("spouse", "Person")],
            ),
            OOClass("Author", [OOAttribute("royalties", "Money")], bases=("Person",)),
            OOClass(
                "Book",
                [OOAttribute("title", "String"), OOAttribute("by", "Author")],
            ),
        ]
    )


@pytest.fixture
def reviews() -> OODiagram:
    return OODiagram(
        classes=[
            OOClass("Person", [OOAttribute("age", "Int")]),
            OOClass("Book", [OOAttribute("isbn", "String")]),
            OOClass(
                "Review",
                [OOAttribute("of", "Book"), OOAttribute("reviewer", "Person")],
            ),
        ]
    )


class TestConstruction:
    def test_value_types_inferred(self, library):
        assert library.value_types == {"String", "Money"}

    def test_explicit_value_types_are_kept(self):
        diagram = OODiagram(
            classes=[OOClass("A")], value_types=["Unused"]
        )
        assert "Unused" in diagram.value_types

    def test_attribute_declaration_order_is_irrelevant(self):
        one = OOClass(
            "Book",
            [OOAttribute("title", "String"), OOAttribute("by", "Author")],
        )
        two = OOClass(
            "Book",
            [OOAttribute("by", "Author"), OOAttribute("title", "String")],
        )
        assert one == two

    def test_base_declaration_order_is_irrelevant(self):
        assert OOClass("C", bases=("A", "B")) == OOClass("C", bases=("B", "A"))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(TranslationError, match="twice"):
            OOClass("A", [OOAttribute("x", "Int"), OOAttribute("x", "Str")])

    def test_duplicate_base_rejected(self):
        with pytest.raises(TranslationError, match="twice"):
            OOClass("C", bases=("A", "A"))

    def test_empty_class_name_rejected(self):
        with pytest.raises(TranslationError, match="non-empty"):
            OOClass("")

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(TranslationError, match="non-empty"):
            OOAttribute("", "Int")

    def test_duplicate_class_rejected(self):
        with pytest.raises(TranslationError, match="twice"):
            OODiagram(classes=[OOClass("A"), OOClass("A")])

    def test_unknown_base_rejected(self):
        with pytest.raises(TranslationError, match="unknown class"):
            OODiagram(classes=[OOClass("A", bases=("Ghost",))])

    def test_inheriting_from_value_type_rejected(self):
        with pytest.raises(TranslationError, match="unknown class"):
            OODiagram(
                classes=[
                    OOClass("A", [OOAttribute("x", "Int")]),
                    OOClass("B", bases=("Int",)),
                ]
            )

    def test_name_cannot_be_class_and_value(self):
        with pytest.raises(TranslationError, match="both"):
            OODiagram(classes=[OOClass("A")], value_types=["A"])

    def test_get_class(self, library):
        assert library.get_class("Author").bases == ("Person",)
        with pytest.raises(TranslationError, match="no class"):
            library.get_class("Ghost")

    def test_all_attributes_inherits(self, library):
        attrs = library.all_attributes("Author")
        assert attrs == {
            "name": "String",
            "spouse": "Person",
            "royalties": "Money",
        }

    def test_all_attributes_override(self):
        diagram = OODiagram(
            classes=[
                OOClass("Base", [OOAttribute("x", "Int")]),
                OOClass("Sub", [OOAttribute("x", "Float")], bases=("Base",)),
            ]
        )
        assert diagram.all_attributes("Sub")["x"] == "Float"


class TestTranslation:
    def test_strata_assignment(self, library):
        stratified = to_schema(library)
        assert stratified.policy == OO_STRATIFICATION
        assert stratified.stratum_of("Person") == "object"
        assert stratified.stratum_of("String") == "value"

    def test_inheritance_becomes_specialization(self, library):
        schema = to_schema(library).schema
        assert schema.is_spec("Author", "Person")

    def test_attributes_become_arrows_and_close(self, library):
        schema = to_schema(library).schema
        assert schema.has_arrow("Person", "name", "String")
        # W1: Author inherits Person's arrows.
        assert schema.has_arrow("Author", "name", "String")

    def test_round_trip(self, library, reviews):
        assert from_schema(to_schema(library)) == library
        assert from_schema(to_schema(reviews)) == reviews

    def test_round_trip_circular_and_multiple_inheritance(self):
        diagram = OODiagram(
            classes=[
                OOClass("A", [OOAttribute("b", "B")]),
                OOClass("B", [OOAttribute("a", "A")]),
                OOClass("C", bases=("A", "B")),
                OOClass("Meta", [OOAttribute("about", "C")]),
            ]
        )
        assert from_schema(to_schema(diagram)) == diagram

    def test_from_schema_rejects_wrong_policy(self, library):
        from repro.models.strata import RELATIONAL_STRATIFICATION

        stratified = StratifiedSchema(
            to_schema(library).schema.restrict([]),
            RELATIONAL_STRATIFICATION,
            {},
        )
        with pytest.raises(TranslationError, match="OO-stratified"):
            from_schema(stratified)


class TestFormatDiagram:
    def test_deterministic_text(self, library):
        from repro.models.oo import format_diagram

        text = format_diagram(library, "lib")
        assert text.startswith("lib\n===")
        assert "class Author (Person):" in text
        assert "  royalties: Money" in text
        assert "value types: Money, String" in text
        assert text == format_diagram(library, "lib")

    def test_class_without_attributes(self):
        from repro.models.oo import format_diagram

        text = format_diagram(OODiagram(classes=[OOClass("A")]))
        assert "(no declared attributes)" in text

    def test_no_title_no_underline(self, library):
        from repro.models.oo import format_diagram

        assert not format_diagram(library).startswith("=")


class TestBaseCanonicalization:
    def test_redundant_base_is_reduced_to_covers(self):
        diagram = OODiagram(
            classes=[
                OOClass("A"),
                OOClass("B", bases=("A",)),
                # "A" is redundant: it is already an ancestor via "B".
                OOClass("C", bases=("A", "B")),
            ]
        )
        assert diagram.get_class("C").bases == ("B",)

    def test_reduction_makes_equal_diagrams(self):
        redundant = OODiagram(
            classes=[
                OOClass("A"),
                OOClass("B", bases=("A",)),
                OOClass("C", bases=("A", "B")),
            ]
        )
        minimal = OODiagram(
            classes=[
                OOClass("A"),
                OOClass("B", bases=("A",)),
                OOClass("C", bases=("B",)),
            ]
        )
        assert redundant == minimal

    def test_genuine_multiple_inheritance_is_kept(self):
        diagram = OODiagram(
            classes=[
                OOClass("A"),
                OOClass("B"),
                OOClass("C", bases=("A", "B")),
            ]
        )
        assert diagram.get_class("C").bases == ("A", "B")

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(TranslationError, match="cycle"):
            OODiagram(
                classes=[
                    OOClass("A", bases=("B",)),
                    OOClass("B", bases=("A",)),
                ]
            )


class TestMerge:
    def test_merged_class_union(self, library, reviews):
        merged = merge_oo(library, reviews)
        assert merged.class_names() == {
            "Person",
            "Author",
            "Book",
            "Review",
        }

    def test_merged_attributes_union(self, library, reviews):
        merged = merge_oo(library, reviews)
        assert merged.all_attributes("Person") == {
            "name": "String",
            "spouse": "Person",
            "age": "Int",
        }

    def test_merge_is_commutative(self, library, reviews):
        assert merge_oo(library, reviews) == merge_oo(reviews, library)

    def test_merge_is_associative(self, library, reviews):
        third = OODiagram(
            classes=[OOClass("Review", [OOAttribute("stars", "Int")])]
        )
        left = merge_oo(merge_oo(library, reviews), third)
        right = merge_oo(library, merge_oo(reviews, third))
        assert left == right

    def test_merge_is_idempotent(self, library):
        assert merge_oo(library, library) == merge_oo(library)

    def test_merge_with_isa_assertion(self, library, reviews):
        merged = merge_oo(
            library, reviews, assertions=[isa("Review", "Book")]
        )
        # Review inherits Book's attributes through the asserted ISA.
        assert merged.all_attributes("Review")["title"] == "String"
        assert "Book" in merged.get_class("Review").bases

    def test_structural_conflict_value_vs_class(self, reviews):
        # "Int" is a value type in *reviews* but a class here.
        clashing = OODiagram(
            classes=[OOClass("Int", [OOAttribute("width", "Bits")])]
        )
        with pytest.raises(TranslationError, match="value in one"):
            merge_oo(reviews, clashing)

    def test_implicit_class_survives_round_trip(self):
        # The Figure 3 pattern inside the OO model: C inherits from both
        # A1 and A2, whose a-attributes have different classes, so the
        # merge introduces an implicit class below B1 and B2.
        one = OODiagram(
            classes=[
                OOClass("A1"),
                OOClass("A2"),
                OOClass("C", bases=("A1", "A2")),
            ]
        )
        two = OODiagram(
            classes=[
                OOClass("A1", [OOAttribute("a", "B1")]),
                OOClass("A2", [OOAttribute("a", "B2")]),
                OOClass("B1"),
                OOClass("B2"),
            ]
        )
        merged = merge_oo(one, two)
        implicit = str(ImplicitName([name("B1"), name("B2")]))
        assert implicit in merged.class_names()
        assert set(merged.get_class(implicit).bases) == {"B1", "B2"}

    def test_merge_preserves_oo_strata(self, library, reviews):
        # Round-tripping the merge re-validates the stratification; a
        # mixed-stratum implicit class would have raised.
        merged = merge_oo(library, reviews)
        stratified = to_schema(merged)
        assert stratified.policy == OO_STRATIFICATION
