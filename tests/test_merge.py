"""Unit tests for the upper merge pipeline (§3, §4)."""

import pytest

from repro.core.assertions import isa
from repro.core.consistency import ConsistencyRelation
from repro.core.implicit import implicit_classes_of
from repro.core.merge import merge_report, upper_merge, weak_merge
from repro.core.names import BaseName, ImplicitName
from repro.core.ordering import is_sub
from repro.core.proper import is_proper
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError, InconsistentSchemasError
from repro.figures import figure3_schemas, figure4_schemas


class TestWeakMerge:
    def test_upper_bound(self, dog_schema):
        other = Schema.build(arrows=[("Dog", "licence", "Licence")])
        merged = weak_merge(dog_schema, other)
        assert is_sub(dog_schema, merged) and is_sub(other, merged)

    def test_same_name_means_same_class(self):
        # The section 3 Dog example: attributes union up.
        one = Schema.build(
            arrows=[
                ("Dog", "license", "Str"),
                ("Dog", "owner", "Person"),
                ("Dog", "breed", "Breed"),
            ]
        )
        two = Schema.build(
            arrows=[
                ("Dog", "name", "Str"),
                ("Dog", "age", "Int"),
                ("Dog", "breed", "Breed"),
            ]
        )
        merged = weak_merge(one, two)
        assert merged.out_labels("Dog") == {
            "license",
            "owner",
            "breed",
            "name",
            "age",
        }

    def test_assertions_folded_in(self, dog_schema):
        merged = weak_merge(dog_schema, assertions=[isa("Puppy", "Dog")])
        assert merged.has_arrow("Puppy", "owner", "Person")

    def test_incompatible_raises(self):
        with pytest.raises(IncompatibleSchemasError):
            weak_merge(
                Schema.build(spec=[("A", "B")]),
                Schema.build(spec=[("B", "A")]),
            )


class TestUpperMerge:
    def test_result_is_proper(self):
        merged = upper_merge(*figure3_schemas())
        assert is_proper(merged)

    def test_above_all_inputs(self):
        one, two = figure3_schemas()
        merged = upper_merge(one, two)
        assert is_sub(one, merged) and is_sub(two, merged)

    def test_commutative(self):
        one, two = figure3_schemas()
        assert upper_merge(one, two) == upper_merge(two, one)

    def test_associative_via_stripping(self):
        g1, g2, g3 = figure4_schemas()
        assert upper_merge(upper_merge(g1, g2), g3) == upper_merge(
            g1, upper_merge(g2, g3)
        ) == upper_merge(g1, g2, g3)

    def test_idempotent(self, dog_schema):
        assert upper_merge(dog_schema, dog_schema) == upper_merge(dog_schema)

    def test_empty_merge(self):
        assert upper_merge() == Schema.empty()

    def test_without_stripping_intermediates_linger(self):
        g1, g2, g3 = figure4_schemas()
        kept = upper_merge(
            upper_merge(g1, g2), g3, strip_derived=False
        )
        stripped = upper_merge(upper_merge(g1, g2), g3)
        assert ImplicitName(["D", "E"]) in kept.classes
        assert ImplicitName(["D", "E"]) not in stripped.classes
        assert ImplicitName(["D", "E", "F"]) in kept.classes
        assert ImplicitName(["D", "E", "F"]) in stripped.classes

    def test_consistency_vetoes(self):
        one, two = figure3_schemas()
        relation = ConsistencyRelation()  # nothing is consistent
        with pytest.raises(InconsistentSchemasError) as excinfo:
            upper_merge(one, two, consistency=relation)
        assert set(map(str, excinfo.value.offending_pair)) == {"B1", "B2"}

    def test_consistency_permits(self):
        one, two = figure3_schemas()
        merged = upper_merge(
            one, two, consistency=ConsistencyRelation.permissive()
        )
        assert ImplicitName(["B1", "B2"]) in merged.classes

    def test_user_assertion_changes_merge(self):
        # Asserting B1 ==> B2 removes the need for an implicit class.
        one, two = figure3_schemas()
        merged = upper_merge(one, two, assertions=[isa("B1", "B2")])
        assert not implicit_classes_of(merged)
        assert merged.is_spec("B1", "B2")

    def test_assertion_order_irrelevant(self):
        one, two = figure3_schemas()
        a1, a2 = isa("B1", "B2"), isa("X", "A1")
        assert upper_merge(one, two, assertions=[a1, a2]) == upper_merge(
            one, two, assertions=[a2, a1]
        )


class TestMergeReport:
    def test_report_contents(self):
        one, two = figure3_schemas()
        report = merge_report(one, two)
        assert report.inputs == (one, two)
        assert report.weak == weak_merge(one, two)
        assert report.merged == upper_merge(one, two)
        assert report.implicit_members == (
            frozenset({BaseName("B1"), BaseName("B2")}),
        )
        assert report.implicit_classes == {ImplicitName(["B1", "B2"])}

    def test_summary_mentions_counts(self):
        one, two = figure3_schemas()
        summary = merge_report(one, two).summary()
        assert "2 schema(s)" in summary
        assert "1 implicit class(es)" in summary

    def test_report_consistency_veto(self):
        one, two = figure3_schemas()
        with pytest.raises(InconsistentSchemasError):
            merge_report(one, two, consistency=ConsistencyRelation())
