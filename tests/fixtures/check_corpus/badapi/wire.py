"""Corpus: the status map the exception coverage rule checks against."""

from badapi.exceptions import AppError

_STATUS_MAP = (
    (AppError, 400),
)
