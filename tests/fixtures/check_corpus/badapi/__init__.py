"""Corpus: a facade out of sync with its submodule's surface."""

from badapi.engine import helper, launch

__all__ = [
    "launch",
    "missing",
]
