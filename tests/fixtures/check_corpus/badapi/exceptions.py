"""Corpus: an exception class outside the status map."""


class AppError(Exception):
    pass


class MappedError(AppError):
    pass


class UnmappedError(Exception):  # BAD[http-status-map]
    pass
