"""Corpus: a submodule declaring a narrower public surface."""

__all__ = ["launch"]


def launch():
    return "launched"


def helper():
    return "private"
