"""Corpus: blocking calls reachable from coroutines on the event loop."""

import time


class Frontend:
    def __init__(self, service, lock):
        self._service = service
        self._lock = lock

    async def handle(self, request):
        self._lock.acquire()  # BAD[async-blocking]
        time.sleep(0.1)  # BAD[async-blocking]
        return self._helper(request)

    def _helper(self, request):
        with self._lock:  # BAD[async-blocking]
            return self._service.register([request])  # BAD[async-blocking]

    def _not_reachable_from_a_coroutine(self):
        time.sleep(1.0)
