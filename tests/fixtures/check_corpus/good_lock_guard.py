"""Corpus: the same shape as bad_lock_guard, disciplined — no findings."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}  # guarded-by: _lock
        self._generation = 0  # guarded-by(writes): _lock

    def write(self, key, value):
        with self._lock:
            self._table[key] = value
            self._generation += 1

    def read(self, key):  # requires-lock: _lock
        return self._table.get(key)

    def generation(self):
        return self._generation
