"""Corpus: blocking acquisition while the planner lock is held."""

import threading


class Planner:
    def __init__(self):
        self._topology = threading.Lock()  # lock: planner
        self._shard_locks = {}

    def bad_blocking_acquire(self, sid):
        with self._topology:
            self._shard_locks[sid].acquire()  # BAD[lock-nesting]

    def bad_reentrant(self):
        with self._topology:
            with self._topology:  # BAD[lock-nesting]
                pass

    def good_shards_then_planner(self, sid):
        lock = self._shard_locks[sid]
        lock.acquire()
        with self._topology:
            pass
        lock.release()
