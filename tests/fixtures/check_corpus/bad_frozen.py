"""Corpus: a frozen-after-init field mutated after publication."""


class Shard:
    def __init__(self, sid):
        self.sid = sid  # frozen-after-init

    def renumber(self, sid):
        self.sid = sid  # BAD[frozen-field]

    def read_is_fine(self):
        return self.sid
