"""Corpus: guarded attributes accessed outside their declared lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}  # guarded-by: _lock
        self._generation = 0  # guarded-by(writes): _lock

    def ok_write(self, key, value):
        with self._lock:
            self._table[key] = value
            self._generation += 1

    def bad_read(self, key):
        return self._table.get(key)  # BAD[lock-guard]

    def bad_write(self, key, value):
        self._table[key] = value  # BAD[lock-guard]

    def lock_free_read_is_fine(self):
        return self._generation

    def bad_generation_write(self):
        self._generation += 1  # BAD[lock-guard]
