"""Corpus: the generation stamp published before the data it covers."""


class Service:
    def __init__(self):
        self._shards = {}
        self._class_to_sid = {}
        self._generation = 0

    def commit(self, staged, generation):  # publishes: _shards, _class_to_sid, _generation
        for sid, shard in staged:
            self._shards[sid] = shard
        self._generation = generation
        for sid, shard in staged:
            for cls in shard:
                self._class_to_sid[cls] = sid  # BAD[publication-order]
        self._shards.pop(None, None)  # BAD[publication-order]

    def commit_missing_stamp(self, staged):  # BAD[publication-order] publishes: _shards, _generation
        for sid, shard in staged:
            self._shards[sid] = shard
