"""Corpus: the sanctioned async patterns — await and executor hand-off."""

import asyncio


class Frontend:
    def __init__(self, service):
        self._service = service
        self._stop = asyncio.Event()

    async def run(self):
        await self._stop.wait()

    async def handle(self, loop, batch):
        return await loop.run_in_executor(None, self._service.register, batch)
