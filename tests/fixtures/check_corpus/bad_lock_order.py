"""Corpus: locks acquired in arbitrary (unsorted) iteration order."""


def lock_all(locks_by_sid):
    held = []
    for sid in locks_by_sid:  # BAD[lock-order]
        lock = locks_by_sid[sid]
        lock.acquire()
        held.append(lock)
    return held


def lock_all_sorted(locks_by_sid):
    held = []
    for sid in sorted(locks_by_sid):
        locks_by_sid[sid].acquire()
        held.append(locks_by_sid[sid])
    return held


def lock_all_presorted(locks_by_sid):
    ordered = sorted(locks_by_sid)
    held = []
    for sid in ordered:
        locks_by_sid[sid].acquire()
        held.append(locks_by_sid[sid])
    return held
