"""Unit tests for Imp construction and properization (§4.2)."""


from repro.core.implicit import (
    implicit_classes_of,
    implicit_sets,
    is_implicit,
    properize,
    reachable_sets,
    strip_implicits,
)
from repro.core.merge import weak_merge
from repro.core.names import BaseName, GenName, ImplicitName
from repro.core.ordering import is_sub
from repro.core.proper import canonical_class, is_proper
from repro.core.schema import Schema
from repro.figures import figure3_schemas, figure6_schemas


def _merge_fig3() -> Schema:
    return weak_merge(*figure3_schemas())


class TestReachableSets:
    def test_singleton_steps(self):
        schema = Schema.build(arrows=[("A", "f", "B"), ("B", "f", "C")])
        reached = reachable_sets(schema)
        assert frozenset({BaseName("B")}) in reached
        assert frozenset({BaseName("C")}) in reached

    def test_multi_element_reach(self):
        weak = _merge_fig3()
        reached = reachable_sets(weak)
        assert frozenset({BaseName("B1"), BaseName("B2")}) in reached

    def test_empty_schema(self):
        assert reachable_sets(Schema.empty()) == set()

    def test_fixpoint_iterates_sets(self):
        # R({B1,B2}, f) is only reachable by applying f to a 2-set.
        schema = Schema.build(
            arrows=[
                ("A", "a", "B1"),
                ("A", "a", "B2"),
                ("B1", "f", "C1"),
                ("B2", "f", "C2"),
            ]
        )
        reached = reachable_sets(schema)
        assert frozenset({BaseName("C1"), BaseName("C2")}) in reached


class TestImplicitSets:
    def test_figure3(self):
        assert implicit_sets(_merge_fig3()) == {
            frozenset({BaseName("B1"), BaseName("B2")})
        }

    def test_minimality_filter(self):
        # Reach {Sub, Sup} has MinS {Sub}: no implicit class needed.
        schema = Schema.build(
            arrows=[("F", "a", "Sub"), ("F", "a", "Sup")],
            spec=[("Sub", "Sup")],
        )
        assert implicit_sets(schema) == set()

    def test_proper_schema_has_none(self, dog_schema):
        assert implicit_sets(dog_schema) == set()


class TestProperize:
    def test_figure3_result(self):
        result = properize(_merge_fig3())
        imp = ImplicitName(["B1", "B2"])
        assert imp in result.classes
        assert result.is_spec(imp, "B1") and result.is_spec(imp, "B2")
        assert result.has_arrow("C", "a", imp)
        assert canonical_class(result, "C", "a") == imp
        assert is_proper(result)

    def test_inflationary(self):
        weak = _merge_fig3()
        assert is_sub(weak, properize(weak))

    def test_identity_on_proper(self, dog_schema):
        assert properize(dog_schema) is dog_schema or properize(
            dog_schema
        ) == dog_schema

    def test_figure6_adds_e_below_implicit(self):
        weak = weak_merge(*figure6_schemas())
        result = properize(weak)
        imp = ImplicitName(["C", "D"])
        assert imp in result.classes
        # E specializes both C and D, so the algorithm adds E ==> <C&D>.
        assert result.is_spec("E", imp)

    def test_implicit_classes_inherit_member_arrows(self):
        schema = Schema.build(
            arrows=[
                ("F", "a", "C"),
                ("F", "a", "D"),
                ("C", "g", "X"),
                ("D", "g", "X"),
            ]
        )
        result = properize(schema)
        imp = ImplicitName(["C", "D"])
        assert result.has_arrow(imp, "g", "X")

    def test_nested_implicits(self):
        # The chained case: implicit class whose own arrows conflict.
        schema = Schema.build(
            arrows=[
                ("A", "a", "B1"),
                ("A", "a", "B2"),
                ("B1", "f", "C1"),
                ("B2", "f", "C2"),
            ]
        )
        result = properize(schema)
        first = ImplicitName(["B1", "B2"])
        second = ImplicitName(["C1", "C2"])
        assert first in result.classes and second in result.classes
        assert result.has_arrow(first, "f", second)
        assert is_proper(result)

    def test_implicit_spec_between_implicits(self):
        # <B1&B2&B3> must specialize <B1&B2> when both exist.
        schema = Schema.build(
            arrows=[
                ("P", "a", "B1"),
                ("P", "a", "B2"),
                ("P", "a", "B3"),
                ("Q", "a", "B1"),
                ("Q", "a", "B2"),
            ]
        )
        result = properize(schema)
        big = ImplicitName(["B1", "B2", "B3"])
        small = ImplicitName(["B1", "B2"])
        assert result.is_spec(big, small)
        assert canonical_class(result, "P", "a") == big
        assert canonical_class(result, "Q", "a") == small


class TestStripImplicits:
    def test_round_trip(self):
        weak = _merge_fig3()
        assert strip_implicits(properize(weak)) == weak

    def test_strip_is_noop_without_implicits(self, dog_schema):
        assert strip_implicits(dog_schema) == dog_schema

    def test_is_implicit_predicate(self):
        assert is_implicit(ImplicitName(["A", "B"]))
        assert is_implicit(GenName(["A", "B"]))
        assert not is_implicit(BaseName("A"))

    def test_implicit_classes_of(self):
        result = properize(_merge_fig3())
        assert implicit_classes_of(result) == {ImplicitName(["B1", "B2"])}
