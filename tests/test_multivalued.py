"""Unit tests for the multivalued-arrows extension (§7 future work)."""

import pytest

from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError
from repro.extensions.multivalued import (
    MultivaluedSchema,
    Valence,
    merge_multivalued,
    satisfies_multivalued,
    violations_multivalued,
)
from repro.instances.instance import Instance


@pytest.fixture
def person_schema() -> Schema:
    return Schema.build(
        arrows=[
            ("Person", "ssn", "Str"),
            ("Person", "phones", "Phone"),
        ],
        spec=[("Employee", "Person")],
    )


class TestConstruction:
    def test_default_is_single(self, person_schema):
        schema = MultivaluedSchema(person_schema)
        assert schema.valence_of("Person", "ssn") == Valence.SINGLE

    def test_explicit_multi(self, person_schema):
        schema = MultivaluedSchema(
            person_schema, {("Person", "phones"): Valence.MULTI}
        )
        assert schema.valence_of("Person", "phones") == Valence.MULTI
        assert schema.multi_labels("Person") == {"phones"}

    def test_unknown_class_rejected(self, person_schema):
        with pytest.raises(SchemaValidationError):
            MultivaluedSchema(
                person_schema, {("Ghost", "x"): Valence.MULTI}
            )

    def test_unknown_label_rejected(self, person_schema):
        with pytest.raises(SchemaValidationError):
            MultivaluedSchema(
                person_schema, {("Person", "age"): Valence.MULTI}
            )

    def test_single_propagates_down_spec(self, person_schema):
        schema = MultivaluedSchema(
            person_schema, {("Person", "ssn"): Valence.SINGLE}
        )
        assert schema.valence_of("Employee", "ssn") == Valence.SINGLE

    def test_subclass_cannot_weaken(self, person_schema):
        with pytest.raises(SchemaValidationError):
            MultivaluedSchema(
                person_schema,
                {
                    ("Person", "ssn"): Valence.SINGLE,
                    ("Employee", "ssn"): Valence.MULTI,
                },
            )

    def test_equality_modulo_defaults(self, person_schema):
        explicit = MultivaluedSchema(
            person_schema, {("Person", "ssn"): Valence.SINGLE}
        )
        implicit = MultivaluedSchema(person_schema)
        assert explicit == implicit
        assert hash(explicit) == hash(implicit)


class TestMerge:
    def test_upper_rule_single_wins(self):
        one = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.MULTI},
        )
        two = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.SINGLE},
        )
        merged = merge_multivalued(one, two)
        assert merged.valence_of("P", "f") == Valence.SINGLE

    def test_lower_rule_multi_wins(self):
        one = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.MULTI},
        )
        two = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.SINGLE},
        )
        merged = merge_multivalued(one, two, rule="lower")
        assert merged.valence_of("P", "f") == Valence.MULTI

    def test_schemas_union_up(self):
        one = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.MULTI},
        )
        two = MultivaluedSchema(
            Schema.build(arrows=[("P", "g", "E")]),
        )
        merged = merge_multivalued(one, two)
        assert merged.schema.has_arrow("P", "f", "D")
        assert merged.schema.has_arrow("P", "g", "E")
        assert merged.valence_of("P", "f") == Valence.MULTI
        assert merged.valence_of("P", "g") == Valence.SINGLE

    def test_order_independent(self):
        one = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
            {("P", "f"): Valence.MULTI},
        )
        two = MultivaluedSchema(
            Schema.build(arrows=[("P", "f", "D")]),
        )
        three = MultivaluedSchema(
            Schema.build(arrows=[("Q", "g", "D")]),
            {("Q", "g"): Valence.MULTI},
        )
        assert merge_multivalued(one, two, three) == merge_multivalued(
            three, two, one
        )

    def test_bad_rule_rejected(self):
        one = MultivaluedSchema(Schema.build(classes=["A"]))
        with pytest.raises(SchemaValidationError):
            merge_multivalued(one, rule="sideways")


class TestInstanceSemantics:
    @pytest.fixture
    def schema(self, person_schema) -> MultivaluedSchema:
        return MultivaluedSchema(
            person_schema, {("Person", "phones"): Valence.MULTI}
        )

    def test_links_carry_multivalued_attributes(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": {"s"},
                "Phone": {"ph1", "ph2"},
                "Employee": set(),
            },
            values={("p", "ssn"): "s"},
        )
        links = [("p", "phones", "ph1"), ("p", "phones", "ph2")]
        assert satisfies_multivalued(instance, schema, links)

    def test_zero_links_is_fine(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": {"s"},
                "Phone": set(),
                "Employee": set(),
            },
            values={("p", "ssn"): "s"},
        )
        assert satisfies_multivalued(instance, schema, [])

    def test_single_valued_still_required(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": set(),
                "Phone": set(),
                "Employee": set(),
            },
        )
        problems = violations_multivalued(instance, schema, [])
        assert any("lacks required" in p for p in problems)

    def test_untyped_link_rejected(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": {"s", "stray"},
                "Phone": set(),
                "Employee": set(),
            },
            values={("p", "ssn"): "s"},
        )
        problems = violations_multivalued(
            instance, schema, [("p", "phones", "stray")]
        )
        assert any("is not in extent" in p for p in problems)

    def test_undeclared_link_rejected(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": {"s"},
                "Phone": {"ph"},
                "Employee": set(),
            },
            values={("p", "ssn"): "s"},
        )
        problems = violations_multivalued(
            instance, schema, [("p", "ssn-link", "ph")]
        )
        assert any("no class" in p for p in problems)

    def test_valuation_shadowing_rejected(self, schema):
        instance = Instance.build(
            extents={
                "Person": {"p"},
                "Str": {"s"},
                "Phone": {"ph"},
                "Employee": set(),
            },
            values={("p", "ssn"): "s", ("p", "phones"): "ph"},
        )
        problems = violations_multivalued(instance, schema, [])
        assert any("declares" in p and "multivalued" in p for p in problems)
