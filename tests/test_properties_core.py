"""Property-based tests of the core algebra (hypothesis).

These machine-check the paper's theorems over randomized weak schemas:
Proposition 4.1 (bounded joins), the lattice laws of ``⊔``/``⊓``, the
monoid laws of the merge, and the contract of properization.
"""

from hypothesis import HealthCheck, given, settings

from repro.core.implicit import (
    implicit_classes_of,
    implicit_sets,
    properize,
    strip_implicits,
)
from repro.core.merge import upper_merge
from repro.core.ordering import is_sub, join, meet
from repro.core.proper import (
    canonical_arrows,
    check_d2,
    from_canonical,
    is_proper,
)
from repro.core.schema import Schema

from tests.conftest import schema_pairs, schema_triples, schemas

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestInformationOrdering:
    @given(schemas())
    @RELAXED
    def test_reflexive(self, schema):
        assert is_sub(schema, schema)

    @given(schema_pairs())
    @RELAXED
    def test_antisymmetric(self, pair):
        left, right = pair
        if is_sub(left, right) and is_sub(right, left):
            assert left == right

    @given(schema_triples())
    @RELAXED
    def test_transitive(self, triple):
        one, two, _ = triple
        joined = join(one, two)
        # one ⊑ joined and joined ⊑ join(joined, _) chains up.
        bigger = join(joined, triple[2])
        assert is_sub(one, joined)
        assert is_sub(joined, bigger)
        assert is_sub(one, bigger)


class TestProposition41:
    @given(schema_pairs())
    @RELAXED
    def test_join_is_upper_bound(self, pair):
        left, right = pair
        joined = join(left, right)
        assert is_sub(left, joined) and is_sub(right, joined)

    @given(schema_triples())
    @RELAXED
    def test_join_is_least(self, triple):
        left, right, other = triple
        joined = join(left, right)
        candidate = join(joined, other)  # some upper bound of both
        assert is_sub(joined, candidate)

    @given(schema_pairs())
    @RELAXED
    def test_join_construction_matches_proof(self, pair):
        left, right = pair
        joined = join(left, right)
        assert joined.classes == left.classes | right.classes
        assert joined.spec >= left.spec | right.spec
        assert joined.arrows >= left.arrows | right.arrows


class TestMergeMonoidLaws:
    @given(schema_pairs())
    @RELAXED
    def test_commutative(self, pair):
        left, right = pair
        assert upper_merge(left, right) == upper_merge(right, left)

    @given(schema_triples())
    @RELAXED
    def test_associative(self, triple):
        one, two, three = triple
        assert upper_merge(upper_merge(one, two), three) == upper_merge(
            one, upper_merge(two, three)
        )

    @given(schema_triples())
    @RELAXED
    def test_binary_fold_equals_nary(self, triple):
        one, two, three = triple
        assert upper_merge(
            upper_merge(one, two), three
        ) == upper_merge(one, two, three)

    @given(schemas())
    @RELAXED
    def test_idempotent(self, schema):
        assert upper_merge(schema, schema) == upper_merge(schema)

    @given(schemas())
    @RELAXED
    def test_empty_is_identity(self, schema):
        assert upper_merge(schema, Schema.empty()) == upper_merge(schema)


class TestMeetLaws:
    @given(schema_pairs())
    @RELAXED
    def test_meet_is_lower_bound(self, pair):
        left, right = pair
        lower = meet(left, right)
        assert is_sub(lower, left) and is_sub(lower, right)

    @given(schema_pairs())
    @RELAXED
    def test_meet_is_greatest(self, pair):
        left, right = pair
        lower = meet(left, right)
        other = meet(lower, left)  # any lower bound of both
        assert is_sub(other, lower)

    @given(schema_pairs())
    @RELAXED
    def test_absorption(self, pair):
        left, right = pair
        assert meet(left, join(left, right)) == left
        assert join(left, meet(left, right)) == left


class TestProperization:
    @given(schemas())
    @RELAXED
    def test_result_is_proper(self, schema):
        assert is_proper(properize(schema))

    @given(schemas())
    @RELAXED
    def test_inflationary(self, schema):
        assert is_sub(schema, properize(schema))

    @given(schemas())
    @RELAXED
    def test_idempotent(self, schema):
        once = properize(schema)
        assert properize(once) == once

    @given(schemas())
    @RELAXED
    def test_strip_recovers_weak_schema(self, schema):
        assert strip_implicits(properize(schema)) == schema

    @given(schemas())
    @RELAXED
    def test_implicit_class_count_matches_imp(self, schema):
        proper = properize(schema)
        assert len(implicit_classes_of(proper)) == len(
            implicit_sets(schema)
        )

    @given(schemas())
    @RELAXED
    def test_implicit_classes_sit_below_members(self, schema):
        proper = properize(schema)
        for cls in implicit_classes_of(proper):
            for member in cls.members:
                assert proper.is_spec(cls, member)


class TestD1D2Equivalence:
    @given(schemas())
    @RELAXED
    def test_functional_round_trip(self, schema):
        proper = properize(schema)
        canon = canonical_arrows(proper)
        check_d2(proper.classes, proper.spec, canon)
        rebuilt = from_canonical(proper.classes, proper.spec, canon)
        assert rebuilt == proper
