"""Unit tests for the information ordering, joins and meets (§4.1)."""

import pytest

from repro.core.ordering import (
    compatibility_cycle,
    compatible,
    comparable,
    is_lower_bound,
    is_strict_sub,
    is_sub,
    is_upper_bound,
    join,
    join_all,
    meet,
    meet_all,
)
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError


@pytest.fixture
def small() -> Schema:
    return Schema.build(arrows=[("A", "f", "B")])


@pytest.fixture
def bigger() -> Schema:
    return Schema.build(
        arrows=[("A", "f", "B"), ("A", "g", "C")], spec=[("X", "A")]
    )


class TestOrdering:
    def test_reflexive(self, small):
        assert is_sub(small, small)

    def test_sub(self, small, bigger):
        assert is_sub(small, bigger)
        assert not is_sub(bigger, small)
        assert is_strict_sub(small, bigger)
        assert not is_strict_sub(small, small)

    def test_empty_is_bottom(self, small):
        assert is_sub(Schema.empty(), small)

    def test_comparable(self, small, bigger):
        assert comparable(small, bigger)
        other = Schema.build(arrows=[("Z", "h", "W")])
        assert not comparable(small, other)

    def test_antisymmetry(self, small):
        clone = Schema.build(arrows=[("A", "f", "B")])
        assert is_sub(small, clone) and is_sub(clone, small)
        assert small == clone


class TestCompatibility:
    def test_compatible_family(self, small, bigger):
        assert compatible(small, bigger)
        assert compatibility_cycle([small, bigger]) is None

    def test_cross_schema_cycle_detected(self):
        one = Schema.build(spec=[("A", "B")])
        two = Schema.build(spec=[("B", "A")])
        assert not compatible(one, two)
        cycle = compatibility_cycle([one, two])
        assert cycle is not None and cycle[0] == cycle[-1]

    def test_three_way_cycle(self):
        one = Schema.build(spec=[("A", "B")])
        two = Schema.build(spec=[("B", "C")])
        three = Schema.build(spec=[("C", "A")])
        assert compatible(one, two)
        assert not compatible(one, two, three)


class TestJoin:
    def test_join_is_upper_bound(self, small, bigger):
        joined = join(small, bigger)
        assert is_upper_bound(joined, [small, bigger])

    def test_join_is_least(self, small, bigger):
        joined = join(small, bigger)
        # bigger is itself an upper bound here, so join must be below it.
        assert is_sub(joined, bigger)
        assert joined == bigger

    def test_join_closes_across_schemas(self):
        # Figure 3: spec from one schema, arrows from the other.
        spec_side = Schema.build(spec=[("C", "A1"), ("C", "A2")])
        arrow_side = Schema.build(
            arrows=[("A1", "a", "B1"), ("A2", "a", "B2")]
        )
        joined = join(spec_side, arrow_side)
        assert joined.has_arrow("C", "a", "B1")
        assert joined.has_arrow("C", "a", "B2")

    def test_incompatible_join_raises(self):
        one = Schema.build(spec=[("A", "B")])
        two = Schema.build(spec=[("B", "A")])
        with pytest.raises(IncompatibleSchemasError):
            join(one, two)

    def test_join_all_empty_is_bottom(self):
        assert join_all([]) == Schema.empty()

    def test_join_all_matches_pairwise(self, small, bigger):
        third = Schema.build(arrows=[("C", "h", "D")])
        assert join_all([small, bigger, third]) == join(
            join(small, bigger), third
        )


class TestMeet:
    def test_meet_is_lower_bound(self, small, bigger):
        lower = meet(small, bigger)
        assert is_lower_bound(lower, [small, bigger])

    def test_meet_is_greatest(self, small, bigger):
        lower = meet(small, bigger)
        assert lower == small  # small ⊑ bigger, so meet is small

    def test_meet_discards_disagreement(self):
        one = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
        )
        two = Schema.build(
            arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
        )
        lower = meet(one, two)
        assert lower.has_arrow("Dog", "name", "Str")
        assert not lower.has_arrow("Dog", "age", "Int")
        assert not lower.has_class("Breed")

    def test_meet_always_exists_even_when_incompatible(self):
        one = Schema.build(spec=[("A", "B")])
        two = Schema.build(spec=[("B", "A")])
        lower = meet(one, two)
        assert lower.classes == one.classes
        assert not lower.strict_spec()

    def test_meet_all_requires_nonempty(self):
        with pytest.raises(ValueError):
            meet_all([])

    def test_meet_all_folds(self, small, bigger):
        assert meet_all([small, bigger, small]) == small
