"""Schema lifecycle tests: named versions, supersede chains, retirement.

The lifecycle layer rides on the durable registry (``ISSUE`` tentpole):
named registrations get monotonically increasing versions and a
``recommended``/``supported``/``obsolete`` state, a new recommended
version demotes its predecessor (the supersede chain), and ``retire``
is the registry's first *removal* path — implemented as
rebuild-on-retire, so these tests also pin the invalidation contract:
retiring a schema rebuilds exactly its owning component and leaves
every other component's caches warm (observed through the
``closure.components_rebuilt`` counter and the snapshot-cache stats).
"""

from __future__ import annotations

import pytest

from repro.core.schema import Schema
from repro.exceptions import (
    InvalidRequestError,
    RetiredSchemaError,
    UnknownClassError,
    UnknownSchemaError,
)
from repro.obs.metrics import REGISTRY
from repro.service import MergeService, RegistrationEntry


def pets_v1() -> Schema:
    return Schema.build(arrows=[("Dog", "owner", "Person")])


def pets_v2() -> Schema:
    return Schema.build(
        arrows=[("Dog", "owner", "Person"), ("Dog", "licence", "Licence")]
    )


def court() -> Schema:
    return Schema.build(arrows=[("Case", "judge", "Court")])


def library() -> Schema:
    return Schema.build(arrows=[("Book", "shelf", "Shelf")])


def rebuilds() -> int:
    return REGISTRY.value("closure.components_rebuilt")


class TestNamedRegistration:
    def test_versions_count_up_from_one(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.register([RegistrationEntry(pets_v2(), name="pets")])
        info = service.schema_info("pets")
        assert [v["version"] for v in info["versions"]] == [1, 2]

    def test_default_lifecycle_is_recommended_and_supersedes(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        assert service.schema_info("pets")["recommended"] == 1
        service.register([RegistrationEntry(pets_v2(), name="pets")])
        info = service.schema_info("pets")
        assert info["recommended"] == 2
        assert [v["lifecycle"] for v in info["versions"]] == [
            "supported",
            "recommended",
        ]
        assert service.resolve_schema("pets") == pets_v2()

    def test_supported_registration_does_not_demote_recommended(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.register(
            [RegistrationEntry(pets_v2(), name="pets", lifecycle="supported")]
        )
        info = service.schema_info("pets")
        assert info["recommended"] == 1
        assert service.resolve_schema("pets") == pets_v1()

    def test_resolution_falls_back_through_the_lifecycle_order(self):
        service = MergeService()
        service.register(
            [RegistrationEntry(pets_v1(), name="pets", lifecycle="obsolete")]
        )
        # Nothing better exists: the obsolete version still resolves.
        assert service.resolve_schema("pets") == pets_v1()
        service.register(
            [RegistrationEntry(pets_v2(), name="pets", lifecycle="supported")]
        )
        assert service.resolve_schema("pets") == pets_v2()

    def test_duplicate_version_rolls_back_the_whole_batch(self):
        service = MergeService()
        service.register(
            [RegistrationEntry(pets_v1(), name="pets", version=1)]
        )
        generation = service.service_stats()["generation"]
        with pytest.raises(InvalidRequestError, match="version"):
            service.register(
                [
                    RegistrationEntry(court()),
                    RegistrationEntry(pets_v2(), name="pets", version=1),
                ]
            )
        assert service.service_stats()["generation"] == generation
        assert service.component_of("Case") is None

    def test_named_empty_schema_is_rejected(self):
        service = MergeService()
        with pytest.raises(InvalidRequestError, match="empty"):
            service.register(
                [RegistrationEntry(Schema.empty(), name="pets")]
            )

    def test_anonymous_entries_cannot_carry_lifecycle_fields(self):
        with pytest.raises(InvalidRequestError):
            RegistrationEntry(pets_v1(), version=1)
        with pytest.raises(InvalidRequestError):
            RegistrationEntry(pets_v1(), lifecycle="recommended")
        with pytest.raises(InvalidRequestError):
            RegistrationEntry(pets_v1(), name="pets", version=0)
        with pytest.raises(InvalidRequestError):
            RegistrationEntry(pets_v1(), name="pets", lifecycle="zombie")

    def test_unknown_name_raises_typed_error(self):
        service = MergeService()
        with pytest.raises(UnknownSchemaError):
            service.resolve_schema("ghost")
        with pytest.raises(UnknownSchemaError):
            service.schema_info("ghost")
        with pytest.raises(UnknownSchemaError):
            service.retire("ghost")


class TestRetire:
    def test_retire_withdraws_every_live_version(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.register([RegistrationEntry(pets_v2(), name="pets")])
        receipt = service.retire("pets")
        assert receipt.versions == (1, 2)
        with pytest.raises(RetiredSchemaError):
            service.resolve_schema("pets")
        with pytest.raises(RetiredSchemaError):
            service.retire("pets")

    def test_retired_classes_leave_the_registry(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.retire("pets")
        assert service.component_of("Dog") is None
        with pytest.raises(UnknownClassError):
            service.query("Dog")
        assert service.merged_view() == Schema.empty()

    def test_equal_anonymous_registration_survives_a_retire(self):
        service = MergeService()
        service.register(
            [RegistrationEntry(pets_v1(), name="pets"), pets_v1()]
        )
        service.retire("pets")
        # Only the named occurrence was dropped; the anonymous twin
        # still asserts the same content.
        assert service.merged_view() == pets_v1()
        assert service.component_of("Dog") is not None

    def test_version_numbers_are_never_reused(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.retire("pets")
        service.register([RegistrationEntry(pets_v2(), name="pets")])
        info = service.schema_info("pets")
        assert [v["version"] for v in info["versions"]] == [1, 2]
        assert info["recommended"] == 2
        assert [v["retired"] for v in info["versions"]] == [True, False]

    def test_generation_bumps_once_per_retire(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.register([RegistrationEntry(pets_v2(), name="pets")])
        generation = service.service_stats()["generation"]
        receipt = service.retire("pets")
        assert receipt.generation == generation + 1

    def test_retired_versions_show_in_storage_stats(self):
        service = MergeService()
        service.register([RegistrationEntry(pets_v1(), name="pets")])
        service.register([RegistrationEntry(court(), name="court")])
        service.retire("pets")
        storage = service.service_stats()["storage"]
        assert storage["named_schemas"] == 2
        assert storage["retired_versions"] == 1


class TestRetireInvalidation:
    def sharded_service(self) -> MergeService:
        service = MergeService()
        service.register(
            [
                RegistrationEntry(pets_v1(), name="pets"),
                RegistrationEntry(pets_v2(), name="pets"),
                # Anonymous member of the pets component: it survives
                # the retire, so the component must be *rebuilt* from
                # it rather than dropped outright.
                Schema.build(arrows=[("Dog", "vet", "Vet")]),
                RegistrationEntry(court(), name="court"),
                RegistrationEntry(library()),
            ]
        )
        return service

    def test_retire_rebuilds_exactly_the_owning_component(self):
        service = self.sharded_service()
        service.merged_view()  # warm every component's cache
        before = rebuilds()
        assert service.merged_view() is not None
        assert rebuilds() == before  # fully warm: no rebuild on reads
        service.retire("pets")
        view = service.merged_view()
        # Only the pets component was refolded (lazily, on this first
        # read after the retire); court and library answered from
        # their still-valid cache entries.
        assert rebuilds() == before + 1
        assert view.has_arrow("Dog", "vet", "Vet")
        assert not view.has_arrow("Dog", "owner", "Person")

    def test_untouched_components_revalidate_instead_of_recomputing(self):
        service = self.sharded_service()
        service.query("Case")
        service.query("Book")
        baseline = service.service_stats()["snapshot_cache"]
        service.retire("pets")
        service.query("Case")
        service.query("Book")
        stats = service.service_stats()["snapshot_cache"]
        # The generation moved on, but both shards are untouched: the
        # cached answers are re-stamped as partial hits, never rebuilt.
        assert stats["partial_hits"] == baseline["partial_hits"] + 2
        assert stats["misses"] == baseline["misses"]

    def test_retiring_the_last_member_drops_the_component(self):
        service = self.sharded_service()
        components = service.service_stats()["components"]
        service.retire("court")
        assert service.service_stats()["components"] == components - 1
        assert service.component_of("Case") is None

    def test_retire_receipt_counts_surviving_components(self):
        service = self.sharded_service()
        receipt = service.retire("court")
        assert receipt.components == service.service_stats()["components"]
