"""Property-based tests for the instance-level theorems (§4, §6)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lower import lower_merge
from repro.core.merge import upper_merge
from repro.generators.random_schemas import (
    random_annotated_schema,
    random_instance,
    random_proper_schema,
    random_schema_family,
)
from repro.instances.coercion import coerce
from repro.instances.merging import federate
from repro.instances.satisfaction import satisfies, satisfies_annotated

MERGE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGeneratedInstances:
    @given(st.integers(min_value=0, max_value=40))
    @MERGE_SETTINGS
    def test_random_instance_satisfies_its_schema(self, seed):
        schema = random_proper_schema(n_classes=7, n_labels=3, seed=seed)
        instance = random_instance(schema, seed=seed)
        assert satisfies(instance, schema)


class TestUpperCoercionTheorem:
    @given(st.integers(min_value=0, max_value=40))
    @MERGE_SETTINGS
    def test_merge_instances_coerce_to_components(self, seed):
        family = random_schema_family(
            n_schemas=3, pool_size=10, n_classes=5, n_labels=3, seed=seed
        )
        merged = upper_merge(*family)
        instance = random_instance(merged, seed=seed)
        assert satisfies(instance, merged)
        for component in family:
            assert satisfies(coerce(instance, component), component)


class TestLowerFederationTheorem:
    @given(st.integers(min_value=0, max_value=40))
    @MERGE_SETTINGS
    def test_federated_instances_satisfy_lower_merge(self, seed):
        # Two annotated sources; instances of each required-projection
        # satisfy each source, and their disjoint union satisfies the
        # lower merge.
        one = random_annotated_schema(seed=seed)
        two = random_annotated_schema(seed=seed + 1000)
        inst_one = random_instance(one.required_schema(), seed=seed)
        inst_two = random_instance(
            two.required_schema(), seed=seed + 1000
        )
        assert satisfies_annotated(inst_one, one)
        assert satisfies_annotated(inst_two, two)
        merged = lower_merge(one, two)
        combined = federate([inst_one, inst_two])
        assert satisfies_annotated(combined, merged)
