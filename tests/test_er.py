"""Unit tests for the ER substrate model (§2, §5, Figures 1-2, 9)."""

import pytest

from repro.core.assertions import isa
from repro.core.keys import KeyFamily
from repro.exceptions import TranslationError
from repro.models.er import (
    ERAttribute,
    ERDiagram,
    EREntity,
    ERRelationship,
    cardinality_keys,
    from_schema,
    merge_er,
    to_keyed_schema,
    to_schema,
)


@pytest.fixture
def advisor_diagram() -> ERDiagram:
    return ERDiagram(
        entities=[EREntity("Faculty"), EREntity("GS")],
        relationships=[
            ERRelationship(
                "Advisor",
                roles={"faculty": "Faculty", "victim": "GS"},
                cardinalities={"faculty": "1"},
            ),
            ERRelationship(
                "Committee",
                roles={"faculty": "Faculty", "victim": "GS"},
                isa=["Advisor"],
            ),
        ],
    )


class TestValidation:
    def test_duplicate_entity_rejected(self):
        with pytest.raises(TranslationError):
            ERDiagram(entities=[EREntity("A"), EREntity("A")])

    def test_unknown_isa_rejected(self):
        with pytest.raises(TranslationError):
            ERDiagram(entities=[EREntity("A", isa=["Missing"])])

    def test_unknown_role_target_rejected(self):
        with pytest.raises(TranslationError):
            ERDiagram(
                relationships=[ERRelationship("R", roles={"x": "Missing"})]
            )

    def test_bad_cardinality_rejected(self):
        with pytest.raises(TranslationError):
            ERRelationship(
                "R", roles={"x": "E"}, cardinalities={"x": "17"}
            )

    def test_cardinality_on_unknown_role_rejected(self):
        with pytest.raises(TranslationError):
            ERRelationship(
                "R", roles={"x": "E"}, cardinalities={"y": "1"}
            )

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(TranslationError):
            EREntity(
                "E",
                attributes=[
                    ERAttribute("a", "D"),
                    ERAttribute("a", "D2"),
                ],
            )

    def test_key_over_unknown_attribute_rejected(self):
        with pytest.raises(TranslationError):
            EREntity("E", keys=[{"ghost"}])

    def test_lookup_errors(self):
        diagram = ERDiagram(entities=[EREntity("A")])
        with pytest.raises(TranslationError):
            diagram.entity("B")
        with pytest.raises(TranslationError):
            diagram.relationship("R")


class TestCardinalityKeys:
    def test_many_many_binary(self):
        relationship = ERRelationship(
            "R", roles={"x": "E", "y": "F"}
        )
        assert cardinality_keys(relationship) == KeyFamily.of({"x", "y"})

    def test_one_label_makes_other_role_key(self):
        relationship = ERRelationship(
            "Advisor",
            roles={"faculty": "Faculty", "victim": "GS"},
            cardinalities={"faculty": "1"},
        )
        assert cardinality_keys(relationship) == KeyFamily.of({"victim"})

    def test_one_one_binary(self):
        relationship = ERRelationship(
            "R",
            roles={"x": "E", "y": "F"},
            cardinalities={"x": "1", "y": "1"},
        )
        family = cardinality_keys(relationship)
        assert family.is_superkey({"x"}) and family.is_superkey({"y"})

    def test_nary_defaults_to_all_roles(self):
        relationship = ERRelationship(
            "R", roles={"x": "E", "y": "F", "z": "G"}
        )
        assert cardinality_keys(relationship) == KeyFamily.of(
            {"x", "y", "z"}
        )

    def test_nary_uses_declared_keys(self):
        relationship = ERRelationship(
            "R",
            roles={"x": "E", "y": "F", "z": "G"},
            keys=[{"x", "y"}],
        )
        assert cardinality_keys(relationship) == KeyFamily.of({"x", "y"})


class TestTranslation:
    def test_strata_assigned(self, advisor_diagram):
        stratified = to_schema(advisor_diagram)
        assert stratified.stratum_of("Faculty") == "entity"
        assert stratified.stratum_of("Advisor") == "relationship"

    def test_relationship_isa_translates(self, advisor_diagram):
        stratified = to_schema(advisor_diagram)
        assert stratified.schema.is_spec("Committee", "Advisor")

    def test_keyed_translation(self, advisor_diagram):
        keyed = to_keyed_schema(advisor_diagram)
        assert keyed.keys_of("Advisor") == KeyFamily.of({"victim"})

    def test_round_trip_modulo_keys(self, advisor_diagram):
        # Cardinalities/keys live in the keyed layer (to_keyed_schema);
        # the plain translation round-trips everything else.
        back = from_schema(to_schema(advisor_diagram))
        stripped = ERDiagram(
            entities=advisor_diagram.entities,
            relationships=[
                ERRelationship(
                    rel.name,
                    roles=dict(rel.roles),
                    attributes=rel.attributes,
                    isa=rel.isa,
                )
                for rel in advisor_diagram.relationships
            ],
        )
        assert back == stripped

    def test_keyless_round_trip_exact(self):
        diagram = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("age", "Int")]),
                EREntity("Kennel"),
            ],
            relationships=[
                ERRelationship(
                    "Lives", roles={"occ": "Dog", "home": "Kennel"}
                )
            ],
        )
        assert from_schema(to_schema(diagram)) == diagram

    def test_from_schema_wrong_policy_rejected(self):
        from repro.models.relational import (
            RelationSchema,
            RelationalDatabase,
        )
        from repro.models.relational import to_schema as rel_to_schema

        database = RelationalDatabase(
            [RelationSchema("R", {"a": "D"})]
        )
        with pytest.raises(TranslationError):
            from_schema(rel_to_schema(database))


class TestMergeER:
    def test_attribute_union(self):
        one = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("owner", "Str")])
            ]
        )
        two = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("age", "Int")])
            ]
        )
        merged = merge_er(one, two)
        names = {a.name for a in merged.entity("Dog").attributes}
        assert names == {"owner", "age"}

    def test_merge_with_assertion(self):
        one = ERDiagram(entities=[EREntity("Guide-dog")])
        two = ERDiagram(
            entities=[
                EREntity("Dog", attributes=[ERAttribute("age", "Int")])
            ]
        )
        merged = merge_er(one, two, assertions=[isa("Guide-dog", "Dog")])
        guide = merged.entity("Guide-dog")
        assert guide.isa == ("Dog",)
        # The inherited attribute is not duplicated on the subclass.
        assert guide.attributes == ()

    def test_merged_implicit_entity_round_trips(self):
        one = ERDiagram(
            entities=[EREntity("E1"), EREntity("E2")],
            relationships=[ERRelationship("R", roles={"x": "E1"})],
        )
        two = ERDiagram(
            entities=[EREntity("E2")],
            relationships=[ERRelationship("R", roles={"x": "E2"})],
        )
        merged = merge_er(one, two)
        # R's role now points at the implicit entity below {E1, E2}.
        role_targets = dict(merged.relationship("R").roles)
        assert role_targets["x"] == "<E1&E2>"
        assert merged.entity("<E1&E2>").isa == ("E1", "E2")

    def test_structural_conflict_detected(self):
        as_entity = ERDiagram(
            entities=[EREntity("Thing")],
        )
        as_domain = ERDiagram(
            entities=[
                EREntity(
                    "Holder", attributes=[ERAttribute("thing", "Thing")]
                )
            ]
        )
        with pytest.raises(TranslationError):
            merge_er(as_entity, as_domain)
