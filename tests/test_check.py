"""Tests for the ``repro.check`` static-analysis suite and the lock witness.

The corpus under ``tests/fixtures/check_corpus/`` encodes the contract: each
``bad_*.py`` file carries ``# BAD[rule-id]`` markers on the exact lines the
analyzers must flag, and each ``good_*.py`` file must come back clean.  The
meta-test at the bottom holds the real source tree to the same standard.
"""

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.check import run_checks, run_checks_on_sources
from repro.check.runner import render_report
from repro.check.witness import (
    LockOrderViolation,
    WitnessedLock,
    disable_witness,
    enable_witness,
    reset_witness_stats,
    witness_active,
    witness_stats,
)
from repro.tools.cli import main as cli_main

CORPUS = Path(__file__).parent / "fixtures" / "check_corpus"
SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def expected_markers(path: Path) -> List[Tuple[int, str]]:
    """Extract the (line, rule) pairs declared by ``# BAD[rule]`` markers."""
    out: List[Tuple[int, str]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if "BAD[" in line:
            rule = line.split("BAD[", 1)[1].split("]", 1)[0]
            out.append((lineno, rule))
    return sorted(out)


def findings(target: Path) -> List[Tuple[int, str]]:
    return sorted((d.line, d.rule) for d in run_checks([str(target)]))


class TestCorpus:
    @pytest.mark.parametrize(
        "name",
        [
            "bad_lock_guard.py",
            "bad_lock_order.py",
            "bad_lock_nesting.py",
            "bad_frozen.py",
            "bad_async_blocking.py",
            "bad_publication_order.py",
        ],
    )
    def test_bad_file_matches_markers(self, name):
        path = CORPUS / name
        expected = expected_markers(path)
        assert expected, f"{name} has no BAD markers — corpus file is broken"
        assert findings(path) == expected

    @pytest.mark.parametrize("name", ["good_lock_guard.py", "good_async.py"])
    def test_good_file_is_clean(self, name):
        diags = run_checks([str(CORPUS / name)])
        assert diags == [], render_report(diags)

    def test_badapi_package(self):
        # The facade/__all__ checks can legitimately flag one line twice
        # (an import that is both an accidental export and a private
        # re-export), so the expectations are spelled out here rather
        # than via 1:1 markers.
        diags = run_checks([str(CORPUS / "badapi")])
        got = sorted((Path(d.path).name, d.line, d.rule) for d in diags)
        assert got == [
            ("__init__.py", 3, "api-surface"),
            ("__init__.py", 3, "api-surface"),
            ("__init__.py", 5, "api-surface"),
            ("exceptions.py", 12, "http-status-map"),
        ]

    def test_corpus_exercises_every_analyzer(self):
        rules = {d.rule for d in run_checks([str(CORPUS)])}
        assert {
            "lock-guard",
            "lock-order",
            "lock-nesting",
            "frozen-field",
            "async-blocking",
            "publication-order",
            "api-surface",
            "http-status-map",
        } <= rules


class TestSuppressionsAndErrors:
    def test_inline_suppression_silences_rule(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "x = {}  # guarded-by: _lock\n"
            "def f():\n"
            "    x[1] = 2  # check: ignore[lock-guard]\n"
        )
        assert run_checks_on_sources({"mod.py": src}) == []

    def test_suppression_is_rule_specific(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "x = {}  # guarded-by: _lock\n"
            "def f():\n"
            "    x[1] = 2  # check: ignore[lock-order]\n"
        )
        diags = run_checks_on_sources({"mod.py": src})
        assert [(d.line, d.rule) for d in diags] == [(5, "lock-guard")]

    def test_unknown_rule_in_suppression_is_warned(self):
        src = "x = 1  # check: ignore[no-such-rule]\n"
        diags = run_checks_on_sources({"mod.py": src})
        assert [(d.rule, d.severity) for d in diags] == [
            ("bad-suppression", "warning")
        ]

    def test_syntax_error_becomes_parse_error_diagnostic(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        diags = run_checks([str(broken)])
        assert [d.rule for d in diags] == ["parse-error"]


class TestCliExitCodes:
    def test_clean_target_exits_zero(self, capsys):
        rc = cli_main(["check", str(CORPUS / "good_lock_guard.py")])
        assert rc == 0
        assert "all clean" in capsys.readouterr().out

    def test_bad_target_exits_nonzero(self, capsys):
        rc = cli_main(["check", str(CORPUS / "bad_lock_guard.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[lock-guard]" in out

    def test_strict_clean_tree_exits_zero(self, capsys):
        rc = cli_main(["check", "--strict", str(CORPUS / "good_async.py")])
        assert rc == 0
        capsys.readouterr()

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        warn_only = tmp_path / "warn.py"
        warn_only.write_text("x = 1  # check: ignore[no-such-rule]\n")
        assert cli_main(["check", str(warn_only)]) == 0
        assert cli_main(["check", "--strict", str(warn_only)]) == 1
        capsys.readouterr()


class TestMetaCleanliness:
    def test_real_source_tree_is_clean(self):
        diags = run_checks([str(SRC_REPRO)])
        assert diags == [], render_report(diags)


@pytest.fixture()
def witness():
    enable_witness()
    reset_witness_stats()
    try:
        yield
    finally:
        disable_witness()


class TestWitnessedLock:
    def test_ascending_sid_order_is_allowed(self, witness):
        a, b = WitnessedLock(sid=1), WitnessedLock(sid=2)
        a.acquire()
        b.acquire()
        b.release()
        a.release()
        assert witness_stats()["checked"] >= 2

    def test_descending_sid_order_is_caught(self, witness):
        a, b = WitnessedLock(sid=2), WitnessedLock(sid=1)
        a.acquire()
        try:
            with pytest.raises(LockOrderViolation):
                b.acquire()
        finally:
            a.release()

    def test_acquire_while_planner_held_is_caught(self, witness):
        planner = WitnessedLock(planner=True)
        shard = WitnessedLock(sid=0)
        planner.acquire()
        try:
            with pytest.raises(LockOrderViolation):
                shard.acquire()
        finally:
            planner.release()

    def test_fresh_unpublished_lock_is_exempt(self, witness):
        planner = WitnessedLock(planner=True)
        fresh = WitnessedLock(sid=99)
        planner.acquire()
        try:
            assert fresh.acquire(fresh=True)
        finally:
            fresh.release()
            planner.release()

    def test_reentrant_acquire_is_caught(self, witness):
        lock = WitnessedLock(sid=3)
        lock.acquire()
        try:
            with pytest.raises(LockOrderViolation):
                lock.acquire()
        finally:
            lock.release()

    def test_factories_gate_on_witness_flag(self):
        # A WitnessedLock always enforces the discipline; the global flag
        # only controls whether the service *creates* witnessed locks.
        import threading

        from repro.service.service import _new_shard_lock, _new_topology_lock

        assert not witness_active()
        assert isinstance(_new_shard_lock(0), type(threading.Lock()))
        assert isinstance(_new_topology_lock(), type(threading.Lock()))
        enable_witness()
        try:
            assert isinstance(_new_shard_lock(0), WitnessedLock)
            assert isinstance(_new_topology_lock(), WitnessedLock)
        finally:
            disable_witness()
