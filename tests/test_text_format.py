"""Unit + property tests for the hand-writable text format."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.names import BaseName, GenName, ImplicitName
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.exceptions import SerializationError
from repro.figures import figure2_schema, figure9_keyed_schema
from repro.io.text_format import (
    format_annotated,
    format_keyed,
    format_schema,
    parse,
)

from tests.conftest import annotated_schemas, schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestParse:
    def test_basic_document(self):
        schema = parse(
            """
            # dog registry
            class Kennel
            Police-dog ==> Dog
            Dog --owner--> Person
            """
        )
        assert isinstance(schema, Schema)
        assert schema.has_class("Kennel")
        assert schema.is_spec("Police-dog", "Dog")
        assert schema.has_arrow("Police-dog", "owner", "Person")  # closure

    def test_optional_marks_give_annotated(self):
        schema = parse("Dog --age?--> Int\nDog --name--> Str\n")
        assert isinstance(schema, AnnotatedSchema)
        assert (
            schema.participation_of("Dog", "age", "Int")
            == Participation.OPTIONAL
        )
        assert (
            schema.participation_of("Dog", "name", "Str")
            == Participation.REQUIRED
        )

    def test_key_lines_give_keyed(self):
        document = """
        T --loc--> Machine
        T --at--> Time
        T --card--> Card
        key T: {loc, at}, {card, at}
        """
        keyed = parse(document)
        assert isinstance(keyed, KeyedSchema)
        assert keyed.keys_of("T") == KeyFamily.of(
            {"loc", "at"}, {"card", "at"}
        )

    def test_quoted_names(self):
        schema = parse('"Police dog" ==> Dog\n')
        assert schema.has_class(BaseName("Police dog"))

    def test_composite_names(self):
        schema = parse("<B1&B2> ==> B1\n[C|D] ==> Top\n")
        assert ImplicitName(["B1", "B2"]) in schema.classes
        assert GenName(["C", "D"]) in schema.classes

    def test_comments_and_blanks_ignored(self):
        schema = parse("\n# nothing\n   \nclass A  # trailing\n")
        assert schema.classes == {BaseName("A")}

    def test_mixing_keys_and_marks_rejected(self):
        with pytest.raises(SerializationError):
            parse("Dog --age?--> Int\nkey Dog: {age}\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(SerializationError) as excinfo:
            parse("class A\nwhat is this\n")
        assert "line 2" in str(excinfo.value)

    def test_empty_key_set_rejected(self):
        with pytest.raises(SerializationError):
            parse("T --a--> D\nkey T: {}\n")

    def test_bad_name_rejected(self):
        with pytest.raises(SerializationError):
            parse("class a{b\n")

    def test_empty_label_rejected(self):
        with pytest.raises(SerializationError):
            parse("A -- --> B\n")


class TestRoundTrips:
    def test_figure2(self):
        schema = figure2_schema()
        assert parse(format_schema(schema)) == schema

    def test_figure9_keyed(self):
        keyed = figure9_keyed_schema()
        assert parse(format_keyed(keyed)) == keyed

    def test_annotated_example(self):
        schema = AnnotatedSchema.build(
            arrows=[
                ("Dog", "name", "Str", Participation.REQUIRED),
                ("Dog", "age", "Int", Participation.OPTIONAL),
            ],
            spec=[("Puppy", "Dog")],
        )
        assert parse(format_annotated(schema)) == schema

    @given(schemas())
    @RELAXED
    def test_schema_round_trip(self, schema):
        assert parse(format_schema(schema)) == schema

    @given(annotated_schemas())
    @RELAXED
    def test_annotated_round_trip(self, schema):
        parsed = parse(format_annotated(schema))
        if isinstance(parsed, Schema):
            # No optional arrows: the document parses as plain; compare
            # through the canonical embedding.
            parsed = AnnotatedSchema.from_schema(parsed)
        assert parsed == schema

    def test_composite_name_round_trip(self):
        from repro.core.merge import upper_merge
        from repro.figures import figure3_schemas

        merged = upper_merge(*figure3_schemas())
        assert parse(format_schema(merged)) == merged
