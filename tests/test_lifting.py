"""Unit + property tests for instance lifting into properized schemas."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.implicit import properize
from repro.core.lower import AnnotatedSchema, lower_merge, lower_properize
from repro.core.merge import upper_merge, weak_merge
from repro.core.names import GenName, ImplicitName
from repro.figures import figure3_schemas
from repro.generators.random_schemas import (
    random_instance,
    random_schema_family,
)
from repro.instances.instance import Instance
from repro.instances.lifting import (
    lift_to_lower_properized,
    lift_to_properized,
)
from repro.instances.satisfaction import satisfies, satisfies_annotated

MERGE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestUpperLift:
    def test_figure3_lift(self):
        weak = weak_merge(*figure3_schemas())
        proper = properize(weak)
        instance = Instance.build(
            extents={
                "A1": {"x", "c"},
                "A2": {"y", "c"},
                "C": {"c"},
                "B1": {"v"},
                "B2": {"v", "w"},
            },
            values={("x", "a"): "v", ("y", "a"): "v", ("c", "a"): "v"},
        )
        assert satisfies(instance, weak)
        lifted = lift_to_properized(instance, proper)
        imp = ImplicitName(["B1", "B2"])
        assert lifted.extent(imp) == {"v"}  # intersection, not w
        assert satisfies(lifted, proper)

    def test_existing_extents_kept(self):
        weak = weak_merge(*figure3_schemas())
        proper = properize(weak)
        imp = ImplicitName(["B1", "B2"])
        instance = Instance.build(
            extents={"B1": {"v"}, "B2": {"v"}, imp: set()},
        )
        lifted = lift_to_properized(instance, proper)
        assert lifted.extent(imp) == frozenset()

    @given(st.integers(min_value=0, max_value=30))
    @MERGE_SETTINGS
    def test_lift_theorem_randomized(self, seed):
        family = random_schema_family(
            n_schemas=3, pool_size=10, n_classes=5, n_labels=3, seed=seed
        )
        weak = weak_merge(*family)
        proper = upper_merge(*family)
        instance = random_instance(weak, seed=seed)
        assert satisfies(instance, weak)
        lifted = lift_to_properized(instance, proper)
        assert satisfies(lifted, proper)


class TestLowerLift:
    def test_generalization_extent_is_union(self):
        one = AnnotatedSchema.build(arrows=[("F", "a", "C")])
        two = AnnotatedSchema.build(arrows=[("F", "a", "D")])
        proper = lower_properize(lower_merge(one, two))
        gen = GenName(["C", "D"])
        instance = Instance.build(
            extents={"C": {"c1"}, "D": {"d1"}, "F": set()},
        )
        lifted = lift_to_lower_properized(instance, proper)
        assert lifted.extent(gen) == {"c1", "d1"}

    def test_federated_lift_satisfies_properized(self):
        one = AnnotatedSchema.build(arrows=[("F", "a", "C")])
        two = AnnotatedSchema.build(arrows=[("F", "a", "D")])
        merged = lower_merge(one, two)
        proper = lower_properize(merged)
        # An instance from source one: F-objects take values in C.
        instance = Instance.build(
            extents={"F": {"f1"}, "C": {"c1"}, "D": set()},
            values={("f1", "a"): "c1"},
        )
        assert satisfies_annotated(instance, one.with_classes(merged.classes))
        lifted = lift_to_lower_properized(instance, proper)
        assert satisfies_annotated(lifted, proper)
