"""Unit tests for the information-ordering framework (§6's criterion)."""

import pytest

from repro.core.framework import (
    ANNOTATED_ORDERING,
    KEYED_ORDERING,
    WEAK_ORDERING,
    AnnotatedSchemaOrdering,
    InformationOrdering,
    KeyedSchemaOrdering,
    WeakSchemaOrdering,
    annotated_join,
    annotated_join_all,
    annotated_meet,
    keyed_join,
    keyed_leq,
    keyed_meet,
    merge_law_violations,
    ordering_violations,
    validate_merge_concept,
)
from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema, annotated_leq, lower_merge
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError


@pytest.fixture
def pets() -> Schema:
    return Schema.build(arrows=[("Dog", "owner", "Person")])


@pytest.fixture
def licences() -> Schema:
    return Schema.build(
        arrows=[("Dog", "licence", "Licence")],
        spec=[("Police-dog", "Dog")],
    )


class TestWeakOrdering:
    def test_join_matches_module_join(self, pets, licences):
        from repro.core.ordering import join

        assert WEAK_ORDERING.join(pets, licences) == join(pets, licences)

    def test_meet_matches_module_meet(self, pets, licences):
        from repro.core.ordering import meet

        assert WEAK_ORDERING.meet(pets, licences) == meet(pets, licences)

    def test_bottom_is_empty_schema(self):
        assert WEAK_ORDERING.bottom() == Schema.empty()

    def test_join_all_empty_gives_bottom(self):
        assert WEAK_ORDERING.join_all([]) == Schema.empty()

    def test_join_all_folds(self, pets, licences):
        third = Schema.build(spec=[("Guide-dog", "Dog")])
        folded = WEAK_ORDERING.join_all([pets, licences, third])
        from repro.core.ordering import join_all

        assert folded == join_all([pets, licences, third])

    def test_upper_and_lower_bound_helpers(self, pets, licences):
        joined = WEAK_ORDERING.join(pets, licences)
        assert WEAK_ORDERING.is_upper_bound(joined, [pets, licences])
        assert WEAK_ORDERING.is_lower_bound(Schema.empty(), [pets, licences])

    def test_laws_hold_on_samples(self, pets, licences):
        samples = [pets, licences, Schema.empty(), WEAK_ORDERING.join(pets, licences)]
        assert validate_merge_concept(WEAK_ORDERING, samples) == []


class TestAnnotatedJoin:
    def test_optional_below_required(self):
        optional = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "0/1")]
        )
        required = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        joined = annotated_join(optional, required)
        assert (
            joined.participation_of("Dog", "age", "Int")
            == Participation.REQUIRED
        )

    def test_optional_vs_absent_resolves_to_absent(self):
        # Absence over known classes is constraint 0 — *more* information
        # than optional, so the LUB drops the arrow.
        optional = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "0/1")]
        )
        absent = AnnotatedSchema.build(classes=["Dog", "Int"])
        joined = annotated_join(optional, absent)
        assert (
            joined.participation_of("Dog", "age", "Int")
            == Participation.ABSENT
        )
        assert annotated_leq(optional, joined)
        assert annotated_leq(absent, joined)

    def test_forbidden_vs_required_has_no_join(self):
        required = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        forbidding = AnnotatedSchema.build(classes=["Dog", "Int"])
        with pytest.raises(IncompatibleSchemasError, match="participation"):
            annotated_join(forbidding, required)

    def test_unknown_class_is_no_opinion(self):
        # A schema that has never heard of Dog does not forbid its arrows.
        required = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        oblivious = AnnotatedSchema.build(classes=["Cat"])
        joined = annotated_join(required, oblivious)
        assert (
            joined.participation_of("Dog", "age", "Int")
            == Participation.REQUIRED
        )
        from repro.core.names import name

        assert name("Cat") in joined.classes

    def test_specialization_cycle_raises(self):
        one = AnnotatedSchema.build(spec=[("A", "B")])
        two = AnnotatedSchema.build(spec=[("B", "A")])
        with pytest.raises(IncompatibleSchemasError, match="cycle"):
            annotated_join(one, two)

    def test_closure_conflict_detected(self):
        # One schema: required arrow on the superclass.  Other: the
        # subclass exists with the target known and the arrow absent.
        # The join's closure would force the required arrow down onto
        # the subclass, contradicting the second schema's constraint 0.
        upper = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "1")],
            spec=[("Puppy", "Dog")],
        )
        lower = AnnotatedSchema.build(classes=["Puppy", "Int"])
        with pytest.raises(IncompatibleSchemasError):
            annotated_join(upper, lower)

    def test_join_all_empty_is_empty_schema(self):
        assert annotated_join_all([]) == AnnotatedSchema.empty()

    def test_binary_folding_recreates_the_section3_problem(self):
        """Why the middle merge is n-ary: a binary join unions class
        scopes, asserting constraint 0 on arrows neither input co-knew.

        ``a`` knows Kennel (but not Dog), ``b`` knows Dog (but not
        Kennel), and ``c`` requires ``Dog --home--> Kennel``.  Merging
        the collection at once succeeds — neither a nor b ever had an
        opinion on that arrow — but folding ``(a ⊔ b) ⊔ c`` fails,
        because the intermediate result knows both classes and lacks
        the arrow, i.e. *forbids* it.
        """
        a = AnnotatedSchema.build(classes=["Kennel"])
        b = AnnotatedSchema.build(classes=["Dog"])
        c = AnnotatedSchema.build(arrows=[("Dog", "home", "Kennel", "1")])

        collection = annotated_join_all([a, b, c])
        assert (
            collection.participation_of("Dog", "home", "Kennel")
            == Participation.REQUIRED
        )
        fold_step = annotated_join(a, b)
        with pytest.raises(IncompatibleSchemasError):
            annotated_join(fold_step, c)
        # The ordering's n-ary entry point uses the collection merge,
        # so it does not trip over the fold problem.
        assert ANNOTATED_ORDERING.join_all([a, b, c]) == collection

    def test_join_is_between_lower_and_upper_merge(self):
        # §6's "in-between" reading made concrete: the annotated join
        # keeps the union of classes (like the upper merge) yet respects
        # participation information (like the lower merge).
        one = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", "1"), ("Dog", "age", "Int", "1")]
        )
        two = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", "1"), ("Cat", "name", "Str", "1")]
        )
        joined = annotated_join(one, two)
        lowered = lower_merge(one, two)
        assert annotated_leq(lowered, joined)
        assert joined.classes == one.classes | two.classes
        assert (
            joined.participation_of("Dog", "age", "Int")
            == Participation.REQUIRED
        )


class TestAnnotatedMeet:
    def test_meet_keeps_shared_classes_only(self):
        one = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        two = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "1")], classes=["Cat"]
        )
        met = annotated_meet(one, two)
        assert met.classes == one.classes

    def test_meet_weakens_disagreement_to_optional(self):
        required = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "1")])
        absent = AnnotatedSchema.build(classes=["Dog", "Int"])
        met = annotated_meet(required, absent)
        assert (
            met.participation_of("Dog", "age", "Int")
            == Participation.OPTIONAL
        )

    def test_meet_agrees_with_lower_merge_on_shared_class_set(self):
        one = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", "1"), ("Dog", "age", "Int", "0/1")]
        )
        two = AnnotatedSchema.build(
            arrows=[("Dog", "name", "Str", "0/1")], classes=["Int"]
        )
        assert annotated_meet(one, two) == lower_merge(one, two)

    def test_meet_is_a_lower_bound(self):
        one = AnnotatedSchema.build(
            arrows=[("Dog", "age", "Int", "1")], spec=[("Puppy", "Dog")]
        )
        two = AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "0/1")])
        met = annotated_meet(one, two)
        assert annotated_leq(met, one)
        assert annotated_leq(met, two)


class TestKeyedOrdering:
    @pytest.fixture
    def keyed_person(self) -> KeyedSchema:
        return KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "SSN")]),
            {"Person": KeyFamily.of({"ssn"})},
        )

    @pytest.fixture
    def plain_person(self) -> KeyedSchema:
        return KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "SSN"), ("Person", "name", "Str")]
            )
        )

    def test_leq_requires_schema_inclusion(self, keyed_person, plain_person):
        assert not keyed_leq(plain_person, keyed_person)

    def test_leq_requires_key_containment(self, keyed_person, plain_person):
        # plain_person's schema is above keyed_person's, but its (empty)
        # family at Person does not contain {ssn}.
        assert not keyed_leq(keyed_person, plain_person)

    def test_join_imposes_key_on_keyless_input(
        self, keyed_person, plain_person
    ):
        joined = keyed_join(keyed_person, plain_person)
        assert joined.keys_of("Person") == KeyFamily.of({"ssn"})
        assert keyed_leq(keyed_person, joined)
        assert keyed_leq(plain_person, joined)

    def test_join_propagates_keys_down_specialization(self):
        parent = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "SSN")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        child = KeyedSchema(
            Schema.build(
                classes=["Person"], spec=[("Employee", "Person")]
            )
        )
        joined = keyed_join(parent, child)
        assert joined.keys_of("Employee").is_superkey({"ssn"})

    def test_meet_intersects_families(self):
        schema = Schema.build(
            arrows=[("Person", "ssn", "SSN"), ("Person", "name", "Str")]
        )
        one = KeyedSchema(schema, {"Person": KeyFamily.of({"ssn"})})
        two = KeyedSchema(
            schema, {"Person": KeyFamily.of({"ssn"}, {"name"})}
        )
        met = keyed_meet(one, two)
        assert met.keys_of("Person") == KeyFamily.of({"ssn"})

    def test_meet_drops_keys_over_vanished_arrows(self):
        one = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "SSN")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        two = KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "Code")],
                classes=["SSN"],
            ),
            {"Person": KeyFamily.of({"ssn"})},
        )
        met = keyed_meet(one, two)
        # The ssn arrows disagree on targets, so no shared ssn arrow
        # survives the schema meet, and the key must go with it.
        assert met.keys_of("Person").is_empty()

    def test_bottom(self):
        bottom = KEYED_ORDERING.bottom()
        assert bottom.schema == Schema.empty()

    def test_laws_hold_on_samples(self, keyed_person, plain_person):
        samples = [
            keyed_person,
            plain_person,
            KEYED_ORDERING.bottom(),
            keyed_join(keyed_person, plain_person),
        ]
        assert validate_merge_concept(KEYED_ORDERING, samples) == []


class TestLawCheckers:
    def test_detect_broken_reflexivity(self):
        class Broken(WeakSchemaOrdering):
            name = "broken"

            def leq(self, left, right):
                return False

        problems = ordering_violations(Broken(), [Schema.empty()])
        assert any("reflexive" in p for p in problems)

    def test_detect_non_least_join(self, pets, licences):
        class Greedy(WeakSchemaOrdering):
            """A 'merge' that pads the result — an upper bound, not a LUB."""

            name = "greedy"

            def join(self, left, right):
                from repro.core.ordering import join

                return join(left, right).with_class("Extra")

        padded = Greedy()
        honest = WEAK_ORDERING.join(pets, licences)
        problems = merge_law_violations(padded, [pets, licences, honest])
        assert any("not least" in p for p in problems)

    def test_detect_order_dependent_merge(self, pets, licences):
        class OrderSensitive(WeakSchemaOrdering):
            """A merge that remembers which operand came first."""

            name = "order-sensitive"

            def join(self, left, right):
                from repro.core.ordering import join

                joined = join(left, right)
                marker = sorted(str(c) for c in left.classes)
                if marker:
                    joined = joined.with_class("Saw-" + marker[0])
                return joined

        problems = merge_law_violations(
            OrderSensitive(), [pets, licences]
        )
        assert problems  # commutativity (and more) must fail

    def test_abstract_base_requires_leq_and_join(self):
        with pytest.raises(TypeError):
            InformationOrdering()  # type: ignore[abstract]

    def test_default_meet_is_unsupported(self):
        class JoinOnly(InformationOrdering):
            name = "join-only"

            def leq(self, left, right):
                return left == right

            def join(self, left, right):
                return left

        with pytest.raises(NotImplementedError):
            JoinOnly().meet(1, 2)

    def test_join_all_without_bottom_rejects_empty(self):
        class NoBottom(InformationOrdering):
            name = "no-bottom"

            def leq(self, left, right):
                return left == right

            def join(self, left, right):
                return left

        with pytest.raises(ValueError):
            NoBottom().join_all([])

    def test_singletons_are_the_documented_types(self):
        assert isinstance(WEAK_ORDERING, WeakSchemaOrdering)
        assert isinstance(ANNOTATED_ORDERING, AnnotatedSchemaOrdering)
        assert isinstance(KEYED_ORDERING, KeyedSchemaOrdering)
