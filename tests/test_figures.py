"""Integration tests: every paper figure reconstructs and behaves as
the prose claims.  These are the FIG experiments of DESIGN.md run as
assertions (the benchmark harness re-runs them with timing)."""


from repro.core.implicit import implicit_classes_of, properize
from repro.core.merge import upper_merge, weak_merge
from repro.core.names import BaseName, ImplicitName
from repro.core.ordering import is_sub
from repro.core.proper import canonical_class, is_proper
from repro.figures import (
    figure1_er_diagram,
    figure2_schema,
    figure3_expected_weak_merge,
    figure3_schemas,
    figure4_schemas,
    figure6_schemas,
    figure7_candidate_g3_description,
    figure7_candidate_g4,
    figure8_expected_weak_merge,
    figure9_advisor_schema,
    figure9_committee_schema,
    figure9_keyed_schema,
    figure10_keyed_schema,
)
from repro.models.er import from_schema, to_schema


class TestFigures1And2:
    def test_translation_matches_figure2(self):
        assert to_schema(figure1_er_diagram()).schema == figure2_schema()

    def test_round_trip(self):
        diagram = figure1_er_diagram()
        assert from_schema(to_schema(diagram)) == diagram

    def test_inherited_arrows_present(self):
        # The figure draws kind/age on all three dog classes.
        schema = figure2_schema()
        for dog in ("Dog", "Police-dog", "Guide-dog"):
            assert schema.has_arrow(dog, "kind", "Breed")
            assert schema.has_arrow(dog, "age", "Int")

    def test_figure2_is_proper(self):
        assert is_proper(figure2_schema())


class TestFigure3:
    def test_weak_merge_matches_hand_expansion(self):
        assert weak_merge(*figure3_schemas()) == figure3_expected_weak_merge()

    def test_c_needs_common_specialization(self):
        merged = upper_merge(*figure3_schemas())
        imp = ImplicitName(["B1", "B2"])
        assert canonical_class(merged, "C", "a") == imp
        assert merged.is_spec(imp, "B1") and merged.is_spec(imp, "B2")


class TestFigures4And5:
    def test_prose_scenario_merge_g1_g2(self):
        g1, g2, _g3 = figure4_schemas()
        merged = upper_merge(g1, g2)
        assert implicit_classes_of(merged) == {ImplicitName(["D", "E"])}

    def test_prose_scenario_merge_g1_g3(self):
        g1, _g2, g3 = figure4_schemas()
        merged = upper_merge(g1, g3)
        assert implicit_classes_of(merged) == {ImplicitName(["E", "F"])}

    def test_three_way_wants_single_implicit(self):
        merged = upper_merge(*figure4_schemas())
        assert implicit_classes_of(merged) == {
            ImplicitName(["D", "E", "F"])
        }

    def test_our_merge_is_order_independent(self):
        g1, g2, g3 = figure4_schemas()
        results = {
            upper_merge(upper_merge(g1, g2), g3),
            upper_merge(upper_merge(g1, g3), g2),
            upper_merge(upper_merge(g2, g3), g1),
            upper_merge(g1, g2, g3),
        }
        assert len(results) == 1


class TestFigures6To8:
    def test_weak_merge_matches_figure8(self):
        assert weak_merge(*figure6_schemas()) == figure8_expected_weak_merge()

    def test_figure8_has_four_a_arrows_from_f(self):
        merged = weak_merge(*figure6_schemas())
        assert merged.reach("F", "a") == {
            BaseName("A"),
            BaseName("B"),
            BaseName("C"),
            BaseName("D"),
        }

    def test_g3_facts(self):
        facts = figure7_candidate_g3_description()
        g3 = properize(weak_merge(*figure6_schemas()))
        base = {str(c) for c in g3.classes if isinstance(c, BaseName)}
        assert base == facts["base_classes"]
        implicits = implicit_classes_of(g3)
        assert len(implicits) == facts["implicit_count"]
        (imp,) = implicits
        assert {str(m) for m in imp.members} == facts["implicit_below"]

    def test_g4_is_a_stronger_upper_bound(self):
        g1, g2 = figure6_schemas()
        g4 = figure7_candidate_g4()
        weak = weak_merge(g1, g2)
        assert is_proper(g4)
        assert is_sub(weak, g4)
        # G4 asserts extra information the inputs never stated:
        assert g4.has_arrow("F", "a", "E")
        assert not weak.has_arrow("F", "a", "E")

    def test_g4_has_fewer_classes_than_g3(self):
        g3 = properize(weak_merge(*figure6_schemas()))
        g4 = figure7_candidate_g4()
        assert len(g4.classes) < len(g3.classes)


class TestFigure9:
    def test_key_constraint_holds(self):
        keyed = figure9_keyed_schema()
        assert keyed.keys_of("Advisor").contains_family(
            keyed.keys_of("Committee")
        )

    def test_cardinality_reading(self):
        keyed = figure9_keyed_schema()
        # Advisor is one-to-many: victim determines the pair.
        assert keyed.keys_of("Advisor").is_superkey({"victim"})
        # Committee is many-to-many: only the full role set is a key.
        assert not keyed.keys_of("Committee").is_superkey({"victim"})
        assert keyed.keys_of("Committee").is_superkey(
            {"faculty", "victim"}
        )

    def test_component_views_merge_into_figure9(self):
        from repro.core.assertions import isa
        from repro.core.keys import merge_keyed

        merged = merge_keyed(
            figure9_advisor_schema(),
            figure9_committee_schema(),
            assertions=[isa("Advisor", "Committee")],
        )
        expected = figure9_keyed_schema()
        assert merged.schema == expected.schema
        assert merged.keys_of("Advisor") == expected.keys_of("Advisor")
        assert merged.keys_of("Committee") == expected.keys_of("Committee")


class TestFigure10:
    def test_two_composite_keys(self):
        keyed = figure10_keyed_schema()
        family = keyed.keys_of("Transaction")
        assert family.is_superkey({"loc", "at"})
        assert family.is_superkey({"card", "at"})
        assert not family.is_superkey({"at"})
        assert not family.is_superkey({"loc", "card"})

    def test_no_single_edge_labelling_equivalent(self):
        # The paper's point: neither loc nor card alone is a key, yet
        # the relationship is not plain many-many either.
        family = figure10_keyed_schema().keys_of("Transaction")
        roles = {"loc", "at", "card", "amount"}
        single_role_keys = [r for r in roles if family.is_superkey({r})]
        assert not single_role_keys
        assert not family.is_superkey(roles - {"at"})
