"""Unit tests for the analysis layer (stats and growth curves)."""

import pytest

from repro.analysis.growth import (
    adversarial_growth,
    diamond_growth,
    growth_curve,
    implicit_count,
    random_growth,
)
from repro.analysis.stats import MergeStats, measure_family, measure_merge
from repro.core.merge import merge_report
from repro.figures import figure3_schemas, figure4_schemas
from repro.generators.pathological import diamond_chain_schemas


class TestMergeStats:
    def test_figure3_numbers(self):
        stats = measure_merge(merge_report(*figure3_schemas()))
        assert stats.input_count == 2
        assert stats.input_classes_distinct == 5
        assert stats.weak_classes == 5
        assert stats.merged_classes == 6
        assert stats.implicit_classes == 1

    def test_implicit_ratio(self):
        stats = measure_merge(merge_report(*figure3_schemas()))
        assert stats.implicit_ratio == pytest.approx(1 / 5)

    def test_zero_division_guard(self):
        stats = MergeStats(0, 0, 0, 0, 0, 0, 0, 0, 0)
        assert stats.implicit_ratio == 0.0

    def test_as_row_keys(self):
        row = measure_family(list(figure4_schemas())).as_row()
        assert {"inputs", "merged_classes", "implicit"} <= set(row)


class TestGrowth:
    def test_implicit_count(self):
        assert implicit_count(list(figure3_schemas())) == 1

    def test_growth_curve_shape(self):
        rows = growth_curve(
            [1, 3], lambda k: list(diamond_chain_schemas(k))
        )
        assert [(k, imp) for k, _cls, imp in rows] == [(1, 1), (3, 3)]

    def test_diamond_growth_is_linear(self):
        rows = diamond_growth((2, 4, 8))
        assert [imp for _k, _cls, imp in rows] == [2, 4, 8]

    def test_adversarial_growth_is_exponential(self):
        rows = adversarial_growth((3, 4, 5))
        assert [imp for _k, _cls, imp in rows] == [7, 15, 31]

    def test_random_growth_stays_modest(self):
        rows = random_growth(sizes=(10, 20), seed=7)
        for _size, classes, implicit in rows:
            # The paper's conjecture: implicit classes are few in
            # practice — well below the class count on random views.
            assert implicit < classes
