"""Unit tests for the functional substrate model (§2)."""

import pytest

from repro.core.names import BaseName, ImplicitName
from repro.core.proper import is_proper
from repro.exceptions import NotProperError, TranslationError
from repro.models.functional import (
    FunctionalSchema,
    from_schema,
    merge_functional,
    to_schema,
)


class TestConstruction:
    def test_functions_recorded(self):
        functional = FunctionalSchema(
            functions={("Dog", "owner"): "Person"}
        )
        assert functional.functions_of("Dog") == {
            "owner": BaseName("Person")
        }

    def test_inheritance_fills_d2(self):
        functional = FunctionalSchema(
            functions={("Dog", "owner"): "Person"},
            isa=[("Puppy", "Dog")],
        )
        assert functional.functions_of("Puppy") == {
            "owner": BaseName("Person")
        }

    def test_multilevel_inheritance(self):
        functional = FunctionalSchema(
            functions={("Animal", "home"): "Place"},
            isa=[("Dog", "Animal"), ("Puppy", "Dog")],
        )
        assert functional.functions_of("Puppy") == {
            "home": BaseName("Place")
        }

    def test_refinement_not_overwritten(self):
        functional = FunctionalSchema(
            functions={
                ("Dog", "owner"): "Person",
                ("Police-dog", "owner"): "Officer",
            },
            isa=[("Police-dog", "Dog"), ("Officer", "Person")],
        )
        assert functional.functions_of("Police-dog") == {
            "owner": BaseName("Officer")
        }

    def test_isa_cycle_rejected(self):
        with pytest.raises(TranslationError):
            FunctionalSchema(isa=[("A", "B"), ("B", "A")])

    def test_no_inherit_mode(self):
        functional = FunctionalSchema(
            functions={("Dog", "owner"): "Person"},
            isa=[("Puppy", "Dog")],
            inherit=False,
        )
        assert functional.functions_of("Puppy") == {}


class TestTranslation:
    def test_to_schema_proper(self):
        functional = FunctionalSchema(
            functions={("Dog", "owner"): "Person"},
            isa=[("Puppy", "Dog")],
        )
        schema = to_schema(functional)
        assert is_proper(schema)
        assert schema.has_arrow("Puppy", "owner", "Person")

    def test_round_trip(self):
        functional = FunctionalSchema(
            functions={
                ("Dog", "owner"): "Person",
                ("Police-dog", "owner"): "Officer",
            },
            isa=[("Police-dog", "Dog"), ("Officer", "Person")],
        )
        assert from_schema(to_schema(functional)) == functional

    def test_from_weak_schema_rejected(self):
        from repro.core.schema import Schema

        weak = Schema.build(arrows=[("F", "a", "C"), ("F", "a", "D")])
        with pytest.raises(NotProperError):
            from_schema(weak)

    def test_d2_incomplete_without_inherit_rejected(self):
        functional = FunctionalSchema(
            functions={("Dog", "owner"): "Person"},
            isa=[("Puppy", "Dog")],
            inherit=False,
        )
        from repro.exceptions import SchemaValidationError

        with pytest.raises(SchemaValidationError):
            to_schema(functional)


class TestMerge:
    def test_union_of_functions(self):
        one = FunctionalSchema(functions={("Dog", "owner"): "Person"})
        two = FunctionalSchema(functions={("Dog", "breed"): "Breed"})
        merged = merge_functional(one, two)
        assert merged.functions_of("Dog") == {
            "owner": BaseName("Person"),
            "breed": BaseName("Breed"),
        }

    def test_conflict_resolved_by_implicit_class(self):
        one = FunctionalSchema(functions={("F", "a"): "C"})
        two = FunctionalSchema(functions={("F", "a"): "D"})
        merged = merge_functional(one, two)
        assert merged.functions_of("F") == {
            "a": ImplicitName(["C", "D"])
        }

    def test_merge_is_order_independent(self):
        one = FunctionalSchema(functions={("F", "a"): "C"})
        two = FunctionalSchema(functions={("F", "a"): "D"})
        three = FunctionalSchema(
            functions={("G", "b"): "C"}, isa=[("G", "F")]
        )
        assert merge_functional(one, two, three) == merge_functional(
            three, two, one
        )
