"""Property tests for the merge engine: warm paths ≡ cold paths.

The engine (repro.perf) must be *observationally invisible*: interning,
memoization and incremental closure may only change speed, never
results.  Every test here drives a randomized workload twice — through
the engine and through the preserved pre-engine reference
implementations (:mod:`repro.perf.reference`) — and asserts equality,
including across cache clears (which simulate eviction at the worst
possible moment).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lower import annotated_leq, lower_merge
from repro.core.names import BaseName, GenName, ImplicitName
from repro.core.ordering import compatible, is_sub, join_all
from repro.core.schema import Schema
from repro.generators.random_schemas import (
    random_annotated_schema,
    random_schema_family,
    random_weak_schema,
)
from repro.perf import MemoCache, clear_caches, engine_stats
from repro.perf.closure import ClosureBuilder
from repro.perf.reference import (
    reference_annotated_leq,
    reference_compatible,
    reference_is_sub,
    reference_join_all,
    reference_lower_merge,
)
from tests.conftest import annotated_schemas, schema_pairs, schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestInterning:
    def test_base_names_pointer_equal(self):
        assert BaseName("Dog") is BaseName("Dog")

    def test_composite_names_pointer_equal(self):
        assert ImplicitName(["A", "B"]) is ImplicitName([BaseName("B"), "A"])
        assert GenName(["A", "B"]) is GenName(["B", "A"])
        assert ImplicitName(["A", "B"]) != GenName(["A", "B"])

    def test_schemas_pointer_equal(self):
        def build():
            return Schema.build(
                arrows=[("Dog", "owner", "Person")], spec=[("Puppy", "Dog")]
            )

        assert build() is build()

    def test_interning_survives_clear(self):
        before = Schema.build(arrows=[("A", "f", "B")])
        clear_caches()
        after = Schema.build(arrows=[("A", "f", "B")])
        # Pointer-equality may be lost across a clear (that is the
        # documented eviction semantics) but equality never is.
        assert before == after and hash(before) == hash(after)

    @RELAXED
    @given(schemas())
    def test_random_schema_rebuild_interns(self, schema):
        rebuilt = Schema.build(
            classes=schema.classes, arrows=schema.arrows, spec=schema.spec
        )
        assert rebuilt is schema


class TestMemoizedPredicates:
    @RELAXED
    @given(schema_pairs())
    def test_is_sub_matches_reference(self, pair):
        left, right = pair
        for a, b in [(left, right), (right, left), (left, left)]:
            assert is_sub(a, b) == reference_is_sub(a, b)
            # Warm hit must agree with the cold value too.
            assert is_sub(a, b) == reference_is_sub(a, b)

    @RELAXED
    @given(schema_pairs())
    def test_is_sub_after_cache_clear(self, pair):
        left, right = pair
        warm = is_sub(left, right)
        clear_caches()
        assert is_sub(left, right) == warm

    @RELAXED
    @given(schema_pairs())
    def test_compatible_matches_reference(self, pair):
        left, right = pair
        assert compatible(left, right) == reference_compatible(left, right)
        assert compatible(left, right) == reference_compatible(left, right)

    @RELAXED
    @given(annotated_schemas(), annotated_schemas())
    def test_annotated_leq_matches_reference(self, left, right):
        for a, b in [(left, right), (right, left), (left, left)]:
            assert annotated_leq(a, b) == reference_annotated_leq(a, b)
        clear_caches()
        assert annotated_leq(left, right) == reference_annotated_leq(
            left, right
        )


class TestJoinEquivalence:
    @RELAXED
    @given(st.lists(schemas(), max_size=5))
    def test_join_all_matches_reference(self, family):
        assert join_all(family) == reference_join_all(family)

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_join_all_matches_reference_generated(self, seed):
        family = random_schema_family(
            n_schemas=6,
            pool_size=18,
            n_classes=8,
            n_labels=4,
            arrow_density=0.25,
            spec_density=0.15,
            seed=seed,
        )
        assert join_all(family) == reference_join_all(family)

    def test_join_all_large_family(self):
        family = random_schema_family(
            n_schemas=60, pool_size=40, n_classes=10, n_labels=5, seed=11
        )
        assert join_all(family) == reference_join_all(family)

    def test_closure_builder_incremental_equals_batch(self):
        family = random_schema_family(n_schemas=8, seed=3)
        builder = ClosureBuilder()
        for i, schema in enumerate(family):
            builder.add_schema(schema)
            # Every prefix snapshot must equal the batch join of the prefix.
            assert builder.build() == reference_join_all(family[: i + 1])

    def test_closure_builder_rejects_incompatible_atomically(self):
        from repro.exceptions import IncompatibleSchemasError

        accepted = Schema.build(
            arrows=[("A", "f", "B")], spec=[("Sub", "Sup")]
        )
        poison = Schema.build(
            arrows=[("Evil", "g", "B")], spec=[("Sup", "Sub")]
        )
        builder = ClosureBuilder([accepted])
        try:
            builder.add_schema(poison)
            raise AssertionError("expected IncompatibleSchemasError")
        except IncompatibleSchemasError:
            pass
        # The rejected schema must leave no trace: classes, arrows, spec.
        assert builder.build() == accepted

    def test_closure_builder_coerces_inputs(self):
        from repro.exceptions import SchemaValidationError

        built = (
            ClosureBuilder()
            .add_class("A")
            .add_arrow("A", "f", "B")
            .build(extra_arrows=[("X", "g", "Y")])
        )
        # Raw strings are coerced to names and endpoints join C, so the
        # result passes the validating public constructor (cache cleared
        # first so the intern table cannot short-circuit validation).
        clear_caches()
        assert built == Schema(built.classes, built.arrows, built.spec)
        assert built.has_arrow("X", "g", "Y") and built.has_class("Y")
        with pytest.raises(SchemaValidationError):
            ClosureBuilder().add_arrow("A", 123, "B")
        with pytest.raises(SchemaValidationError):
            ClosureBuilder().build(extra_arrows=[("A", "", "B")])


class TestLowerEquivalence:
    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=15, deadline=None)
    def test_lower_merge_matches_reference(self, seed):
        inputs = [
            random_annotated_schema(
                n_classes=8, n_labels=4, arrow_density=0.3, seed=seed * 7 + i
            )
            for i in range(3)
        ]
        assert lower_merge(*inputs) == reference_lower_merge(*inputs)
        assert lower_merge(
            *inputs, import_specializations=True
        ) == reference_lower_merge(*inputs, import_specializations=True)


class TestIncrementalUpdates:
    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_with_arrows_equals_rebuild(self, seed):
        base = random_weak_schema(
            n_classes=8, n_labels=3, arrow_density=0.25, spec_density=0.2,
            seed=seed,
        )
        classes = [str(c) for c in base.sorted_classes()]
        extra = [
            (classes[seed % len(classes)], "zz", classes[(seed * 3) % len(classes)]),
            ("Fresh", "ww", classes[0]),
        ]
        incremental = base.with_arrows(extra)
        rebuilt = Schema.build(
            classes=base.classes,
            arrows=list(base.arrows) + extra,
            spec=base.spec,
        )
        assert incremental == rebuilt

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_with_spec_equals_rebuild(self, seed):
        base = random_weak_schema(
            n_classes=8, n_labels=3, arrow_density=0.25, spec_density=0.2,
            seed=seed,
        )
        classes = [str(c) for c in base.sorted_classes()]
        sub = classes[seed % len(classes)]
        sup = classes[(seed * 5 + 1) % len(classes)]
        try:
            incremental = base.with_spec(sub, sup)
        except Exception as exc:  # incompatible: rebuild must agree
            rebuilt_raises = False
            try:
                Schema.build(
                    classes=base.classes,
                    arrows=base.arrows,
                    spec=list(base.spec) + [(sub, sup)],
                )
            except type(exc):
                rebuilt_raises = True
            assert rebuilt_raises
            return
        rebuilt = Schema.build(
            classes=base.classes,
            arrows=base.arrows,
            spec=list(base.spec) + [(sub, sup)],
        )
        assert incremental == rebuilt


class TestCacheMachinery:
    def test_memo_cache_bounded_lru(self):
        cache = MemoCache("test.bounded", maxsize=4, register=False)
        for i in range(10):
            cache.put(i, i * 2)
        assert len(cache) == 4
        assert cache.get(9) == 18
        assert cache.get(0) is MemoCache.MISS

    def test_memo_cache_caches_falsy_values(self):
        cache = MemoCache("test.falsy", maxsize=4, register=False)
        cache.put("k", False)
        assert cache.get("k") is False

    def test_engine_stats_shape(self):
        is_sub(Schema.empty(), Schema.empty())
        stats = engine_stats()
        assert "intern" in stats and "memo" in stats
        assert "ordering.is_sub" in stats["memo"]
        for table in stats["intern"].values():
            assert {"size", "hits", "misses"} <= set(table)
