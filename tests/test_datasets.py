"""Integration tests over the curated scenario datasets."""


from repro.core.implicit import implicit_classes_of
from repro.core.keys import merge_keyed
from repro.core.lower import (
    annotated_leq,
    complete_classes,
    lower_merge,
    lower_properize,
    lower_properness_violations,
)
from repro.core.merge import upper_merge
from repro.core.ordering import is_sub
from repro.core.participation import Participation
from repro.core.proper import is_proper
from repro.datasets import (
    retail_federation_scenario,
    university_scenario,
    veterinary_scenario,
)


class TestUniversityScenario:
    def test_keyed_merge_succeeds(self):
        views, assertions = university_scenario()
        merged = merge_keyed(*views, assertions=assertions)
        assert is_proper(merged.schema)

    def test_key_propagation_through_assertions(self):
        views, assertions = university_scenario()
        merged = merge_keyed(*views, assertions=assertions)
        # GS ==> Student: the Student id-key propagates to GS (same
        # family, both already declared it).
        assert merged.keys_of("GS").is_superkey({"id"})
        # TA ==> GS ==> Student: the TA inherits the id key too.
        assert merged.keys_of("TA").is_superkey({"id"})

    def test_ta_inherits_arrows_down_two_levels(self):
        views, assertions = university_scenario()
        merged = merge_keyed(*views, assertions=assertions)
        schema = merged.schema
        assert schema.has_arrow("TA", "thesis", "Title")  # via GS
        assert schema.has_arrow("TA", "enrolled", "Term")  # via Student
        assert schema.has_arrow("TA", "salary", "Money")  # via Employee

    def test_merge_order_independent(self):
        views, assertions = university_scenario()
        forward = merge_keyed(*views, assertions=assertions)
        backward = merge_keyed(*reversed(views), assertions=assertions)
        assert forward == backward

    def test_advisor_committee_keys_intact(self):
        views, assertions = university_scenario()
        merged = merge_keyed(*views, assertions=assertions)
        assert merged.keys_of("Advisor").contains_family(
            merged.keys_of("Committee")
        )


class TestVeterinaryScenario:
    def test_merge_unifies_dog(self):
        schemas, assertions = veterinary_scenario()
        merged = upper_merge(*schemas, assertions=assertions)
        labels = merged.out_labels("Dog")
        # Arrows from all three sources converge on one Dog class.
        assert {"name", "license", "kind", "sire", "chart"} <= labels

    def test_every_input_below_merge(self):
        schemas, assertions = veterinary_scenario()
        merged = upper_merge(*schemas, assertions=assertions)
        for schema in schemas:
            assert is_sub(schema, merged)

    def test_no_implicit_classes_needed(self):
        # The three views agree on all attribute typings, so the merge
        # should stay implicit-free — a realistic "clean" integration.
        schemas, assertions = veterinary_scenario()
        merged = upper_merge(*schemas, assertions=assertions)
        assert not implicit_classes_of(merged)

    def test_circular_arrows_supported(self):
        # Dog --sire--> Dog is a cycle in E (not in S): legal, and it
        # survives the merge (the model supports "complex data
        # structures (such as circular definitions)", §2).
        schemas, assertions = veterinary_scenario()
        merged = upper_merge(*schemas, assertions=assertions)
        assert merged.has_arrow("Dog", "sire", "Dog")
        assert merged.has_arrow("Police-dog", "sire", "Dog")


class TestRetailFederation:
    def test_lower_merge_is_lower_bound(self):
        sources = retail_federation_scenario()
        merged = lower_merge(*sources)
        for completed in complete_classes(sources):
            assert annotated_leq(merged, completed)

    def test_disagreements_become_optional(self):
        sources = retail_federation_scenario()
        merged = lower_merge(*sources)
        # total is required everywhere; customer link is not.
        assert (
            merged.participation_of("Order", "total", "Money")
            == Participation.REQUIRED
        )
        assert (
            merged.participation_of("Order", "customer", "Customer")
            == Participation.OPTIONAL
        )
        assert (
            merged.participation_of("Customer", "name", "Name")
            == Participation.OPTIONAL
        )

    def test_bulk_order_survives(self):
        sources = retail_federation_scenario()
        merged = lower_merge(*sources)
        assert any(str(c) == "BulkOrder" for c in merged.classes)

    def test_properization_terminates_clean(self):
        sources = retail_federation_scenario()
        proper = lower_properize(lower_merge(*sources))
        assert lower_properness_violations(proper) == []


class TestPersonRegistryScenario:
    def test_fusion_identifies_exactly_alice(self):
        from repro.datasets import (
            PERSON_REGISTRY_VALUE_CLASSES,
            person_registry_scenario,
        )
        from repro.instances.correspondence import fuse

        result = fuse(
            person_registry_scenario(),
            value_classes=PERSON_REGISTRY_VALUE_CLASSES,
        )
        assert result.identified == 1
        assert len(result.instance.extent("Person")) == 3

    def test_imposed_key_is_reported(self):
        from repro.datasets import person_registry_scenario
        from repro.instances.correspondence import (
            CorrespondenceStatus,
            analyze_correspondence,
        )

        schemas = [keyed for keyed, _data in person_registry_scenario()]
        rows = analyze_correspondence(schemas)
        assert CorrespondenceStatus.IMPOSED in {row.status for row in rows}

    def test_fused_alice_has_both_sources_attributes(self):
        from repro.datasets import (
            PERSON_REGISTRY_VALUE_CLASSES,
            person_registry_scenario,
        )
        from repro.instances.correspondence import fuse

        result = fuse(
            person_registry_scenario(),
            value_classes=PERSON_REGISTRY_VALUE_CLASSES,
        )
        (alice,) = [
            oid
            for oid in result.instance.extent("Person")
            if result.instance.value(oid, "ssn") == "123-45"
        ]
        assert result.instance.value(alice, "born") == "1970-01-01"
        assert result.instance.value(alice, "salary") == "90k"

    def test_scenario_returns_fresh_objects(self):
        from repro.datasets import person_registry_scenario

        first = person_registry_scenario()
        second = person_registry_scenario()
        assert first[0][0] == second[0][0]
        assert first[0][1] == second[0][1]
