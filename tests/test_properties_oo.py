"""Property tests for the object-oriented model (§2, §7).

Random class diagrams — with multiple inheritance, reference cycles and
value types — round-trip through the general model exactly, and merges
at the diagram level inherit the §4 laws from the underlying upper
merge.
"""

from typing import List

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.oo import (
    OOAttribute,
    OOClass,
    OODiagram,
    from_schema,
    merge_oo,
    to_schema,
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CLASS_POOL = [f"C{i}" for i in range(6)]
VALUE_POOL = ["Int", "Str", "Money"]


@st.composite
def oo_diagrams(draw, label_space: str = ""):
    """A random class diagram over the shared class-name pool.

    ``label_space`` namespaces attribute labels, so two diagrams drawn
    with different spaces never claim the same attribute with clashing
    types — the structural-conflict case is unit-tested separately.
    Inheritance edges point from higher to lower pool index, keeping
    ISA acyclic within and across diagrams.
    """
    count = draw(st.integers(min_value=0, max_value=len(CLASS_POOL)))
    chosen = draw(
        st.lists(
            st.sampled_from(CLASS_POOL),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    chosen = sorted(chosen, key=CLASS_POOL.index)
    definitions: List[OOClass] = []
    for position, cls_name in enumerate(chosen):
        attributes = []
        n_attrs = draw(st.integers(min_value=0, max_value=2))
        for a in range(n_attrs):
            target = draw(
                st.sampled_from(VALUE_POOL + chosen)
            )  # references may be circular
            attributes.append(
                OOAttribute(f"a{label_space}_{cls_name}_{a}", target)
            )
        bases = draw(
            st.lists(
                st.sampled_from(chosen[:position]),
                max_size=min(2, position),
                unique=True,
            )
        ) if position else []
        definitions.append(
            OOClass(cls_name, attributes=attributes, bases=bases)
        )
    return OODiagram(classes=definitions)


class TestRoundTrip:
    @given(oo_diagrams())
    @RELAXED
    def test_round_trip_is_identity(self, diagram):
        assert from_schema(to_schema(diagram)) == diagram

    @given(oo_diagrams())
    @RELAXED
    def test_translation_preserves_inherited_attributes(self, diagram):
        schema = to_schema(diagram).schema
        for cls in diagram.classes:
            for attr_name, attr_type in diagram.all_attributes(
                cls.name
            ).items():
                assert schema.has_arrow(cls.name, attr_name, attr_type)


class TestMergeLaws:
    @given(oo_diagrams(label_space="x"), oo_diagrams(label_space="y"))
    @RELAXED
    def test_commutative(self, one, two):
        assert merge_oo(one, two) == merge_oo(two, one)

    @given(
        oo_diagrams(label_space="x"),
        oo_diagrams(label_space="y"),
        oo_diagrams(label_space="z"),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_associative(self, one, two, three):
        left = merge_oo(merge_oo(one, two), three)
        right = merge_oo(one, merge_oo(two, three))
        assert left == right
        assert left == merge_oo(one, two, three)

    @given(oo_diagrams())
    @RELAXED
    def test_idempotent(self, diagram):
        assert merge_oo(diagram, diagram) == merge_oo(diagram)

    @given(oo_diagrams(label_space="x"), oo_diagrams(label_space="y"))
    @RELAXED
    def test_merge_is_an_upper_bound_classwise(self, one, two):
        merged = merge_oo(one, two)
        assert merged.class_names() >= one.class_names()
        assert merged.class_names() >= two.class_names()
        for diagram in (one, two):
            for cls in diagram.classes:
                inherited = merged.all_attributes(cls.name)
                for attr_name in diagram.all_attributes(cls.name):
                    assert attr_name in inherited
