"""Unit tests for section 5's cross-database object correspondence."""

import pytest

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.names import name
from repro.core.schema import Schema
from repro.exceptions import InstanceError
from repro.instances.correspondence import (
    CorrespondenceStatus,
    analyze_correspondence,
    correspondence_report,
    federate_shared,
    fuse,
)
from repro.instances.instance import Instance


def person_schema(*extra_labels: str, key: bool = True) -> KeyedSchema:
    """A Person schema with an ssn arrow plus *extra_labels* arrows."""
    arrows = [("Person", "ssn", "SSN")]
    arrows.extend(("Person", label, "Str") for label in extra_labels)
    keys = {"Person": KeyFamily.of({"ssn"})} if key else {}
    return KeyedSchema(Schema.build(arrows=arrows), keys)


def person_without_ssn(*labels: str) -> KeyedSchema:
    arrows = [("Person", label, "Str") for label in labels]
    return KeyedSchema(Schema.build(arrows=arrows))


class TestAnalysis:
    def test_agreed_when_both_declare(self):
        rows = analyze_correspondence(
            [person_schema(), person_schema("name")]
        )
        person_rows = [r for r in rows if r.cls == name("Person")]
        assert [r.status for r in person_rows] == [
            CorrespondenceStatus.AGREED
        ]
        assert person_rows[0].declared_in == (0, 1)
        assert person_rows[0].decides_correspondence()

    def test_imposed_when_one_declares_other_has_arrow(self):
        rows = analyze_correspondence(
            [person_schema(), person_schema("name", key=False)]
        )
        (row,) = [r for r in rows if r.cls == name("Person")]
        assert row.status == CorrespondenceStatus.IMPOSED
        assert row.declared_in == (0,)
        assert row.evaluable_in == (0, 1)
        assert row.decides_correspondence()

    def test_undeterminable_when_arrow_missing(self):
        rows = analyze_correspondence(
            [person_schema(), person_without_ssn("name")]
        )
        (row,) = [r for r in rows if r.cls == name("Person")]
        assert row.status == CorrespondenceStatus.UNDETERMINABLE
        assert row.blind_in == (1,)
        assert not row.decides_correspondence()

    def test_identity_only_when_no_keys_anywhere(self):
        rows = analyze_correspondence(
            [person_schema(key=False), person_without_ssn("name")]
        )
        (row,) = [r for r in rows if r.cls == name("Person")]
        assert row.status == CorrespondenceStatus.IDENTITY_ONLY
        assert row.key == frozenset()

    def test_classes_in_one_input_are_skipped(self):
        solo = KeyedSchema(Schema.build(arrows=[("Pet", "tag", "Str")]))
        rows = analyze_correspondence([person_schema(), solo])
        assert all(r.cls != name("Pet") for r in rows)

    def test_multiple_keys_reported_separately(self):
        left = KeyedSchema(
            Schema.build(
                arrows=[("Person", "ssn", "SSN"), ("Person", "email", "Str")]
            ),
            {"Person": KeyFamily.of({"ssn"}, {"email"})},
        )
        right = person_schema()
        rows = [
            r
            for r in analyze_correspondence([left, right])
            if r.cls == name("Person")
        ]
        statuses = {frozenset(r.key): r.status for r in rows}
        assert statuses[frozenset({"ssn"})] == CorrespondenceStatus.AGREED
        assert (
            statuses[frozenset({"email"})]
            == CorrespondenceStatus.UNDETERMINABLE
        )

    def test_precomputed_merge_accepted(self):
        from repro.core.keys import merge_keyed

        inputs = [person_schema(), person_schema("name")]
        merged = merge_keyed(*inputs)
        rows = analyze_correspondence(inputs, merged=merged)
        assert rows == analyze_correspondence(inputs)

    def test_report_is_deterministic_text(self):
        rows = analyze_correspondence(
            [person_schema(), person_without_ssn("name")]
        )
        text = correspondence_report(rows)
        assert "no way to tell" in text
        assert text == correspondence_report(rows)


class TestMatchingPairs:
    """The literal pairwise reading of section 5's correspondence."""

    from repro.instances.correspondence import matching_pairs  # noqa: F401

    @pytest.fixture
    def census(self) -> Instance:
        return Instance.build(
            extents={"Person": {"p1", "p2"}, "SSN": {"123", "456"}},
            values={("p1", "ssn"): "123", ("p2", "ssn"): "456"},
        )

    @pytest.fixture
    def payroll(self) -> Instance:
        return Instance.build(
            extents={"Person": {"e1", "e2", "e3"}, "SSN": {"123", "456"}},
            values={
                ("e1", "ssn"): "123",
                ("e2", "ssn"): "456",
                # e3 has no ssn — its correspondence is undeterminable.
            },
        )

    def test_matches_on_equal_key_values(self, census, payroll):
        from repro.instances.correspondence import matching_pairs

        pairs = matching_pairs(census, payroll, "Person", {"ssn"})
        assert pairs == [("p1", "e1"), ("p2", "e2")]

    def test_object_without_key_attribute_matches_nothing(
        self, census, payroll
    ):
        from repro.instances.correspondence import matching_pairs

        pairs = matching_pairs(census, payroll, "Person", {"ssn"})
        assert all(right != "e3" for _left, right in pairs)

    def test_composite_key_requires_all_components(self):
        from repro.instances.correspondence import matching_pairs

        left = Instance.build(
            extents={"T": {"t1"}},
            values={("t1", "loc"): "m1", ("t1", "at"): "noon"},
        )
        right = Instance.build(
            extents={"T": {"u1", "u2"}},
            values={
                ("u1", "loc"): "m1",
                ("u1", "at"): "noon",
                ("u2", "loc"): "m1",
                ("u2", "at"): "dusk",
            },
        )
        pairs = matching_pairs(left, right, "T", {"loc", "at"})
        assert pairs == [("t1", "u1")]

    def test_empty_key_matches_nothing(self, census, payroll):
        from repro.instances.correspondence import matching_pairs

        assert matching_pairs(census, payroll, "Person", set()) == []

    def test_unknown_class_matches_nothing(self, census, payroll):
        from repro.instances.correspondence import matching_pairs

        assert matching_pairs(census, payroll, "Pet", {"ssn"}) == []

    def test_pairs_agree_with_fusion(self, census, payroll):
        """Every matched pair ends up identified by the fusion
        pipeline, and vice versa — the two §5 readings coincide."""
        from repro.instances.correspondence import fuse, matching_pairs

        schema = KeyedSchema(
            Schema.build(arrows=[("Person", "ssn", "SSN")]),
            {"Person": KeyFamily.of({"ssn"})},
        )
        pairs = matching_pairs(census, payroll, "Person", {"ssn"})
        result = fuse(
            [(schema, census), (schema, payroll)], value_classes=["SSN"]
        )
        combined_people = len(census.extent("Person")) + len(
            payroll.extent("Person")
        )
        assert result.identified == len(pairs)
        assert (
            len(result.instance.extent("Person"))
            == combined_people - len(pairs)
        )


class TestFederateShared:
    def test_entity_oids_are_disjointified(self):
        left = Instance.build(extents={"Person": {"p1"}})
        right = Instance.build(extents={"Person": {"p1"}})
        combined = federate_shared([left, right])
        assert combined.extent("Person") == {
            ("src0", "p1"),
            ("src1", "p1"),
        }

    def test_value_oids_are_shared(self):
        left = Instance.build(
            extents={"Person": {"p1"}, "SSN": {"123"}},
            values={("p1", "ssn"): "123"},
        )
        right = Instance.build(
            extents={"Person": {"q1"}, "SSN": {"123"}},
            values={("q1", "ssn"): "123"},
        )
        combined = federate_shared([left, right], value_classes=["SSN"])
        assert combined.extent("SSN") == {"123"}
        assert combined.value(("src0", "p1"), "ssn") == "123"
        assert combined.value(("src1", "q1"), "ssn") == "123"

    def test_custom_prefix(self):
        left = Instance.build(extents={"Person": {"p1"}})
        combined = federate_shared([left], prefix="db")
        assert ("db0", "p1") in combined.extent("Person")

    def test_empty_sources(self):
        assert federate_shared([]) == Instance.empty()


class TestFuse:
    @pytest.fixture
    def census(self) -> Instance:
        return Instance.build(
            extents={"Person": {"p1", "p2"}, "SSN": {"123", "456"}},
            values={("p1", "ssn"): "123", ("p2", "ssn"): "456"},
        )

    @pytest.fixture
    def payroll(self) -> Instance:
        return Instance.build(
            extents={
                "Person": {"e1", "e2"},
                "SSN": {"123", "789"},
                "Str": {"ann", "bob"},
            },
            values={
                ("e1", "ssn"): "123",
                ("e2", "ssn"): "789",
                ("e1", "name"): "ann",
                ("e2", "name"): "bob",
            },
        )

    def test_agreed_key_identifies_across_sources(self, census, payroll):
        result = fuse(
            [(person_schema(), census), (person_schema("name"), payroll)],
            value_classes=["SSN", "Str"],
        )
        assert result.objects_before == len(
            federate_shared([census, payroll], value_classes=["SSN", "Str"])
        )
        assert result.identified == 1  # p1 and e1 share ssn 123
        assert len(result.instance.extent("Person")) == 3

    def test_fused_object_carries_both_sources_attributes(
        self, census, payroll
    ):
        result = fuse(
            [(person_schema(), census), (person_schema("name"), payroll)],
            value_classes=["SSN", "Str"],
        )
        (merged_oid,) = [
            oid
            for oid in result.instance.extent("Person")
            if result.instance.value(oid, "ssn") == "123"
        ]
        assert result.instance.value(merged_oid, "name") == "ann"

    def test_imposed_key_still_identifies(self, census, payroll):
        result = fuse(
            [
                (person_schema(), census),
                (person_schema("name", key=False), payroll),
            ],
            value_classes=["SSN", "Str"],
        )
        assert result.identified == 1
        statuses = {row.status for row in result.correspondences}
        assert CorrespondenceStatus.IMPOSED in statuses

    def test_undeterminable_key_identifies_nothing(self, census):
        nameonly = Instance.build(
            extents={"Person": {"e1"}, "Str": {"ann"}},
            values={("e1", "name"): "ann"},
        )
        result = fuse(
            [
                (person_schema(), census),
                (person_without_ssn("name"), nameonly),
            ],
            value_classes=["SSN", "Str"],
        )
        assert result.identified == 0
        statuses = {row.status for row in result.correspondences}
        assert CorrespondenceStatus.UNDETERMINABLE in statuses

    def test_no_keys_means_no_identification(self, census, payroll):
        result = fuse(
            [
                (person_schema(key=False), census),
                (person_schema("name", key=False), payroll),
            ],
            value_classes=["SSN", "Str"],
        )
        assert result.identified == 0

    def test_duplicates_within_one_source_also_collapse(self):
        duplicated = Instance.build(
            extents={"Person": {"p1", "p2"}, "SSN": {"123"}},
            values={("p1", "ssn"): "123", ("p2", "ssn"): "123"},
        )
        result = fuse(
            [(person_schema(), duplicated)], value_classes=["SSN"]
        )
        assert result.identified == 1
        assert len(result.instance.extent("Person")) == 1

    def test_key_violating_data_raises(self):
        # Two people share an ssn but have contradicting names — the
        # identification would force one oid to carry two name values.
        left = Instance.build(
            extents={
                "Person": {"p1"},
                "SSN": {"123"},
                "Str": {"ann"},
            },
            values={("p1", "ssn"): "123", ("p1", "name"): "ann"},
        )
        right = Instance.build(
            extents={
                "Person": {"q1"},
                "SSN": {"123"},
                "Str": {"zoe"},
            },
            values={("q1", "ssn"): "123", ("q1", "name"): "zoe"},
        )
        schema = person_schema("name")
        with pytest.raises(InstanceError, match="violates the keys"):
            fuse(
                [(schema, left), (schema, right)],
                value_classes=["SSN", "Str"],
            )

    def test_summary_mentions_counts_and_verdicts(self, census, payroll):
        result = fuse(
            [(person_schema(), census), (person_schema("name"), payroll)],
            value_classes=["SSN", "Str"],
        )
        text = result.summary()
        assert "identified by keys" in text
        assert "agreed" in text or "Person" in text
