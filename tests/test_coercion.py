"""Unit tests for the coercion theorems (§4, §6)."""

import pytest

from repro.core.merge import upper_merge
from repro.core.schema import Schema
from repro.figures import figure3_schemas
from repro.instances.coercion import check_upper_coercion, coerce
from repro.instances.instance import Instance
from repro.instances.satisfaction import satisfies


@pytest.fixture
def merged_and_parts():
    one, two = figure3_schemas()
    return upper_merge(one, two), one, two


@pytest.fixture
def merge_instance(merged_and_parts) -> Instance:
    merged, _one, _two = merged_and_parts
    # Populate the merged schema, implicit class included.
    from repro.core.names import ImplicitName

    imp = ImplicitName(["B1", "B2"])
    return Instance.build(
        extents={
            "A1": {"x", "c"},
            "A2": {"y", "c"},
            "C": {"c"},
            "B1": {"v"},
            "B2": {"v"},
            imp: {"v"},
        },
        values={
            ("x", "a"): "v",
            ("y", "a"): "v",
            ("c", "a"): "v",
        },
    )


class TestCoerce:
    def test_instance_satisfies_merge(self, merged_and_parts, merge_instance):
        merged, _one, _two = merged_and_parts
        assert satisfies(merge_instance, merged)

    def test_coercion_to_each_component(
        self, merged_and_parts, merge_instance
    ):
        merged, one, two = merged_and_parts
        for component in (one, two):
            coerced = coerce(merge_instance, component)
            assert satisfies(coerced, component)

    def test_coercion_forgets_foreign_extents(
        self, merged_and_parts, merge_instance
    ):
        _merged, one, _two = merged_and_parts
        coerced = coerce(merge_instance, one)
        assert coerced.extent("B1") == frozenset()
        assert coerced.extent("C") == {"c"}

    def test_check_upper_coercion_clean(
        self, merged_and_parts, merge_instance
    ):
        merged, one, two = merged_and_parts
        assert check_upper_coercion(merge_instance, merged, one) == []
        assert check_upper_coercion(merge_instance, merged, two) == []

    def test_check_flags_non_component(self, merged_and_parts, merge_instance):
        merged, _one, _two = merged_and_parts
        stranger = Schema.build(arrows=[("Z", "f", "W")])
        problems = check_upper_coercion(merge_instance, merged, stranger)
        assert problems == ["component is not below the merged schema"]

    def test_check_flags_bad_instance(self, merged_and_parts):
        merged, one, _two = merged_and_parts
        bad = Instance.build(extents={"C": {"c"}, "A1": set(), "A2": set()})
        problems = check_upper_coercion(bad, merged, one)
        assert problems == ["instance does not satisfy the merged schema"]


class TestGeneratedCoercion:
    def test_random_merge_instances_coerce(self):
        from repro.generators.random_schemas import (
            random_instance,
            random_schema_family,
        )

        family = random_schema_family(
            n_schemas=3, pool_size=12, n_classes=6, seed=99
        )
        merged = upper_merge(*family)
        instance = random_instance(merged, seed=99)
        assert satisfies(instance, merged)
        for component in family:
            assert satisfies(coerce(instance, component), component)
