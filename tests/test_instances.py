"""Unit tests for the Instance data structure."""

import pytest

from repro.core.names import BaseName
from repro.exceptions import InstanceError
from repro.instances.instance import Instance


@pytest.fixture
def dog_instance() -> Instance:
    return Instance.build(
        extents={
            "Dog": {"rex", "fido"},
            "Person": {"alice"},
        },
        values={
            ("rex", "owner"): "alice",
            ("fido", "owner"): "alice",
        },
    )


class TestBuild:
    def test_universe_inferred(self, dog_instance):
        assert dog_instance.oids == {"rex", "fido", "alice"}

    def test_extents(self, dog_instance):
        assert dog_instance.extent("Dog") == {"rex", "fido"}
        assert dog_instance.extent("Unknown") == frozenset()

    def test_values(self, dog_instance):
        assert dog_instance.value("rex", "owner") == "alice"
        assert dog_instance.value("rex", "age") is None

    def test_explicit_extra_oids(self):
        instance = Instance.build(oids=["ghost"])
        assert instance.oids == {"ghost"}

    def test_empty(self):
        assert len(Instance.empty()) == 0

    def test_classes_of(self, dog_instance):
        assert dog_instance.classes_of("rex") == {BaseName("Dog")}

    def test_defined_labels(self, dog_instance):
        assert dog_instance.defined_labels("rex") == {"owner"}


class TestValidation:
    def test_extent_with_unknown_oid(self):
        with pytest.raises(InstanceError):
            Instance(
                frozenset({"a"}),
                {BaseName("C"): frozenset({"b"})},
                {},
            )

    def test_value_with_unknown_source(self):
        with pytest.raises(InstanceError):
            Instance(frozenset({"a"}), {}, {("x", "f"): "a"})

    def test_value_with_unknown_target(self):
        with pytest.raises(InstanceError):
            Instance(frozenset({"a"}), {}, {("a", "f"): "x"})

    def test_bad_label(self):
        with pytest.raises(InstanceError):
            Instance(frozenset({"a"}), {}, {("a", ""): "a"})


class TestEquality:
    def test_structural(self, dog_instance):
        clone = Instance.build(
            extents={"Dog": {"fido", "rex"}, "Person": {"alice"}},
            values={
                ("rex", "owner"): "alice",
                ("fido", "owner"): "alice",
            },
        )
        assert clone == dog_instance
        assert hash(clone) != None  # hashable

    def test_empty_extents_ignored(self, dog_instance):
        padded = Instance.build(
            extents={
                "Dog": {"fido", "rex"},
                "Person": {"alice"},
                "Kennel": set(),
            },
            values=dog_instance.values(),
        )
        assert padded == dog_instance


class TestDerived:
    def test_restrict_classes(self, dog_instance):
        restricted = dog_instance.restrict_classes(["Dog"])
        assert restricted.extent("Dog") == {"rex", "fido"}
        assert restricted.extent("Person") == frozenset()
        assert restricted.oids == dog_instance.oids

    def test_prefixed_oids(self, dog_instance):
        prefixed = dog_instance.with_prefixed_oids("db1")
        assert ("db1", "rex") in prefixed.extent("Dog")
        assert prefixed.value(("db1", "rex"), "owner") == ("db1", "alice")

    def test_union(self, dog_instance):
        other = Instance.build(extents={"Dog": {"spot"}})
        combined = dog_instance.union(other)
        assert combined.extent("Dog") == {"rex", "fido", "spot"}

    def test_union_value_conflict_rejected(self):
        left = Instance.build(values={("a", "f"): "b"})
        right = Instance.build(values={("a", "f"): "c"})
        with pytest.raises(InstanceError):
            left.union(right)

    def test_union_agreeing_values_ok(self):
        left = Instance.build(values={("a", "f"): "b"})
        right = Instance.build(values={("a", "f"): "b"})
        assert left.union(right) == left
