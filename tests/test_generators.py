"""Unit tests for the synthetic generators."""

import pytest

from repro.core.implicit import implicit_sets
from repro.core.ordering import compatible
from repro.core.proper import is_proper
from repro.generators.pathological import (
    diamond_chain_schemas,
    expected_nfa_implicit_count,
    nfa_blowup_pair,
    nfa_blowup_schema,
)
from repro.generators.random_schemas import (
    random_annotated_schema,
    random_instance,
    random_keyed_schema,
    random_proper_schema,
    random_schema_family,
    random_weak_schema,
)
from repro.generators.workloads import WORKLOADS, get_workload
from repro.instances.satisfaction import satisfies


class TestRandomSchemas:
    def test_deterministic(self):
        assert random_weak_schema(seed=5) == random_weak_schema(seed=5)

    def test_different_seeds_differ(self):
        assert random_weak_schema(seed=1) != random_weak_schema(seed=2)

    def test_requested_class_count(self):
        schema = random_weak_schema(n_classes=15, seed=3)
        assert len(schema.classes) == 15

    def test_pool_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_weak_schema(n_classes=10, class_pool=["A"], seed=0)

    def test_proper_schema_is_proper(self):
        for seed in range(5):
            assert is_proper(random_proper_schema(n_classes=10, seed=seed))

    def test_family_is_compatible(self):
        for seed in range(5):
            family = random_schema_family(seed=seed)
            assert compatible(*family)

    def test_family_overlaps(self):
        family = random_schema_family(
            n_schemas=3, pool_size=15, n_classes=12, seed=4
        )
        shared = family[0].classes & family[1].classes
        assert shared  # drawn from one pool, so overlap is expected

    def test_keyed_schema_valid(self):
        keyed = random_keyed_schema(seed=6)
        for cls in keyed.declared_classes():
            for key in keyed.keys_of(cls).min_keys:
                assert key <= keyed.schema.out_labels(cls)

    def test_annotated_schema_deterministic(self):
        assert random_annotated_schema(seed=8) == random_annotated_schema(
            seed=8
        )

    def test_random_instance_satisfies(self):
        for seed in range(6):
            schema = random_proper_schema(n_classes=7, seed=seed)
            instance = random_instance(schema, seed=seed)
            assert satisfies(instance, schema), f"seed {seed}"


class TestPathological:
    def test_nfa_blowup_is_exponential(self):
        counts = [
            len(implicit_sets(nfa_blowup_schema(k))) for k in (3, 4, 5, 6)
        ]
        assert counts == [2**3 - 1, 2**4 - 1, 2**5 - 1, 2**6 - 1]

    def test_expected_count_matches(self):
        for k in (3, 5):
            assert expected_nfa_implicit_count(k) == 2**k - 1

    def test_pair_components_are_proper(self):
        first, second = nfa_blowup_pair(6)
        assert is_proper(first) and is_proper(second)

    def test_pair_merge_equals_single_schema(self):
        from repro.core.merge import weak_merge

        first, second = nfa_blowup_pair(5)
        assert weak_merge(first, second) == nfa_blowup_schema(5)

    def test_diamond_chain_linear(self):
        from repro.core.merge import weak_merge

        for k in (1, 4, 9):
            one, two = diamond_chain_schemas(k)
            assert len(implicit_sets(weak_merge(one, two))) == k

    def test_k_validation(self):
        with pytest.raises(ValueError):
            nfa_blowup_schema(0)
        with pytest.raises(ValueError):
            diamond_chain_schemas(0)
        with pytest.raises(ValueError):
            nfa_blowup_pair(0)


class TestWorkloads:
    def test_registry_names_match(self):
        for name, workload in WORKLOADS.items():
            assert workload.name == name

    def test_workloads_reproducible(self):
        for name in ("views-small", "diamonds-16"):
            workload = get_workload(name)
            assert workload.schemas() == workload.schemas()

    def test_workload_schemas_compatible(self):
        for name in ("views-small", "views-medium", "federation-wide"):
            schemas = get_workload(name).schemas()
            assert compatible(*schemas)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")
