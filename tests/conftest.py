"""Shared fixtures and hypothesis strategies for the test suite.

The central strategy is :func:`schemas` — random small weak schemas
built through ``Schema.build`` with an acyclicity-by-construction
specialization (edges only point from lower to higher class index), so
generated schemas are always valid and any family of them is always
compatible.  ``schema_pairs``/``schema_triples`` draw from one shared
class universe so merges actually overlap.
"""

from __future__ import annotations

from typing import Tuple

import pytest
from hypothesis import strategies as st

from repro.core.lower import AnnotatedSchema
from repro.core.participation import Participation
from repro.core.schema import Schema

CLASS_UNIVERSE = [f"K{i}" for i in range(8)]
LABEL_UNIVERSE = ["a", "b", "c"]


@st.composite
def schemas(
    draw,
    max_classes: int = 6,
    universe: Tuple[str, ...] = tuple(CLASS_UNIVERSE),
    labels: Tuple[str, ...] = tuple(LABEL_UNIVERSE),
):
    """A random weak schema over the shared universe."""
    pool = list(universe)
    count = draw(st.integers(min_value=0, max_value=min(max_classes, len(pool))))
    chosen = draw(
        st.lists(
            st.sampled_from(pool), min_size=count, max_size=count, unique=True
        )
    ) if count else []
    if not chosen:
        return Schema.empty()
    index = {cls: pool.index(cls) for cls in chosen}
    spec_candidates = [
        (sub, sup)
        for sub in chosen
        for sup in chosen
        if index[sub] < index[sup]
    ]
    spec = [
        edge
        for edge in spec_candidates
        if draw(st.booleans()) and draw(st.integers(0, 2)) == 0
    ]
    arrow_candidates = [
        (source, label, target)
        for source in chosen
        for label in labels
        for target in chosen
    ]
    arrows = draw(
        st.lists(
            st.sampled_from(arrow_candidates),
            min_size=0,
            max_size=min(6, len(arrow_candidates)),
        )
    ) if arrow_candidates else []
    return Schema.build(classes=chosen, arrows=arrows, spec=spec)


@st.composite
def schema_pairs(draw):
    """Two overlapping schemas (shared universe ⇒ always compatible)."""
    return draw(schemas()), draw(schemas())


@st.composite
def schema_triples(draw):
    """Three overlapping schemas."""
    return draw(schemas()), draw(schemas()), draw(schemas())


@st.composite
def annotated_schemas(draw, max_classes: int = 5):
    """A random participation-annotated schema."""
    base = draw(schemas(max_classes=max_classes))
    annotated_arrows = []
    for source, label, target in base.sorted_arrows():
        constraint = draw(
            st.sampled_from([Participation.OPTIONAL, Participation.REQUIRED])
        )
        annotated_arrows.append((source, label, target, constraint))
    return AnnotatedSchema.build(
        classes=base.classes, arrows=annotated_arrows, spec=base.spec
    )


@pytest.fixture
def dog_schema() -> Schema:
    """A small realistic schema reused across unit tests."""
    return Schema.build(
        arrows=[
            ("Dog", "owner", "Person"),
            ("Dog", "breed", "Breed"),
            ("Police-dog", "badge", "Badge"),
        ],
        spec=[("Police-dog", "Dog"), ("Guide-dog", "Dog")],
    )
