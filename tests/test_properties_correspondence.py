"""Property tests for cross-database correspondence and fusion (§5)."""

from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.names import name
from repro.core.schema import Schema
from repro.instances.correspondence import (
    CorrespondenceStatus,
    analyze_correspondence,
    federate_shared,
    fuse,
)
from repro.instances.instance import Instance
from repro.instances.merging import identify_by_keys

from tests.conftest import schemas

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SSN_POOL = [f"ssn{i}" for i in range(5)]


def person_schema(keyed: bool = True) -> KeyedSchema:
    keys = {"Person": KeyFamily.of({"ssn"})} if keyed else {}
    return KeyedSchema(
        Schema.build(arrows=[("Person", "ssn", "SSN")]), keys
    )


@st.composite
def person_sources(draw, max_sources: int = 3, max_people: int = 4):
    """Random Person databases sharing an SSN value pool."""
    count = draw(st.integers(min_value=1, max_value=max_sources))
    sources: List[Tuple[KeyedSchema, Instance]] = []
    for index in range(count):
        people = draw(st.integers(min_value=0, max_value=max_people))
        ssns = draw(
            st.lists(
                st.sampled_from(SSN_POOL),
                min_size=people,
                max_size=people,
            )
        )
        extents: Dict[str, set] = {
            "Person": {f"p{index}.{i}" for i in range(people)},
            "SSN": set(ssns),
        }
        values = {
            (f"p{index}.{i}", "ssn"): ssn for i, ssn in enumerate(ssns)
        }
        sources.append(
            (person_schema(), Instance.build(extents=extents, values=values))
        )
    return sources


class TestFusionInvariants:
    @given(person_sources())
    @RELAXED
    def test_fusion_never_creates_objects(self, sources):
        result = fuse(sources, value_classes=["SSN"])
        assert result.objects_after <= result.objects_before
        assert result.identified >= 0

    @given(person_sources())
    @RELAXED
    def test_distinct_ssns_survive(self, sources):
        """After fusion, Person extent size equals the number of
        distinct SSN values — the key semantics, end to end."""
        result = fuse(sources, value_classes=["SSN"])
        distinct = {
            instance.value(oid, "ssn")
            for _keyed, instance in sources
            for oid in instance.extent("Person")
        }
        assert len(result.instance.extent("Person")) == len(distinct)

    @given(person_sources())
    @RELAXED
    def test_fused_instance_is_a_fixpoint(self, sources):
        """Re-identifying the fused instance changes nothing."""
        result = fuse(sources, value_classes=["SSN"])
        again = identify_by_keys(result.instance, result.merged)
        assert again == result.instance

    @given(person_sources())
    @RELAXED
    def test_keyless_fusion_identifies_nothing(self, sources):
        keyless = [
            (person_schema(keyed=False), instance)
            for _keyed, instance in sources
        ]
        result = fuse(keyless, value_classes=["SSN"])
        assert result.identified == 0

    @given(person_sources())
    @RELAXED
    def test_every_attribute_value_is_preserved(self, sources):
        """Fusion may rename and collapse oids but never loses an
        (object, label, value) fact: each source ssn assignment is
        still present on the fused object with that ssn."""
        result = fuse(sources, value_classes=["SSN"])
        fused_ssns = {
            result.instance.value(oid, "ssn")
            for oid in result.instance.extent("Person")
        }
        for _keyed, instance in sources:
            for oid in instance.extent("Person"):
                assert instance.value(oid, "ssn") in fused_ssns


class TestFederateShared:
    @given(person_sources())
    @RELAXED
    def test_sharing_values_preserves_extent_sizes(self, sources):
        instances = [instance for _keyed, instance in sources]
        combined = federate_shared(instances, value_classes=["SSN"])
        total_people = sum(
            len(instance.extent("Person")) for instance in instances
        )
        assert len(combined.extent("Person")) == total_people
        distinct_ssns = set().union(
            *(instance.extent("SSN") for instance in instances)
        ) if instances else set()
        assert combined.extent("SSN") == distinct_ssns

    @given(person_sources())
    @RELAXED
    def test_disjointification_prevents_accidental_identity(self, sources):
        """Without keys, objects from different sources stay distinct
        even when their private oids collide textually."""
        instances = [instance for _keyed, instance in sources]
        combined = federate_shared(instances, value_classes=["SSN"])
        seen = set()
        for index in range(len(instances)):
            for oid in combined.extent("Person"):
                if isinstance(oid, tuple) and oid[0] == f"src{index}":
                    assert oid not in seen
                    seen.add(oid)


class TestAnalysisInvariants:
    @given(schemas(max_classes=4), schemas(max_classes=4))
    @RELAXED
    def test_rows_cover_only_shared_classes(self, left, right):
        keyed = [KeyedSchema(left), KeyedSchema(right)]
        rows = analyze_correspondence(keyed)
        shared = left.classes & right.classes
        for row in rows:
            assert row.cls in shared
            assert len(row.holders) >= 2

    @given(schemas(max_classes=4), schemas(max_classes=4))
    @RELAXED
    def test_keyless_inputs_give_identity_only_rows(self, left, right):
        keyed = [KeyedSchema(left), KeyedSchema(right)]
        rows = analyze_correspondence(keyed)
        assert all(
            row.status == CorrespondenceStatus.IDENTITY_ONLY for row in rows
        )

    def test_statuses_are_exhaustive_for_person_scenarios(self):
        """Each section 5 case is reachable (regression anchor)."""
        cases = {
            CorrespondenceStatus.AGREED: [person_schema(), person_schema()],
            CorrespondenceStatus.IMPOSED: [
                person_schema(),
                person_schema(keyed=False),
            ],
            CorrespondenceStatus.UNDETERMINABLE: [
                person_schema(),
                KeyedSchema(Schema.build(arrows=[("Person", "name", "Str")])),
            ],
            CorrespondenceStatus.IDENTITY_ONLY: [
                person_schema(keyed=False),
                person_schema(keyed=False),
            ],
        }
        for expected, inputs in cases.items():
            rows = [
                row
                for row in analyze_correspondence(inputs)
                if row.cls == name("Person")
            ]
            assert [row.status for row in rows] == [expected]
