#!/usr/bin/env python3
"""A federated system via lower merges (§6).

Two autonomous shelters keep dog records with different required
attributes.  The lower merge — greatest lower bound under the
participation-constraint ordering — produces one schema that *both*
databases' instances already satisfy, so the federation can pool its
data without touching the sources.  Run with::

    python examples/federated_lower.py
"""

from repro import AnnotatedSchema, Participation, lower_merge, lower_properize
from repro.instances.instance import Instance
from repro.instances.merging import federate
from repro.instances.satisfaction import satisfies_annotated
from repro.render.ascii_art import render_annotated


def main() -> None:
    city_shelter = AnnotatedSchema.build(
        arrows=[
            ("Dog", "name", "String"),
            ("Dog", "age", "Int"),
            ("Dog", "intake-date", "Date"),
        ],
        spec=[("Guide-dog", "Dog")],
    )
    rural_shelter = AnnotatedSchema.build(
        arrows=[
            ("Dog", "name", "String"),
            ("Dog", "breed", "Breed"),
            # The rural shelter records vaccination only sometimes.
            ("Dog", "vaccinated", "Date", Participation.OPTIONAL),
        ],
    )

    merged = lower_merge(city_shelter, rural_shelter)
    print(render_annotated(merged, "federated schema (lower merge)"))
    print()

    # Shared required attributes stay required; everything either side
    # disagrees on becomes optional (the Figure 11 GLB).
    assert (
        merged.participation_of("Dog", "name", "String")
        == Participation.REQUIRED
    )
    assert (
        merged.participation_of("Dog", "age", "Int")
        == Participation.OPTIONAL
    )
    assert (
        merged.participation_of("Dog", "breed", "Breed")
        == Participation.OPTIONAL
    )
    # Guide-dog exists only at the city shelter but survives the merge.
    assert merged.is_spec("Guide-dog", "Guide-dog")

    # Each shelter's live data...
    city_data = Instance.build(
        extents={
            "Dog": {"rex"},
            "Guide-dog": {"rex"},
            "String": {"Rex"},
            "Int": {"3"},
            "Date": {"2026-01-05"},
        },
        values={
            ("rex", "name"): "Rex",
            ("rex", "age"): "3",
            ("rex", "intake-date"): "2026-01-05",
        },
    )
    rural_data = Instance.build(
        extents={
            "Dog": {"bella"},
            "String": {"Bella"},
            "Breed": {"collie"},
            "Date": set(),
        },
        values={
            ("bella", "name"): "Bella",
            ("bella", "breed"): "collie",
        },
    )
    assert satisfies_annotated(city_data, city_shelter)
    assert satisfies_annotated(rural_data, rural_shelter)

    # ...pools into one instance of the federated schema, untouched.
    pooled = federate([city_data, rural_data])
    assert satisfies_annotated(pooled, merged)
    print(
        f"pooled instance: {len(pooled.extent('Dog'))} dogs from two "
        "sources satisfy the federated schema"
    )

    # If the sources had typed an attribute differently, the lower
    # properization generalizes the alternatives upward:
    one = AnnotatedSchema.build(arrows=[("Dog", "home", "Kennel")])
    two = AnnotatedSchema.build(arrows=[("Dog", "home", "Household")])
    proper = lower_properize(lower_merge(one, two))
    print()
    print(render_annotated(proper, "conflicting 'home' typings, generalized"))


if __name__ == "__main__":
    main()
