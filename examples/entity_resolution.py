#!/usr/bin/env python3
"""Entity resolution across databases via merged keys (section 5).

A census bureau and a payroll system both track people.  Section 5 of
the paper explains how keys decide when an object in one database
corresponds to an object in the other — and what happens when only one
database declares the key, or lacks its attributes entirely.  This
example runs all three situations through the fusion pipeline.  Run
with::

    python examples/entity_resolution.py
"""

from repro import KeyFamily, KeyedSchema, Schema
from repro.instances.correspondence import (
    analyze_correspondence,
    correspondence_report,
    fuse,
)
from repro.instances.instance import Instance


def census_schema() -> KeyedSchema:
    """The census declares {ssn} a key for Person."""
    return KeyedSchema(
        Schema.build(
            arrows=[("Person", "ssn", "SSN"), ("Person", "born", "Date")]
        ),
        {"Person": KeyFamily.of({"ssn"})},
    )


def payroll_schema(with_ssn: bool = True) -> KeyedSchema:
    """Payroll has the ssn arrow but never declared it a key."""
    arrows = [("Person", "name", "Str"), ("Person", "salary", "Money")]
    if with_ssn:
        arrows.append(("Person", "ssn", "SSN"))
    return KeyedSchema(Schema.build(arrows=arrows))


def census_data() -> Instance:
    return Instance.build(
        extents={
            "Person": {"c-alice", "c-bob"},
            "SSN": {"123-45", "678-90"},
            "Date": {"1970-01-01", "1980-02-02"},
        },
        values={
            ("c-alice", "ssn"): "123-45",
            ("c-alice", "born"): "1970-01-01",
            ("c-bob", "ssn"): "678-90",
            ("c-bob", "born"): "1980-02-02",
        },
    )


def payroll_data() -> Instance:
    return Instance.build(
        extents={
            "Person": {"emp-1", "emp-2"},
            "SSN": {"123-45", "555-55"},
            "Str": {"Alice", "Carol"},
            "Money": {"90k", "85k"},
        },
        values={
            ("emp-1", "ssn"): "123-45",
            ("emp-1", "name"): "Alice",
            ("emp-1", "salary"): "90k",
            ("emp-2", "ssn"): "555-55",
            ("emp-2", "name"): "Carol",
            ("emp-2", "salary"): "85k",
        },
    )


VALUE_CLASSES = ["SSN", "Date", "Str", "Money"]


def main() -> None:
    census, payroll = census_schema(), payroll_schema()

    print("=== correspondence analysis (the section 5 cases) ===")
    print(correspondence_report(analyze_correspondence([census, payroll])))
    print()

    print("=== fusing census with payroll ===")
    result = fuse(
        [(census, census_data()), (payroll, payroll_data())],
        value_classes=VALUE_CLASSES,
    )
    print(result.summary())
    print()

    # Alice appears in both databases; the merged key {ssn} — imposed
    # on payroll's extents by the merge — identifies her, and the fused
    # object carries attributes from *both* sources.
    (alice,) = [
        oid
        for oid in result.instance.extent("Person")
        if result.instance.value(oid, "ssn") == "123-45"
    ]
    print("the fused Alice object:")
    for label in ("ssn", "born", "name", "salary"):
        print(f"  {label}: {result.instance.value(alice, label)}")
    print()

    print("=== the undeterminable case ===")
    contacts = KeyedSchema(
        Schema.build(arrows=[("Person", "name", "Str")])
    )
    contacts_data = Instance.build(
        extents={"Person": {"ct-1"}, "Str": {"Alice"}},
        values={("ct-1", "name"): "Alice"},
    )
    blind = fuse(
        [(census, census_data()), (contacts, contacts_data)],
        value_classes=VALUE_CLASSES,
    )
    print(blind.summary())
    print()
    print(
        "contacts has no ssn arrow, so — exactly as the paper says — "
        '"there is not way to tell" whether ct-1 is the census Alice: '
        f"{blind.identified} object(s) were identified."
    )


if __name__ == "__main__":
    main()
