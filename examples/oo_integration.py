#!/usr/bin/env python3
"""Merging object-oriented class libraries (sections 2 and 7).

Two teams model a publication system as class diagrams with object
identity, multiple inheritance and circular references — the features
section 2 says the general model captures.  Merging happens by the
section 7 pipeline: translate to the general model, merge there, and
translate back, with strata preservation guaranteeing the result is
again a class diagram.  Run with::

    python examples/oo_integration.py
"""

from repro.models.oo import (
    OOAttribute,
    OOClass,
    OODiagram,
    format_diagram,
    merge_oo,
)


def editorial_library() -> OODiagram:
    """The editorial team's model: authorship and manuscripts."""
    return OODiagram(
        classes=[
            OOClass(
                "Person",
                [
                    OOAttribute("name", "Str"),
                    # Circular self-reference — fine in the model.
                    OOAttribute("spouse", "Person"),
                ],
            ),
            OOClass(
                "Author",
                [OOAttribute("royalties", "Money")],
                bases=("Person",),
            ),
            OOClass(
                "Manuscript",
                [
                    OOAttribute("title", "Str"),
                    OOAttribute("by", "Author"),
                ],
            ),
        ]
    )


def production_library() -> OODiagram:
    """The production team's model: books, reviews, higher-order refs."""
    return OODiagram(
        classes=[
            OOClass("Person", [OOAttribute("email", "Str")]),
            OOClass(
                "Manuscript",
                [OOAttribute("isbn", "Str"), OOAttribute("pages", "Int")],
            ),
            OOClass(
                "Review",
                [
                    OOAttribute("of", "Manuscript"),
                    OOAttribute("reviewer", "Person"),
                ],
            ),
            # A relationship about a relationship (higher-order): the
            # editor's decision cites a review.
            OOClass(
                "Decision",
                [
                    OOAttribute("based_on", "Review"),
                    OOAttribute("verdict", "Str"),
                ],
            ),
        ]
    )


def show(diagram: OODiagram, title: str) -> None:
    print(format_diagram(diagram, title))
    print()


def main() -> None:
    editorial = editorial_library()
    production = production_library()
    show(editorial, "editorial team")
    show(production, "production team")

    # The designer's assertion "a Reviewer is a Person", stated as an
    # elementary class diagram and merged like any other input — the
    # paper's point that user assertions *are* schemas, so stating
    # them in any order gives the same result.
    assertion = OODiagram(
        classes=[OOClass("Person"), OOClass("Reviewer", bases=("Person",))]
    )
    merged = merge_oo(editorial, production, assertion)
    show(merged, "merged library")

    # Order-independence, at the class-diagram level.
    other_order = merge_oo(assertion, production, editorial)
    print("merge is order-independent:", merged == other_order)

    # Person carries attributes from both teams; Author inherits them.
    print("Author's full attribute set:")
    for attr_name, attr_type in sorted(
        merged.all_attributes("Author").items()
    ):
        print(f"  {attr_name}: {attr_type}")


if __name__ == "__main__":
    main()
