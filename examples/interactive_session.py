#!/usr/bin/env python3
"""A scripted integration session — the paper's GUI workflow, headless.

Replays what a designer would do with the paper's prototype: inspect
the source schemas, get a conflict report, resolve homonyms/synonyms by
renaming, state inter-schema assertions, merge, and inspect an
explanation of what the merge did.  Run with::

    python examples/interactive_session.py
"""

from repro import Schema, isa, merge_report
from repro.core.diff import explain_merge
from repro.render.ascii_art import render_report
from repro.tools.conflicts import conflict_report
from repro.tools.rename import RenamingPlan


def main() -> None:
    # Source 1: an inventory system where "Jaguar" is a car.
    inventory = Schema.build(
        arrows=[
            ("Jaguar", "vin", "VIN"),
            ("Jaguar", "top-speed", "Kmh"),
            ("Car", "maker", "Manufacturer"),
        ],
        spec=[("Jaguar", "Car")],
    )
    # Source 2: a zoo database where "Jaguar" is an animal and "Feline"
    # is what source 3 calls "Cat".
    zoo = Schema.build(
        arrows=[
            ("Jaguar", "habitat", "Region"),
            ("Feline", "diet", "Diet"),
        ],
        spec=[("Jaguar", "Feline")],
    )
    # Source 3: a veterinary system.
    vet = Schema.build(
        arrows=[("Cat", "diet", "Diet"), ("Cat", "chart", "Chart")],
    )

    print("== step 1: conflict report ==")
    for line in conflict_report([inventory, zoo, vet]):
        print(f"  {line}")

    print("\n== step 2: resolve names ==")
    plan = (
        RenamingPlan()
        .rename_class("Jaguar", "Jaguar-animal", schema_index=1)
        .rename_class("Feline", "Cat", schema_index=1)
    )
    print(f"  plan: {plan!r}")
    inventory, zoo, vet = plan.apply([inventory, zoo, vet])
    for line in conflict_report([inventory, zoo, vet]):
        print(f"  after renaming: {line}")

    print("\n== step 3: assert cross-schema relationships ==")
    assertions = [isa("Jaguar-animal", "Cat")]
    print("  asserting Jaguar-animal ==> Cat")

    print("\n== step 4: merge ==")
    report = merge_report(inventory, zoo, vet, assertions=assertions)
    print(render_report(report))

    print("\n== step 5: what did the merge do to the zoo schema? ==")
    for line in explain_merge(report.merged, zoo):
        print(f"  {line}")

    # Order-independence means the session could have stated the
    # assertion first, merged vet before zoo, etc. — same result.
    alternative = merge_report(
        vet, zoo, inventory, assertions=assertions
    ).merged
    assert alternative == report.merged
    print("\nreplaying the session in a different order: same schema")


if __name__ == "__main__":
    main()
