#!/usr/bin/env python3
"""Designing a merge concept with the §6 validity criterion.

The paper ends section 6 with a rule: for a merge concept "to be valid
and well defined, it should have a definition in terms of an
information ordering".  This example uses the framework to (1) run the
criterion over the library's own orderings, (2) expose a plausible but
*broken* merge, and (3) drive the in-between annotated join, including
the reason it must merge whole collections rather than fold.  Run
with::

    python examples/custom_merge_concept.py
"""

from repro import Schema
from repro.core.framework import (
    ANNOTATED_ORDERING,
    KEYED_ORDERING,
    WEAK_ORDERING,
    WeakSchemaOrdering,
    annotated_join,
    annotated_join_all,
    merge_law_violations,
    validate_merge_concept,
)
from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.exceptions import IncompatibleSchemasError


def sample_schemas():
    registry = Schema.build(
        arrows=[("Dog", "license", "LicenseNo"), ("Dog", "owner", "Person")]
    )
    clinic = Schema.build(
        arrows=[("Dog", "age", "Int")], spec=[("Police-dog", "Dog")]
    )
    breeder = Schema.build(arrows=[("Dog", "kind", "Breed")])
    return [registry, clinic, breeder]


def main() -> None:
    samples = sample_schemas()

    print("=== 1. the shipped orderings pass the criterion ===")
    for ordering in (WEAK_ORDERING, KEYED_ORDERING):
        inputs = samples
        if ordering is KEYED_ORDERING:
            inputs = [KeyedSchema(schema) for schema in samples]
            inputs[0] = KeyedSchema(
                samples[0], {"Dog": KeyFamily.of({"license"})}
            )
        problems = validate_merge_concept(ordering, inputs)
        verdict = "valid" if not problems else f"INVALID: {problems}"
        print(f"{ordering.name}: {verdict}")
    print()

    print("=== 2. a plausible but broken merge fails it ===")

    class FirstWins(WeakSchemaOrdering):
        """'Merge' that resolves every overlap in favour of the first
        operand — the shape of many ad-hoc integrators."""

        name = "first-wins"

        def join(self, left, right):
            from repro.core.ordering import join

            # Union, but drop the right schema's arrows on classes the
            # left schema already has: left's view of shared classes
            # "wins".  Looks reasonable; is not an upper bound.
            kept = [
                (s, a, t)
                for (s, a, t) in right.arrows
                if s not in left.classes
            ]
            return join(
                left,
                Schema.build(
                    classes=right.classes, arrows=kept, spec=right.spec
                ),
            )

    problems = merge_law_violations(FirstWins(), samples)
    print(f"first-wins violations found: {len(problems)}; e.g.")
    for line in problems[:3]:
        print(f"  - {line}")
    print()

    print("=== 3. the in-between merge is n-ary by necessity ===")
    kennel_only = AnnotatedSchema.build(classes=["Kennel"])
    dog_only = AnnotatedSchema.build(classes=["Dog"])
    homes = AnnotatedSchema.build(arrows=[("Dog", "home", "Kennel", "1")])

    collection = annotated_join_all([kennel_only, dog_only, homes])
    print(
        "collection merge: Dog --home--> Kennel at constraint",
        collection.participation_of("Dog", "home", "Kennel"),
    )
    try:
        annotated_join(annotated_join(kennel_only, dog_only), homes)
    except IncompatibleSchemasError as error:
        print(f"binary fold fails: {error}")
    print()
    print(
        "the fold's intermediate result knows both Dog and Kennel and "
        "lacks the arrow — i.e. *forbids* it (constraint 0).  That is "
        "the paper's section 3 phenomenon again: intermediate merges "
        "asserting more than their inputs destroy order-independence, "
        "and the remedy is the same — merge whole collections."
    )
    print()
    print(
        "annotated ordering (orders + binary-join laws):",
        "valid"
        if not validate_merge_concept(
            ANNOTATED_ORDERING,
            [homes, AnnotatedSchema.build(arrows=[("Dog", "age", "Int", "0/1")])],
        )
        else "invalid",
    )


if __name__ == "__main__":
    main()
