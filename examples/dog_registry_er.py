#!/usr/bin/env python3
"""Figures 1-2 end to end: merging two dog-registry ER diagrams (§2, §7).

Two agencies model dogs as ER diagrams.  We translate both into the
general model (the Figure 1 → Figure 2 step), merge there, check that
strata were preserved, and translate back to a single ER diagram — the
paper's merge-by-translation pipeline.  Run with::

    python examples/dog_registry_er.py
"""

from repro import isa
from repro.models.er import (
    ERAttribute,
    ERDiagram,
    EREntity,
    ERRelationship,
    merge_er,
    to_schema,
)
from repro.render.ascii_art import render_schema


def main() -> None:
    # Agency one: the paper's Figure 1, verbatim.
    kennel_club = ERDiagram(
        entities=[
            EREntity(
                "Dog",
                attributes=[
                    ERAttribute("owner", "Person"),
                    ERAttribute("kind", "Breed"),
                    ERAttribute("age", "Int"),
                ],
            ),
            EREntity(
                "Police-dog",
                attributes=[ERAttribute("id-num", "Int")],
                isa=["Dog"],
            ),
            EREntity("Guide-dog", isa=["Dog"]),
            EREntity("Kennel", attributes=[ERAttribute("addr", "Place")]),
        ],
        relationships=[
            ERRelationship("Lives", roles={"occ": "Dog", "home": "Kennel"})
        ],
    )

    # Agency two: a vaccination registry with its own reading of Dog.
    health_board = ERDiagram(
        entities=[
            EREntity(
                "Dog",
                attributes=[
                    ERAttribute("chip", "ChipId"),
                    ERAttribute("age", "Int"),
                ],
            ),
            EREntity("Clinic", attributes=[ERAttribute("addr", "Place")]),
        ],
        relationships=[
            ERRelationship(
                "Vaccinated-at", roles={"dog": "Dog", "clinic": "Clinic"}
            )
        ],
    )

    print("agency 1 in the general model (the Figure 2 translation):")
    print(render_schema(to_schema(kennel_club).schema))
    print()

    merged = merge_er(
        kennel_club,
        health_board,
        assertions=[isa("Guide-dog", "Dog")],  # redundant, harmless
    )

    print("merged ER diagram:")
    for entity in merged.entities:
        attributes = ", ".join(
            f"{a.name}:{a.domain}" for a in entity.attributes
        )
        parents = f" isa {', '.join(entity.isa)}" if entity.isa else ""
        print(f"  entity {entity.name}({attributes}){parents}")
    for relationship in merged.relationships:
        roles = ", ".join(
            f"{role}->{target}" for role, target in relationship.roles
        )
        print(f"  relationship {relationship.name}[{roles}]")

    # The merged Dog has the union of both agencies' attributes.
    dog = merged.entity("Dog")
    names = {a.name for a in dog.attributes}
    assert names == {"owner", "kind", "age", "chip"}
    print("\nDog carries attributes from both agencies:", sorted(names))

    # Police-dog inherited everything and kept its own id-num.
    police = merged.entity("Police-dog")
    assert {a.name for a in police.attributes} == {"id-num"}
    assert police.isa == ("Dog",)
    print("Police-dog still specializes Dog, declaring only id-num")


if __name__ == "__main__":
    main()
