#!/usr/bin/env python3
"""Reproduce the paper's evaluation in one command.

Prints a claim-by-claim PASS table covering every figure and the §7
growth question — the qualitative half of EXPERIMENTS.md.  (The timed
half is ``pytest benchmarks/ --benchmark-only``.)  Run with::

    python examples/reproduce_paper.py
"""

import sys

from repro.analysis.report import main

if __name__ == "__main__":
    sys.exit(main())
