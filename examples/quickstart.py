#!/usr/bin/env python3
"""Quickstart: merge two overlapping schemas, order-independently.

Two departments describe dogs differently; the merge presents the union
of their information and — where they force an object to live in two
incomparable classes — invents an implicit class whose name records its
origin.  Run with::

    python examples/quickstart.py
"""

from repro import Schema, isa, merge_report, upper_merge
from repro.render.ascii_art import render_report


def main() -> None:
    # The registry's view: licensing data.
    registry = Schema.build(
        arrows=[
            ("Dog", "license", "LicenseNo"),
            ("Dog", "owner", "Person"),
            ("Dog", "breed", "Breed"),
        ],
    )

    # The vet's view: medical data, with a specialization hierarchy.
    clinic = Schema.build(
        arrows=[
            ("Dog", "name", "String"),
            ("Dog", "age", "Int"),
            ("Dog", "breed", "Breed"),
            ("Patient", "chart", "Chart"),
        ],
        spec=[("Dog", "Patient")],
    )

    # A designer assertion: service dogs are dogs.  Assertions are tiny
    # schemas; because the merge is a least upper bound, the order in
    # which they are stated can never matter.
    report = merge_report(
        registry, clinic, assertions=[isa("Service-dog", "Dog")]
    )
    print(render_report(report))

    # Associativity in action: any grouping gives the same schema.
    service_dogs = isa("Service-dog", "Dog")
    grouped_one = upper_merge(
        upper_merge(registry, clinic), service_dogs
    )
    grouped_two = upper_merge(clinic, service_dogs, registry)
    assert grouped_one == grouped_two == report.merged
    print("\nmerge is order-independent: all groupings agree")

    # Everything each input asserted is present in the merge.
    merged = report.merged
    assert merged.has_arrow("Dog", "license", "LicenseNo")
    assert merged.has_arrow("Dog", "chart", "Chart")  # via Dog ==> Patient
    assert merged.has_arrow("Service-dog", "age", "Int")  # via assertion
    print("no information was lost; inherited arrows were derived")


if __name__ == "__main__":
    main()
