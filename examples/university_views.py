#!/usr/bin/env python3
"""The Figure 9 scenario: integrating keyed university views (§5).

The graduate office tracks thesis committees (many-many); the dean's
office tracks advisors (one faculty member per student, expressed as
the key {victim}).  Merging under the assertion Advisor ==> Committee
derives the unique minimal satisfactory key assignment and enforces the
paper's constraint SK(Advisor) ⊇ SK(Committee).  Run with::

    python examples/university_views.py
"""

from repro import KeyFamily, KeyedSchema, Schema, isa, merge_keyed
from repro.instances.instance import Instance
from repro.instances.satisfaction import satisfies_keyed, violations_keyed
from repro.render.ascii_art import render_keyed


def main() -> None:
    committee_view = KeyedSchema(
        Schema.build(
            arrows=[
                ("Committee", "faculty", "Faculty"),
                ("Committee", "victim", "GS"),
            ]
        ),
        {"Committee": KeyFamily.of({"faculty", "victim"})},
    )
    advisor_view = KeyedSchema(
        Schema.build(
            arrows=[
                ("Advisor", "faculty", "Faculty"),
                ("Advisor", "victim", "GS"),
            ]
        ),
        {"Advisor": KeyFamily.of({"victim"})},
    )

    merged = merge_keyed(
        advisor_view,
        committee_view,
        assertions=[isa("Advisor", "Committee")],
    )
    print(render_keyed(merged, "merged university schema"))

    # The section 5 key constraint holds in the merge:
    assert merged.keys_of("Advisor").contains_family(
        merged.keys_of("Committee")
    )
    print("\nSK(Advisor) ⊇ SK(Committee): every committee key is an "
          "advisor superkey")

    # Instance-level meaning: one advisor per student, but several
    # committee memberships.
    good = Instance.build(
        extents={
            "Faculty": {"dr-jones", "dr-lee"},
            "GS": {"pat"},
            "Advisor": {"adv1"},
            "Committee": {"adv1", "com2"},
        },
        values={
            ("adv1", "faculty"): "dr-jones",
            ("adv1", "victim"): "pat",
            ("com2", "faculty"): "dr-lee",
            ("com2", "victim"): "pat",
        },
    )
    assert satisfies_keyed(good, merged)
    print("pat has one advisor and a two-member committee: OK")

    # Two advisors for the same student violate the {victim} key.
    bad = Instance.build(
        extents={
            "Faculty": {"dr-jones", "dr-lee"},
            "GS": {"pat"},
            "Advisor": {"adv1", "adv2"},
            "Committee": {"adv1", "adv2"},
        },
        values={
            ("adv1", "faculty"): "dr-jones",
            ("adv1", "victim"): "pat",
            ("adv2", "faculty"): "dr-lee",
            ("adv2", "victim"): "pat",
        },
    )
    problems = violations_keyed(bad, merged)
    assert problems
    print("\ntwo advisors for pat is rejected:")
    for problem in problems:
        print(f"  {problem}")


if __name__ == "__main__":
    main()
