#!/usr/bin/env python3
"""Resolving structural conflicts with restructuring (§7's "normal form").

One schema models an address as a flat string attribute; another gives
Address full entity structure.  The merge alone "will not resolve the
differences but present both interpretations" (§7) — so we first
*reify* the flat attribute into an entity, after which the merge
unifies the two views cleanly.  The same is shown for the
arrow-vs-relationship-node conflict.  Run with::

    python examples/structural_conflicts.py
"""

from repro import Schema, upper_merge
from repro.core.names import BaseName
from repro.render.ascii_art import render_schema
from repro.tools.conflicts import find_structural_conflicts
from repro.tools.restructure import reify_attribute, reify_relationship


def main() -> None:
    flat = Schema.build(
        arrows=[
            ("Person", "name", "Str"),
            ("Person", "address", "Str"),
        ]
    )
    structured = Schema.build(
        arrows=[
            ("Person", "name", "Str"),
            ("Person", "address", "Address"),
            ("Address", "street", "Str"),
            ("Address", "city", "Str"),
        ]
    )

    print("== without restructuring, both readings coexist ==")
    merged_raw = upper_merge(flat, structured)
    targets = merged_raw.min_classes(merged_raw.reach("Person", "address"))
    print(
        "Person.address points at:",
        ", ".join(sorted(str(t) for t in targets)),
    )
    # The merge invents an implicit class below {Str, Address}: both
    # interpretations are presented, which is rarely what was meant.

    print("\n== after reifying the flat attribute ==")
    reified = reify_attribute(flat, "Person", "address", "Address",
                              value_label="street")
    merged = upper_merge(reified, structured)
    targets = merged.min_classes(merged.reach("Person", "address"))
    assert targets == {BaseName("Address")}
    print(render_schema(merged, "unified schema"))

    print("\n== arrow vs relationship node ==")
    arrow_style = Schema.build(arrows=[("Dog", "lives-in", "Kennel")])
    node_style = Schema.build(
        arrows=[("Lives", "occ", "Dog"), ("Lives", "home", "Kennel")]
    )
    conflicts = find_structural_conflicts([arrow_style, node_style])
    print("detected conflicts:", [c.describe() for c in conflicts] or "none")
    promoted = reify_relationship(
        arrow_style, "Dog", "lives-in", "Lives", "occ", "home"
    )
    merged_rel = upper_merge(promoted, node_style)
    assert merged_rel == upper_merge(node_style)
    print("after reification the two views merge to the node form; "
          f"classes: {sorted(str(c) for c in merged_rel.classes)}")


if __name__ == "__main__":
    main()
