"""Serialization of library artifacts."""
