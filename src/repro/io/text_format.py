"""A compact, hand-writable text format for schemas.

JSON is exact but miserable to type; integration sessions want schema
files a designer can write in an editor.  The grammar is line-oriented
and mirrors the library's rendering conventions::

    # a comment
    class Kennel                      # declare an (isolated) class
    Police-dog ==> Dog                # specialization
    Dog --owner--> Person             # arrow (required)
    Dog --age?--> Int                 # arrow with participation 0/1
    key Transaction: {loc, at}, {card, at}   # key families

Class names may be bare words (no whitespace or reserved punctuation),
or quoted with double quotes when they need spaces; composite names
round-trip via the renderer's ``<A&B>`` (implicit) and ``[A|B]``
(generalization) forms.

:func:`parse` returns a plain :class:`~repro.core.schema.Schema`, an
:class:`~repro.core.lower.AnnotatedSchema` (when any ``?`` marks
appear) or a :class:`~repro.core.keys.KeyedSchema` (when any ``key``
lines appear); mixing ``?`` and ``key`` lines is rejected since no
merge consumes both at once.  :func:`format_schema` and friends are the
inverse writers; round trips are property-tested.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple, Union

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.names import (
    BaseName,
    ClassName,
    GenName,
    ImplicitName,
    sort_key,
)
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.exceptions import SerializationError

__all__ = [
    "parse",
    "format_schema",
    "format_annotated",
    "format_keyed",
]

Document = Union[Schema, AnnotatedSchema, KeyedSchema]

_ARROW_RE = re.compile(
    r"^(?P<source>.+?)\s*--(?P<label>.+?)(?P<opt>\?)?-->\s*(?P<target>.+)$"
)
_SPEC_RE = re.compile(r"^(?P<sub>.+?)\s*==>\s*(?P<sup>.+)$")
_KEY_RE = re.compile(r"^key\s+(?P<cls>.+?)\s*:\s*(?P<families>.+)$")
_CLASS_RE = re.compile(r"^class\s+(?P<cls>.+)$")


def _parse_name(text: str, line_number: int) -> ClassName:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return BaseName(text[1:-1])
    if text.startswith("<") and text.endswith(">"):
        members = [
            _parse_name(part, line_number) for part in text[1:-1].split("&")
        ]
        return ImplicitName(members)
    if text.startswith("[") and text.endswith("]"):
        members = [
            _parse_name(part, line_number) for part in text[1:-1].split("|")
        ]
        return GenName(members)
    if not text or re.search(r"[\s{}:,\"]", text):
        raise SerializationError(
            f"line {line_number}: invalid class name {text!r}"
        )
    return BaseName(text)


def _format_name(cls: ClassName) -> str:
    text = str(cls)
    if isinstance(cls, BaseName) and re.search(r"[\s{}:,]", text):
        return f'"{text}"'
    return text


def _strip_comment(line: str) -> str:
    # A '#' starts a comment unless inside quotes.
    out = []
    in_quotes = False
    for char in line:
        if char == '"':
            in_quotes = not in_quotes
        if char == "#" and not in_quotes:
            break
        out.append(char)
    return "".join(out).strip()


def parse(text: str) -> Document:
    """Parse the text format into the most specific artifact it uses."""
    classes: List[ClassName] = []
    arrows: List[Tuple[ClassName, str, ClassName, Participation]] = []
    spec: List[Tuple[ClassName, ClassName]] = []
    keys: Dict[ClassName, List[set]] = {}
    saw_optional = False

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        class_match = _CLASS_RE.match(line)
        if class_match:
            classes.append(_parse_name(class_match.group("cls"), line_number))
            continue
        key_match = _KEY_RE.match(line)
        if key_match:
            cls = _parse_name(key_match.group("cls"), line_number)
            families = key_match.group("families")
            parsed = []
            for chunk in re.findall(r"\{([^}]*)\}", families):
                labels = {
                    part.strip() for part in chunk.split(",") if part.strip()
                }
                if not labels:
                    raise SerializationError(
                        f"line {line_number}: empty key set"
                    )
                parsed.append(labels)
            if not parsed:
                raise SerializationError(
                    f"line {line_number}: key line declares no {{...}} sets"
                )
            keys.setdefault(cls, []).extend(parsed)
            continue
        arrow_match = _ARROW_RE.match(line)
        if arrow_match:
            label = arrow_match.group("label").strip()
            if not label:
                raise SerializationError(
                    f"line {line_number}: empty arrow label"
                )
            optional = arrow_match.group("opt") is not None
            saw_optional = saw_optional or optional
            arrows.append(
                (
                    _parse_name(arrow_match.group("source"), line_number),
                    label,
                    _parse_name(arrow_match.group("target"), line_number),
                    Participation.OPTIONAL
                    if optional
                    else Participation.REQUIRED,
                )
            )
            continue
        spec_match = _SPEC_RE.match(line)
        if spec_match:
            spec.append(
                (
                    _parse_name(spec_match.group("sub"), line_number),
                    _parse_name(spec_match.group("sup"), line_number),
                )
            )
            continue
        raise SerializationError(
            f"line {line_number}: cannot parse {raw.strip()!r}"
        )

    if saw_optional and keys:
        raise SerializationError(
            "a document cannot mix participation marks (?) with key lines"
        )
    if saw_optional:
        return AnnotatedSchema.build(
            classes=classes, arrows=arrows, spec=spec
        )
    plain = Schema.build(
        classes=classes,
        arrows=[(s, a, t) for s, a, t, _v in arrows],
        spec=spec,
    )
    if keys:
        return KeyedSchema(
            plain,
            {cls: KeyFamily(families) for cls, families in keys.items()},
            check_spec_monotone=False,
        )
    return plain


def _format_common(
    classes: "Iterable", spec_covers: "Iterable", lines: List[str]
) -> None:
    for cls in sorted(classes, key=sort_key):
        lines.append(f"class {_format_name(cls)}")
    for sub, sup in sorted(
        spec_covers, key=lambda e: (sort_key(e[0]), sort_key(e[1]))
    ):
        lines.append(f"{_format_name(sub)} ==> {_format_name(sup)}")


def format_schema(schema: Schema) -> str:
    """Write a plain schema; ``parse`` of the result reproduces it.

    Only non-inherited arrows to minimal targets are written — the
    closure is recomputed on parse, exactly as with :meth:`Schema.build`.
    """
    lines: List[str] = []
    _format_common(schema.classes, schema.spec_covers(), lines)
    for cls in schema.sorted_classes():
        inherited = set()
        for sup in schema.generalizations_of(cls):
            if sup != cls:
                inherited.update(
                    (label, target)
                    for (_s, label, target) in schema.arrows_from(sup)
                )
        for label in sorted(schema.out_labels(cls)):
            for target in sorted(
                schema.min_classes(schema.reach(cls, label)), key=sort_key
            ):
                if (label, target) not in inherited:
                    lines.append(
                        f"{_format_name(cls)} --{label}--> "
                        f"{_format_name(target)}"
                    )
    return "\n".join(lines) + "\n"


def format_annotated(schema: AnnotatedSchema) -> str:
    """Write an annotated schema with ``?`` participation marks."""
    from repro.core import relations

    lines: List[str] = []
    _format_common(schema.classes, relations.covers(schema.spec), lines)
    table = schema.participation_table()
    for (source, label, target) in sorted(
        table, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
    ):
        mark = "?" if table[(source, label, target)] == Participation.OPTIONAL else ""
        lines.append(
            f"{_format_name(source)} --{label}{mark}--> "
            f"{_format_name(target)}"
        )
    return "\n".join(lines) + "\n"


def format_keyed(keyed: KeyedSchema) -> str:
    """Write a keyed schema: the schema plus ``key`` lines."""
    lines = [format_schema(keyed.schema).rstrip("\n")]
    for cls in sorted(keyed.declared_classes(), key=sort_key):
        families = ", ".join(
            "{" + ", ".join(sorted(key)) + "}"
            for key in keyed.keys_of(cls)
        )
        lines.append(f"key {_format_name(cls)}: {families}")
    return "\n".join(lines) + "\n"
