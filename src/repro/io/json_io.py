"""JSON round-tripping for every library artifact.

Schemas, keyed schemas, annotated schemas, instances and ER diagrams
all serialise to plain JSON-compatible dictionaries and back.  The
encoding is versioned (``"format"`` field) and fully deterministic
(sorted lists everywhere) so that serialised schemas can be diffed,
checked into repositories and fed to the CLI.

Class names need care: implicit and generalization names are structured
values, encoded recursively as ``{"implicit": [...]}`` /
``{"gen": [...]}``; base names are plain strings.

Component snapshots (``repro.snapshot/1``) are the exception to the
"walk the object graph" rule: they encode a
:class:`~repro.perf.closure.DenseClosure` directly — the id table
writes each name exactly once and every relation row is integers (hex
bitmask strings), so serializing a service component never re-walks
schema objects.  The decoder validates the dense invariants before
trusting a document (see :func:`snapshot_from_dict`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.names import (
    BaseName,
    ClassName,
    GenName,
    ImplicitName,
    sort_key,
)
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.exceptions import SerializationError
from repro.instances.instance import Instance
from repro.models.er import ERAttribute, ERDiagram, EREntity, ERRelationship
from repro.models.oo import OOAttribute, OOClass, OODiagram
from repro.perf.closure import DenseClosure

__all__ = [
    "name_to_json",
    "name_from_json",
    "schema_to_dict",
    "schema_from_dict",
    "snapshot_to_dict",
    "snapshot_from_dict",
    "keyed_to_dict",
    "keyed_from_dict",
    "annotated_to_dict",
    "annotated_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "er_to_dict",
    "er_from_dict",
    "oo_to_dict",
    "oo_from_dict",
    "dumps",
    "canonical_dumps",
    "loads",
]

FORMAT_SCHEMA = "repro.schema/1"
FORMAT_SNAPSHOT = "repro.snapshot/1"
FORMAT_KEYED = "repro.keyed/1"
FORMAT_ANNOTATED = "repro.annotated/1"
FORMAT_INSTANCE = "repro.instance/1"
FORMAT_ER = "repro.er/1"
FORMAT_OO = "repro.oo/1"


def name_to_json(cls: ClassName) -> Union[str, Dict[str, Any]]:
    """Encode a class name (recursively for composite names)."""
    if isinstance(cls, BaseName):
        return cls.value
    if isinstance(cls, ImplicitName):
        return {
            "implicit": [
                name_to_json(m) for m in sorted(cls.members, key=sort_key)
            ]
        }
    if isinstance(cls, GenName):
        return {
            "gen": [name_to_json(m) for m in sorted(cls.members, key=sort_key)]
        }
    raise SerializationError(f"not a class name: {cls!r}")


def name_from_json(doc: Union[str, Dict[str, Any]]) -> ClassName:
    """Decode a class name."""
    if isinstance(doc, str):
        return BaseName(doc)
    if isinstance(doc, dict) and set(doc) == {"implicit"}:
        return ImplicitName(name_from_json(m) for m in doc["implicit"])
    if isinstance(doc, dict) and set(doc) == {"gen"}:
        return GenName(name_from_json(m) for m in doc["gen"])
    raise SerializationError(f"cannot decode class name from {doc!r}")


def _sorted_names(classes: Any) -> List:
    return [name_to_json(c) for c in sorted(classes, key=sort_key)]


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Encode a schema (full closed relations, deterministic order)."""
    return {
        "format": FORMAT_SCHEMA,
        "classes": _sorted_names(schema.classes),
        "arrows": [
            [name_to_json(s), label, name_to_json(t)]
            for s, label, t in schema.sorted_arrows()
        ],
        "spec": [
            [name_to_json(a), name_to_json(b)]
            for a, b in sorted(
                schema.strict_spec(),
                key=lambda e: (sort_key(e[0]), sort_key(e[1])),
            )
        ],
    }


def schema_from_dict(doc: Dict[str, Any]) -> Schema:
    """Decode a schema (closures recomputed, so hand-written JSON works)."""
    if doc.get("format") != FORMAT_SCHEMA:
        raise SerializationError(
            f"expected format {FORMAT_SCHEMA!r}, got {doc.get('format')!r}"
        )
    try:
        return Schema.build(
            classes=[name_from_json(c) for c in doc.get("classes", [])],
            arrows=[
                (name_from_json(s), label, name_from_json(t))
                for s, label, t in doc.get("arrows", [])
            ],
            spec=[
                (name_from_json(a), name_from_json(b))
                for a, b in doc.get("spec", [])
            ],
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed schema document: {exc}") from exc


def snapshot_to_dict(
    dense: DenseClosure, component: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Encode a dense component closure — each name once, rows as ints.

    The id table (``names``, position = dense id) is the serialization
    dictionary: ``succ`` holds one hex bitmask per id (the reflexive-
    transitive specialization closure) and ``reach`` one
    ``[source_id, label, hex_targets]`` triple per closed arrow row.
    Nothing here walks a :class:`~repro.core.schema.Schema` object
    graph — the encoder reads the dense arrays as-is, which is what
    makes service snapshot exports cheap.  *component* is an optional
    metadata block (shard id, generation, ...) passed through verbatim.

    >>> from repro.perf.closure import ClosureBuilder
    >>> state = (ClosureBuilder().add_spec_edge("Puppy", "Dog")
    ...          .add_arrow("Dog", "owner", "Person").dense_state())
    >>> doc = snapshot_to_dict(state)
    >>> doc["names"], doc["succ"]
    (['Puppy', 'Dog', 'Person'], ['3', '2', '4'])
    >>> snapshot_from_dict(doc) == state
    True
    """
    doc: Dict[str, Any] = {
        "format": FORMAT_SNAPSHOT,
        "names": [name_to_json(c) for c in dense.names],
        "succ": [format(mask, "x") for mask in dense.succ],
        "reach": [
            [src, label, format(tmask, "x")]
            for (src, label), tmask in sorted(dense.reach.items())
        ],
    }
    if component is not None:
        doc["component"] = dict(component)
    return doc


def snapshot_from_dict(doc: Dict[str, Any]) -> DenseClosure:
    """Decode a dense component closure, validating every invariant.

    Unlike :func:`schema_from_dict` (which re-closes, so hand-written
    documents are welcome), a snapshot claims to *be* closed — the
    decoder checks reflexivity, transitivity, antisymmetry, id ranges
    and W1/W2-closedness via :meth:`DenseClosure.validate
    <repro.perf.closure.DenseClosure.validate>` and refuses documents
    that fail, mapping the domain error onto
    :class:`~repro.exceptions.SerializationError`.
    """
    if doc.get("format") != FORMAT_SNAPSHOT:
        raise SerializationError(
            f"expected format {FORMAT_SNAPSHOT!r}, got {doc.get('format')!r}"
        )
    try:
        names = tuple(name_from_json(c) for c in doc.get("names", []))
        succ = tuple(int(mask, 16) for mask in doc.get("succ", []))
        reach: Dict[Tuple[int, str], int] = {}
        for src, label, tmask in doc.get("reach", []):
            if not isinstance(src, int) or not isinstance(label, str):
                raise SerializationError(
                    f"malformed reach row [{src!r}, {label!r}, ...]"
                )
            reach[(src, label)] = int(tmask, 16)
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed snapshot document: {exc}"
        ) from exc
    if len(set(names)) != len(names):
        raise SerializationError("snapshot id table repeats a name")
    dense = DenseClosure(names, succ, reach)
    try:
        dense.validate()
    except ValueError as exc:
        raise SerializationError(f"invalid snapshot: {exc}") from exc
    return dense


def keyed_to_dict(keyed: KeyedSchema) -> Dict[str, Any]:
    """Encode a keyed schema."""
    return {
        "format": FORMAT_KEYED,
        "schema": schema_to_dict(keyed.schema),
        "keys": [
            {
                "class": name_to_json(cls),
                "families": [sorted(k) for k in keyed.keys_of(cls)],
            }
            for cls in sorted(keyed.declared_classes(), key=sort_key)
        ],
    }


def keyed_from_dict(doc: Dict[str, Any]) -> KeyedSchema:
    """Decode a keyed schema."""
    if doc.get("format") != FORMAT_KEYED:
        raise SerializationError(
            f"expected format {FORMAT_KEYED!r}, got {doc.get('format')!r}"
        )
    schema = schema_from_dict(doc["schema"])
    keys = {
        name_from_json(entry["class"]): KeyFamily(entry["families"])
        for entry in doc.get("keys", [])
    }
    return KeyedSchema(schema, keys, check_spec_monotone=False)


def annotated_to_dict(schema: AnnotatedSchema) -> Dict[str, Any]:
    """Encode an annotated schema with its participation constraints."""
    table = schema.participation_table()
    return {
        "format": FORMAT_ANNOTATED,
        "classes": _sorted_names(schema.classes),
        "arrows": [
            [
                name_to_json(s),
                label,
                name_to_json(t),
                table[(s, label, t)].value,
            ]
            for s, label, t in sorted(
                table, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
            )
        ],
        "spec": [
            [name_to_json(a), name_to_json(b)]
            for a, b in sorted(
                ((a, b) for a, b in schema.spec if a != b),
                key=lambda e: (sort_key(e[0]), sort_key(e[1])),
            )
        ],
    }


def annotated_from_dict(doc: Dict[str, Any]) -> AnnotatedSchema:
    """Decode an annotated schema."""
    if doc.get("format") != FORMAT_ANNOTATED:
        raise SerializationError(
            f"expected format {FORMAT_ANNOTATED!r}, got {doc.get('format')!r}"
        )
    return AnnotatedSchema.build(
        classes=[name_from_json(c) for c in doc.get("classes", [])],
        arrows=[
            (
                name_from_json(s),
                label,
                name_from_json(t),
                Participation.parse(constraint),
            )
            for s, label, t, constraint in doc.get("arrows", [])
        ],
        spec=[
            (name_from_json(a), name_from_json(b))
            for a, b in doc.get("spec", [])
        ],
    )


def _encode_oid(oid: Any) -> Union[str, List]:
    """Encode an oid: strings pass through; tuples (the disjointified
    oids produced by federation) become JSON arrays, recursively."""
    if isinstance(oid, str):
        return oid
    if isinstance(oid, tuple):
        return [_encode_oid(part) for part in oid]
    raise SerializationError(
        f"only string and tuple oids are serialisable, got {oid!r}"
    )


def _decode_oid(doc: Any) -> Union[str, tuple]:
    if isinstance(doc, str):
        return doc
    if isinstance(doc, list):
        return tuple(_decode_oid(part) for part in doc)
    raise SerializationError(f"malformed oid document: {doc!r}")


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Encode an instance.  String oids pass through; tuple oids (the
    shape federation's disjointification produces) are encoded as
    arrays, so fused instances round-trip exactly too."""
    encode_oid = _encode_oid

    return {
        "format": FORMAT_INSTANCE,
        "oids": sorted((encode_oid(o) for o in instance.oids), key=repr),
        "extents": [
            {
                "class": name_to_json(cls),
                "members": sorted(
                    (encode_oid(o) for o in members), key=repr
                ),
            }
            for cls, members in sorted(
                instance.extents().items(), key=lambda kv: sort_key(kv[0])
            )
        ],
        "values": [
            [encode_oid(oid), label, encode_oid(target)]
            for (oid, label), target in sorted(
                instance.values().items(), key=lambda kv: (repr(kv[0]), )
            )
        ],
    }


def instance_from_dict(doc: Dict[str, Any]) -> Instance:
    """Decode an instance."""
    if doc.get("format") != FORMAT_INSTANCE:
        raise SerializationError(
            f"expected format {FORMAT_INSTANCE!r}, got {doc.get('format')!r}"
        )
    return Instance.build(
        oids=[_decode_oid(o) for o in doc.get("oids", [])],
        extents={
            name_from_json(entry["class"]): [
                _decode_oid(o) for o in entry["members"]
            ]
            for entry in doc.get("extents", [])
        },
        values={
            (_decode_oid(oid), label): _decode_oid(target)
            for oid, label, target in doc.get("values", [])
        },
    )


def er_to_dict(diagram: ERDiagram) -> Dict[str, Any]:
    """Encode an ER diagram."""
    return {
        "format": FORMAT_ER,
        "entities": [
            {
                "name": entity.name,
                "attributes": [
                    {"name": a.name, "domain": a.domain}
                    for a in entity.attributes
                ],
                "isa": sorted(entity.isa),
                "keys": [sorted(k) for k in entity.keys],
            }
            for entity in diagram.entities
        ],
        "relationships": [
            {
                "name": rel.name,
                "roles": {role: target for role, target in rel.roles},
                "cardinalities": {
                    role: cardinality
                    for role, cardinality in rel.cardinalities
                },
                "attributes": [
                    {"name": a.name, "domain": a.domain}
                    for a in rel.attributes
                ],
                "isa": sorted(rel.isa),
                "keys": [sorted(k) for k in rel.keys],
            }
            for rel in diagram.relationships
        ],
    }


def er_from_dict(doc: Dict[str, Any]) -> ERDiagram:
    """Decode an ER diagram."""
    if doc.get("format") != FORMAT_ER:
        raise SerializationError(
            f"expected format {FORMAT_ER!r}, got {doc.get('format')!r}"
        )
    entities = [
        EREntity(
            entry["name"],
            attributes=[
                ERAttribute(a["name"], a["domain"])
                for a in entry.get("attributes", [])
            ],
            isa=entry.get("isa", []),
            keys=entry.get("keys", []),
        )
        for entry in doc.get("entities", [])
    ]
    relationships = [
        ERRelationship(
            entry["name"],
            roles=entry["roles"],
            cardinalities=entry.get("cardinalities", {}),
            attributes=[
                ERAttribute(a["name"], a["domain"])
                for a in entry.get("attributes", [])
            ],
            isa=entry.get("isa", []),
            keys=entry.get("keys", []),
        )
        for entry in doc.get("relationships", [])
    ]
    return ERDiagram(entities=entities, relationships=relationships)


def oo_to_dict(diagram: "OODiagram") -> Dict[str, Any]:
    """Encode an object-oriented class diagram."""
    return {
        "format": FORMAT_OO,
        "classes": [
            {
                "name": cls.name,
                "attributes": [
                    {"name": a.name, "type": a.type_name}
                    for a in cls.attributes
                ],
                "bases": list(cls.bases),
            }
            for cls in sorted(diagram.classes, key=lambda c: c.name)
        ],
        "value_types": sorted(diagram.value_types),
    }


def oo_from_dict(doc: Dict[str, Any]) -> "OODiagram":
    """Decode an object-oriented class diagram."""
    if doc.get("format") != FORMAT_OO:
        raise SerializationError(
            f"expected format {FORMAT_OO!r}, got {doc.get('format')!r}"
        )
    try:
        classes = [
            OOClass(
                entry["name"],
                attributes=[
                    OOAttribute(a["name"], a["type"])
                    for a in entry.get("attributes", [])
                ],
                bases=entry.get("bases", []),
            )
            for entry in doc.get("classes", [])
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(
            f"malformed OO diagram document: {exc}"
        ) from exc
    return OODiagram(classes=classes, value_types=doc.get("value_types", []))


_DECODERS = {
    FORMAT_SCHEMA: schema_from_dict,
    FORMAT_SNAPSHOT: snapshot_from_dict,
    FORMAT_KEYED: keyed_from_dict,
    FORMAT_ANNOTATED: annotated_from_dict,
    FORMAT_INSTANCE: instance_from_dict,
    FORMAT_ER: er_from_dict,
    FORMAT_OO: oo_from_dict,
}

_ENCODERS = [
    (Schema, schema_to_dict),
    (DenseClosure, snapshot_to_dict),
    (KeyedSchema, keyed_to_dict),
    (AnnotatedSchema, annotated_to_dict),
    (Instance, instance_to_dict),
    (ERDiagram, er_to_dict),
    (OODiagram, oo_to_dict),
]


def dumps(artifact: Any, indent: int = 2) -> str:
    """Serialise any supported artifact to a JSON string."""
    for kind, encoder in _ENCODERS:
        if isinstance(artifact, kind):
            return json.dumps(encoder(artifact), indent=indent)
    raise SerializationError(
        f"cannot serialise objects of type {type(artifact).__name__}"
    )


def canonical_dumps(doc: Any) -> str:
    """One canonical JSON text per document: sorted keys, no whitespace.

    The checksum substrate of the durable registry
    (``repro.service.storage``): log records and snapshot files store a
    CRC of this encoding, so integrity verification must re-produce the
    byte-identical text on every platform.  ``ensure_ascii`` keeps the
    output 7-bit (checksums over codepoints, not encoder moods), and
    rejecting NaN keeps the text round-trippable by any JSON parser.

    >>> canonical_dumps({"b": 1, "a": [1, 2]})
    '{"a":[1,2],"b":1}'
    """
    return json.dumps(
        doc,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def loads(text: str) -> Any:
    """Deserialise a JSON string produced by :func:`dumps` (any format)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise SerializationError("top-level JSON value must be an object")
    decoder = _DECODERS.get(doc.get("format"))
    if decoder is None:
        raise SerializationError(
            f"unknown or missing format field: {doc.get('format')!r}"
        )
    return decoder(doc)
