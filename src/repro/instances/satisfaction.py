"""When does an instance satisfy a schema?

The readings come straight from the paper's informal glosses:

* ``p ==> q`` — "all the instances of p are also instances of q":
  ``extent(p) ⊆ extent(q)``;
* ``p --a--> q`` (plain schemas) — "any instance of the class p must
  have an a-attribute which is a member of the class q": every oid in
  ``extent(p)`` has a defined ``a``-value lying in ``extent(q)``;
* participation constraints (section 6) — constraint ``1`` as above;
  ``0/1`` only demands that a *defined* value be well-typed; ``0``
  (equivalently, an absent arrow in an annotated schema) *forbids* the
  value.  An oid may only carry labels its classes talk about;
* keys (section 5) — "if two people have the same social security
  number ... they are the same person": oids in one extent agreeing on
  every label of a key are equal.

Every check returns a list of human-readable violation strings (empty =
satisfied), with ``satisfies_*`` boolean wrappers; the coercion and
instance-merge theorems in the sibling modules are tested against these
definitions.
"""

from __future__ import annotations

from typing import List

from repro.core.keys import KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.names import sort_key
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.instances.instance import Instance

__all__ = [
    "violations_weak",
    "satisfies",
    "violations_keyed",
    "satisfies_keyed",
    "violations_annotated",
    "satisfies_annotated",
]


def violations_weak(instance: Instance, schema: Schema) -> List[str]:
    """All ways *instance* fails a plain (weak or proper) schema."""
    problems: List[str] = []
    for sub, sup in schema.strict_spec():
        stray = instance.extent(sub) - instance.extent(sup)
        if stray:
            problems.append(
                f"extent({sub}) ⊄ extent({sup}): {sorted(map(repr, stray))}"
            )
    for source, label, target in schema.sorted_arrows():
        target_extent = instance.extent(target)
        for oid in sorted(instance.extent(source), key=repr):
            value = instance.value(oid, label)
            if value is None:
                problems.append(
                    f"{oid!r} ∈ extent({source}) lacks required "
                    f"attribute {label!r}"
                )
            elif value not in target_extent:
                problems.append(
                    f"({oid!r}).{label} = {value!r} is not in "
                    f"extent({target})"
                )
    return problems


def satisfies(instance: Instance, schema: Schema) -> bool:
    """Does *instance* satisfy *schema*?"""
    return not violations_weak(instance, schema)


def violations_keyed(instance: Instance, keyed: KeyedSchema) -> List[str]:
    """Schema violations plus key-uniqueness violations (section 5)."""
    problems = violations_weak(instance, keyed.schema)
    for cls in sorted(keyed.declared_classes(), key=sort_key):
        family = keyed.keys_of(cls)
        members = sorted(instance.extent(cls), key=repr)
        for key in family.min_keys:
            labels = sorted(key)
            seen = {}
            for oid in members:
                values = tuple(instance.value(oid, label) for label in labels)
                if any(v is None for v in values):
                    continue
                other = seen.get(values)
                if other is not None and other != oid:
                    problems.append(
                        f"{other!r} and {oid!r} in extent({cls}) agree on "
                        f"key {labels} but are distinct objects"
                    )
                else:
                    seen[values] = oid
    return problems


def satisfies_keyed(instance: Instance, keyed: KeyedSchema) -> bool:
    """Does *instance* satisfy schema and keys?"""
    return not violations_keyed(instance, keyed)


def violations_annotated(
    instance: Instance, schema: AnnotatedSchema
) -> List[str]:
    """Violations of a participation-annotated schema (section 6).

    * required arrows behave like plain arrows;
    * a defined value for ``(oid, label)`` must be *licensed*: some
      class of the oid must have a present ``label``-arrow whose target
      extent contains the value.  In particular an oid all of whose
      classes lack the label entirely (constraint ``0`` everywhere —
      the paper's "may not" reading) may not carry it.

    The licensing rule is deliberately existential across the oid's
    classes: a stricter per-class closed-world reading would make the
    plain→annotated embedding unsound (an object typed through one
    class would violate a sibling class that never mentions the label)
    and would falsify the section 6 federation theorem.  See DESIGN.md
    §5 for the discussion.
    """
    problems: List[str] = []
    for sub, sup in schema.spec:
        if sub == sup:
            continue
        stray = instance.extent(sub) - instance.extent(sup)
        if stray:
            problems.append(
                f"extent({sub}) ⊄ extent({sup}): {sorted(map(repr, stray))}"
            )
    table = schema.participation_table()
    for (source, label, target), constraint in sorted(
        table.items(), key=lambda item: (sort_key(item[0][0]), item[0][1])
    ):
        if constraint != Participation.REQUIRED:
            continue
        target_extent = instance.extent(target)
        for oid in sorted(instance.extent(source), key=repr):
            value = instance.value(oid, label)
            if value is None:
                problems.append(
                    f"{oid!r} ∈ extent({source}) lacks required "
                    f"attribute {label!r}"
                )
            elif value not in target_extent:
                problems.append(
                    f"({oid!r}).{label} = {value!r} is not in "
                    f"extent({target})"
                )
    # Licensing discipline: every defined value must be covered by a
    # present arrow of one of the oid's classes.
    schema_classes = schema.classes
    for (oid, label), value in sorted(
        instance.values().items(), key=lambda kv: (repr(kv[0][0]), kv[0][1])
    ):
        oid_classes = [
            cls for cls in instance.classes_of(oid) if cls in schema_classes
        ]
        if not oid_classes:
            continue  # the oid is outside the schema's world
        licensed = False
        spoke = False
        for cls in oid_classes:
            targets = schema.reach_present(cls, label)
            if targets:
                spoke = True
            if any(value in instance.extent(t) for t in targets):
                licensed = True
                break
        if licensed:
            continue
        if not spoke:
            pretty = ", ".join(sorted(str(c) for c in oid_classes))
            problems.append(
                f"({oid!r}).{label} is defined but none of its classes "
                f"({pretty}) has a present {label!r}-arrow (constraint 0)"
            )
        else:
            problems.append(
                f"({oid!r}).{label} = {value!r} lies in no present "
                f"{label!r}-target of any of {oid!r}'s classes"
            )
    return problems


def satisfies_annotated(instance: Instance, schema: AnnotatedSchema) -> bool:
    """Does *instance* satisfy the annotated schema?"""
    return not violations_annotated(instance, schema)
