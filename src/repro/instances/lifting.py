"""Lifting instances into properized schemas.

Properization (upper or lower) only *adds* classes, so an instance of
the un-properized schema is almost an instance of the properized one —
except the new classes need extents.  Both directions have canonical
choices, and both are theorems checked by the test suite:

* **upper** (:func:`lift_to_properized`): the implicit class ``X̄``
  sits *below* its members, and an object belongs to it exactly when it
  belongs to every member — ``ext(X̄) = ⋂ ext(m)``.  With that choice
  every canonical arrow introduced by properization is satisfied,
  because properization only points ``p --a--> X̄`` when ``X ⊆ R(p,a)``,
  i.e. when values were already required to be in every member.
* **lower** (:func:`lift_to_lower_properized`): the generalization
  class ``Gen(M)`` sits *above* its members, and an object belongs to
  it when it belongs to some member — ``ext(Gen(M)) = ⋃ ext(m)`` —
  matching the alternative-typings reading of DESIGN.md §5.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.lower import AnnotatedSchema
from repro.core.names import ClassName, GenName, ImplicitName
from repro.core.schema import Schema
from repro.instances.instance import Instance, Oid

__all__ = ["lift_to_properized", "lift_to_lower_properized"]


def lift_to_properized(instance: Instance, properized: Schema) -> Instance:
    """Extend an instance with intersection extents for implicit classes.

    Classes of *properized* that are :class:`ImplicitName`\\ s and have
    no extent yet receive ``⋂ ext(member)``; everything else is kept
    verbatim.  If the instance already populates an implicit class the
    declared extent is kept (it may legitimately be smaller than the
    intersection only if the instance was built against a different
    schema — we keep the caller's data and let satisfaction checking
    judge it).
    """
    extents: Dict[ClassName, FrozenSet[Oid]] = instance.extents()
    for cls in properized.classes:
        if not isinstance(cls, ImplicitName) or cls in extents:
            continue
        member_extents = [instance.extent(m) for m in cls.members]
        if member_extents:
            extents[cls] = frozenset.intersection(*member_extents)
        else:
            extents[cls] = frozenset()
    return Instance(instance.oids, extents, instance.values())


def lift_to_lower_properized(
    instance: Instance, properized: AnnotatedSchema
) -> Instance:
    """Extend an instance with union extents for generalization classes."""
    extents: Dict[ClassName, FrozenSet[Oid]] = instance.extents()
    for cls in properized.classes:
        if not isinstance(cls, GenName) or cls in extents:
            continue
        combined: FrozenSet[Oid] = frozenset()
        for member in cls.members:
            combined |= instance.extent(member)
        extents[cls] = combined
    return Instance(instance.oids, extents, instance.values())
