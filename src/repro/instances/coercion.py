"""Instance coercion: the semantic payoff of the two merges.

Section 4: "if we merge a number of schemas, then any instance of the
merged schema can be considered to be an instance of any of the schemas
being merged" — coercion *downward* from an upper merge, implemented by
:func:`coerce` (restrict the extent table to the component's classes).

Section 6: for lower merges the direction flips — "any instances of the
schemas being merged would also be instances of the merged schema", and
unions of input instances are instances of the merge; see
:mod:`repro.instances.merging`.

Both statements are theorems of the construction rather than axioms,
and :func:`check_upper_coercion` / the property-test suite verify them
over generated inputs.
"""

from __future__ import annotations

from typing import List

from repro.core.ordering import is_sub
from repro.core.schema import Schema
from repro.instances.instance import Instance
from repro.instances.satisfaction import satisfies, violations_weak

__all__ = ["coerce", "check_upper_coercion"]


def coerce(instance: Instance, component: Schema) -> Instance:
    """View an instance of a (merged) schema as one of *component*.

    The coercion simply forgets extents of classes the component does
    not know about.  When *instance* satisfies any schema above
    *component* in the information ordering, the result satisfies
    *component*:

    * specializations of the component are specializations of the
      merge, so extent containments persist;
    * every arrow of the component is an arrow of the merge, so
      attribute totality and typing persist;
    * forgetting extents can break neither, because the component only
      constrains extents of its own classes.
    """
    return instance.restrict_classes(component.classes)


def check_upper_coercion(
    instance: Instance, merged: Schema, component: Schema
) -> List[str]:
    """Check the section 4 coercion theorem on concrete data.

    Returns violation strings; empty means the theorem held (as it must
    whenever ``component ⊑ merged`` and *instance* satisfies *merged* —
    a non-empty result on such inputs would be a library bug, which is
    exactly what the property tests hunt for).
    """
    problems: List[str] = []
    if not is_sub(component, merged):
        problems.append("component is not below the merged schema")
    if not satisfies(instance, merged):
        problems.append("instance does not satisfy the merged schema")
    if problems:
        return problems
    return violations_weak(coerce(instance, component), component)
