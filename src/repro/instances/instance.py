"""Database instances for the general model.

The paper grounds its semantics in instances ("this semantic basis
should be related to the notion of an instance of a schema", section 1,
deferring details to [5]).  We realise the standard reading:

* an **instance** is a finite set of object identifiers (*oids*),
* each class has an **extent** — the set of oids that are instances of
  that class,
* each oid has a partial **valuation**: ``value(oid, label)`` is the
  oid its ``label``-attribute points at.

Satisfaction of the various schema flavours lives in
:mod:`repro.instances.satisfaction`; this module is the data structure,
its builder and its structural validation (extents mention only known
oids, valuations mention only known oids and labels).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.names import ClassName, Label, name
from repro.exceptions import InstanceError

__all__ = ["Instance"]

Oid = Hashable
NameLike = Union[ClassName, str]


class Instance:
    """An immutable database instance.

    Build one from plain dicts::

        inst = Instance.build(
            extents={"Dog": {"d1", "d2"}, "Person": {"p1"}},
            values={("d1", "owner"): "p1", ("d2", "owner"): "p1"},
        )

    Oids may be any hashable values.  The oid universe is inferred as
    the union of everything mentioned, plus an optional explicit
    ``oids`` argument for objects belonging to no class.
    """

    __slots__ = ("_oids", "_extents", "_values", "_hash")

    def __init__(
        self,
        oids: FrozenSet[Oid],
        extents: Mapping[ClassName, FrozenSet[Oid]],
        values: Mapping[Tuple[Oid, Label], Oid],
    ):
        extent_table = {cls: frozenset(members) for cls, members in extents.items()}
        value_table = dict(values)
        for cls, members in extent_table.items():
            unknown = members - oids
            if unknown:
                raise InstanceError(
                    f"extent of {cls} mentions unknown oid(s) "
                    f"{sorted(map(repr, unknown))}"
                )
        for (oid, label), target in value_table.items():
            if oid not in oids:
                raise InstanceError(
                    f"valuation mentions unknown oid {oid!r}"
                )
            if target not in oids:
                raise InstanceError(
                    f"value of ({oid!r}, {label!r}) is unknown oid {target!r}"
                )
            if not isinstance(label, str) or not label:
                raise InstanceError(
                    f"valuation label must be a non-empty string, got {label!r}"
                )
        object.__setattr__(self, "_oids", frozenset(oids))
        object.__setattr__(self, "_extents", extent_table)
        object.__setattr__(self, "_values", value_table)
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    frozenset(oids),
                    frozenset(
                        (cls, members) for cls, members in extent_table.items()
                    ),
                    frozenset(value_table.items()),
                )
            ),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        extents: Mapping[NameLike, Iterable[Oid]] = (),
        values: Mapping[Tuple[Oid, Label], Oid] = (),
        oids: Iterable[Oid] = (),
    ) -> "Instance":
        """Build from plain data, inferring the oid universe."""
        extents = dict(extents)
        values = dict(values)
        universe = set(oids)
        named_extents: Dict[ClassName, FrozenSet[Oid]] = {}
        for cls_raw, members in extents.items():
            member_set = frozenset(members)
            named_extents[name(cls_raw)] = member_set
            universe |= member_set
        for (oid, _label), target in values.items():
            universe.add(oid)
            universe.add(target)
        return cls(frozenset(universe), named_extents, values)

    @classmethod
    def empty(cls) -> "Instance":
        """The instance with no objects."""
        return cls(frozenset(), {}, {})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oids(self) -> FrozenSet[Oid]:
        """Every object identifier in the instance."""
        return self._oids

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("Instance is immutable")

    def extent(self, cls: NameLike) -> FrozenSet[Oid]:
        """The extent of class *cls* (empty when the class is unknown)."""
        return self._extents.get(name(cls), frozenset())

    def extents(self) -> Dict[ClassName, FrozenSet[Oid]]:
        """A copy of the full extent table."""
        return dict(self._extents)

    def classes(self) -> FrozenSet[ClassName]:
        """Classes with a (possibly empty) declared extent."""
        return frozenset(self._extents)

    def value(self, oid: Oid, label: Label) -> Optional[Oid]:
        """The *label*-attribute of *oid*, or ``None`` when undefined."""
        return self._values.get((oid, label))

    def values(self) -> Dict[Tuple[Oid, Label], Oid]:
        """A copy of the full valuation."""
        return dict(self._values)

    def defined_labels(self, oid: Oid) -> FrozenSet[Label]:
        """Labels on which *oid*'s valuation is defined."""
        return frozenset(
            label for (o, label) in self._values if o == oid
        )

    def classes_of(self, oid: Oid) -> FrozenSet[ClassName]:
        """Every class whose extent contains *oid*."""
        return frozenset(
            cls for cls, members in self._extents.items() if oid in members
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        mine = {c: e for c, e in self._extents.items() if e}
        theirs = {c: e for c, e in other._extents.items() if e}
        return (
            self._oids == other._oids
            and mine == theirs
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._oids)

    def __repr__(self) -> str:
        populated = sum(1 for e in self._extents.values() if e)
        return (
            f"Instance({len(self._oids)} oid(s), {populated} populated "
            f"class(es), {len(self._values)} attribute value(s))"
        )

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def restrict_classes(self, keep: Iterable[NameLike]) -> "Instance":
        """Forget extents outside *keep* (oids and values are retained).

        This is the coercion step of
        :func:`repro.instances.coercion.coerce`.
        """
        kept = {name(c) for c in keep}
        return Instance(
            self._oids,
            {c: e for c, e in self._extents.items() if c in kept},
            self._values,
        )

    def with_prefixed_oids(self, prefix: str) -> "Instance":
        """Rename every oid to ``(prefix, oid)`` — disjointification.

        Used when unioning instances from different sources whose oid
        spaces might collide.
        """
        def rename(oid: Oid) -> Oid:
            return (prefix, oid)

        return Instance(
            frozenset(rename(o) for o in self._oids),
            {
                cls: frozenset(rename(o) for o in members)
                for cls, members in self._extents.items()
            },
            {
                (rename(o), label): rename(target)
                for (o, label), target in self._values.items()
            },
        )

    def union(self, other: "Instance") -> "Instance":
        """The union of two instances (oids, extents and valuations).

        Raises :class:`~repro.exceptions.InstanceError` when the two
        valuations disagree on a shared ``(oid, label)`` pair — unioning
        is only meaningful when shared oids denote the same object.
        """
        for (oid, label), target in self._values.items():
            conflicting = other._values.get((oid, label))
            if conflicting is not None and conflicting != target:
                raise InstanceError(
                    f"instances disagree on ({oid!r}, {label!r}): "
                    f"{target!r} vs {conflicting!r}"
                )
        merged_extents: Dict[ClassName, FrozenSet[Oid]] = dict(self._extents)
        for cls, members in other._extents.items():
            merged_extents[cls] = merged_extents.get(cls, frozenset()) | members
        merged_values = dict(self._values)
        merged_values.update(other._values)
        return Instance(
            self._oids | other._oids, merged_extents, merged_values
        )
