"""Instances of schemas: satisfaction, coercion and instance merging."""
