"""Cross-database object correspondence (the last part of section 5).

Keys do double duty in the paper: within one schema they constrain
instances, and *across* schemas being merged they "determine when an
object in the extent of a class in an instance of one schema
corresponds to an object in the extent of the same class in an instance
of another schema".  Section 5 walks through three situations for a
class ``Person`` shared by schemas ``G1`` and ``G2``:

1. **agreed** — both schemas declare ``{SS#}`` a key: objects
   correspond exactly when their social-security numbers match;
2. **imposed** — ``G1`` declares the key and ``G2`` merely has the
   ``SS#`` arrow: the merged schema's key places "an additional
   constraint on the extents of G2", and matching numbers identify
   objects no matter which source each came from;
3. **undeterminable** — ``G1`` declares the key but ``G2`` has no
   ``SS#`` arrow at all: "there is not way to tell when an object from
   the extent of Person in an instance of G1 corresponds to an object
   from the extent of Person in an instance of G2".

:func:`analyze_correspondence` classifies every (class, merged key)
pair into these cases (plus *identity-only* for keyless classes), and
:func:`fuse` runs the full data-integration pipeline the analysis
predicts: merge the keyed schemas, union the source instances —
keeping designated value classes' objects shared so key comparison is
meaningful across autonomous databases — and quotient by key-based
identity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.consistency import ConsistencyRelation
from repro.core.keys import KeyedSchema, merge_keyed
from repro.core.names import ClassName, Label, name, sort_key
from repro.core.schema import Schema
from repro.instances.instance import Instance, Oid
from repro.instances.merging import identify_by_keys

__all__ = [
    "CorrespondenceStatus",
    "KeyCorrespondence",
    "analyze_correspondence",
    "correspondence_report",
    "matching_pairs",
    "federate_shared",
    "FusionResult",
    "fuse",
]

NameLike = Union[ClassName, str]


class CorrespondenceStatus(enum.Enum):
    """How a merged key behaves across the input databases (section 5)."""

    #: Every input holding the class can evaluate the key and already
    #: declared it — sources agree on what identifies an object.
    AGREED = "agreed"
    #: Some input has the key's arrows but never declared the key; the
    #: merge imposes the identification criterion on its extents.
    IMPOSED = "imposed"
    #: Some input holding the class lacks one of the key's arrows;
    #: correspondence with that input's objects cannot be determined.
    UNDETERMINABLE = "undeterminable"
    #: The class has no key anywhere — objects correspond only by
    #: identity (the paper's "notion of object identity").
    IDENTITY_ONLY = "identity-only"


@dataclass(frozen=True)
class KeyCorrespondence:
    """The correspondence verdict for one class and one merged key.

    Index tuples refer to positions in the analyzed input sequence.
    ``declared_in`` lists inputs whose own family already contains the
    key; ``evaluable_in`` lists inputs whose class carries every key
    label as an arrow (so the key *can* be computed there);
    ``blind_in`` lists inputs holding the class that lack some label.
    For the ``IDENTITY_ONLY`` verdict the key is the empty set and all
    index tuples except ``holders`` are empty.
    """

    cls: ClassName
    key: FrozenSet[Label]
    holders: Tuple[int, ...]
    declared_in: Tuple[int, ...]
    evaluable_in: Tuple[int, ...]
    blind_in: Tuple[int, ...]
    status: CorrespondenceStatus

    def decides_correspondence(self) -> bool:
        """Can this key match objects across at least two inputs?"""
        return len(self.evaluable_in) >= 2

    def describe(self) -> str:
        """A one-line, human-readable account of the verdict."""
        pretty_key = "{" + ", ".join(sorted(self.key)) + "}"
        if self.status == CorrespondenceStatus.IDENTITY_ONLY:
            return (
                f"{self.cls}: no key in any input — objects correspond "
                "only by identity"
            )
        if self.status == CorrespondenceStatus.UNDETERMINABLE:
            blind = ", ".join(f"G{i + 1}" for i in self.blind_in)
            return (
                f"{self.cls}: key {pretty_key} cannot be evaluated in "
                f"{blind} — no way to tell which objects correspond"
            )
        if self.status == CorrespondenceStatus.IMPOSED:
            imposed = ", ".join(
                f"G{i + 1}"
                for i in self.evaluable_in
                if i not in self.declared_in
            )
            return (
                f"{self.cls}: key {pretty_key} is imposed on the extents "
                f"of {imposed} by the merge"
            )
        return (
            f"{self.cls}: key {pretty_key} is agreed by every input — "
            "matching values identify objects"
        )


def analyze_correspondence(
    inputs: Sequence[KeyedSchema],
    merged: Optional[KeyedSchema] = None,
    assertions: Iterable[Schema] = (),
) -> List[KeyCorrespondence]:
    """Classify every shared class's merged keys per section 5.

    Only classes held by at least two inputs are reported — object
    correspondence is an inter-database question.  *merged* may be
    passed to avoid recomputing the keyed merge; when omitted it is
    computed from *inputs* (with *assertions*).
    """
    keyed_inputs = list(inputs)
    if merged is None:
        merged = merge_keyed(*keyed_inputs, assertions=assertions)
    rows: List[KeyCorrespondence] = []
    for cls in sorted(merged.schema.classes, key=sort_key):
        holders = tuple(
            i
            for i, keyed in enumerate(keyed_inputs)
            if cls in keyed.schema.classes
        )
        if len(holders) < 2:
            continue
        family = merged.keys_of(cls)
        if family.is_empty():
            rows.append(
                KeyCorrespondence(
                    cls=cls,
                    key=frozenset(),
                    holders=holders,
                    declared_in=(),
                    evaluable_in=(),
                    blind_in=(),
                    status=CorrespondenceStatus.IDENTITY_ONLY,
                )
            )
            continue
        for key in sorted(family.min_keys, key=lambda k: (len(k), sorted(k))):
            declared = tuple(
                i
                for i in holders
                if keyed_inputs[i].keys_of(cls).is_superkey(key)
            )
            evaluable = tuple(
                i
                for i in holders
                if key <= keyed_inputs[i].schema.out_labels(cls)
            )
            blind = tuple(i for i in holders if i not in evaluable)
            if blind:
                status = CorrespondenceStatus.UNDETERMINABLE
            elif set(evaluable) - set(declared):
                status = CorrespondenceStatus.IMPOSED
            else:
                status = CorrespondenceStatus.AGREED
            rows.append(
                KeyCorrespondence(
                    cls=cls,
                    key=key,
                    holders=holders,
                    declared_in=declared,
                    evaluable_in=evaluable,
                    blind_in=blind,
                    status=status,
                )
            )
    return rows


def correspondence_report(rows: Iterable[KeyCorrespondence]) -> str:
    """Render an analysis as newline-separated, deterministic text."""
    return "\n".join(row.describe() for row in rows)


def matching_pairs(
    left: Instance,
    right: Instance,
    cls: NameLike,
    key: Iterable[Label],
) -> List[Tuple[Oid, Oid]]:
    """Objects of *cls* that correspond across two instances (section 5).

    The literal reading of the paper's sentence: "an object in the
    extent of Person in an instance of G1 corresponds to an object in
    the extent of the same class in an instance of G2 if they have the
    same social security number."  An object of *left* matches an
    object of *right* when both define every label of *key* and the
    values agree (key values — social-security numbers, dates — are
    assumed to be shared atomic oids, as in :func:`federate_shared`).

    Objects lacking some key attribute match nothing: their
    correspondence is undeterminable, not negative.  The result is
    deterministic (sorted by the oids' reprs).
    """
    class_name = name(cls)
    labels = sorted(key)
    if not labels:
        return []

    def key_tuple(instance: Instance, oid: Oid):
        values = tuple(instance.value(oid, label) for label in labels)
        return None if any(v is None for v in values) else values

    right_index: dict = {}
    for oid in sorted(right.extent(class_name), key=repr):
        values = key_tuple(right, oid)
        if values is not None:
            right_index.setdefault(values, []).append(oid)
    pairs: List[Tuple[Oid, Oid]] = []
    for oid in sorted(left.extent(class_name), key=repr):
        values = key_tuple(left, oid)
        if values is None:
            continue
        for other in right_index.get(values, ()):
            pairs.append((oid, other))
    return pairs


def federate_shared(
    sources: Sequence[Instance],
    value_classes: Iterable[NameLike] = (),
    prefix: str = "src",
) -> Instance:
    """Union source instances, sharing only designated value classes.

    Autonomous databases use private object identifiers, so unioning
    them must keep their oid spaces disjoint — *except* for atomic
    values (social-security numbers, dates, strings): a key comparison
    across databases is only meaningful when equal values really are
    the same oid.  Objects in the extent of any class in
    *value_classes* are therefore left unrenamed, while every other oid
    ``o`` of source ``i`` becomes ``(f"{prefix}{i}", o)``.

    Raises :class:`~repro.exceptions.InstanceError` (from
    :meth:`~repro.instances.instance.Instance.union`) if two sources
    disagree on a shared value's attribute — which cannot happen when
    value classes hold genuinely atomic objects.
    """
    shared_names = {name(cls) for cls in value_classes}
    combined = Instance.empty()
    for index, source in enumerate(sources):
        shared_oids: Set[Oid] = set()
        for cls in shared_names:
            shared_oids |= source.extent(cls)

        def rename(oid: Oid) -> Oid:
            return oid if oid in shared_oids else (f"{prefix}{index}", oid)

        renamed = Instance(
            frozenset(rename(o) for o in source.oids),
            {
                cls: frozenset(rename(o) for o in members)
                for cls, members in source.extents().items()
            },
            {
                (rename(o), label): rename(target)
                for (o, label), target in source.values().items()
            },
        )
        combined = combined.union(renamed)
    return combined


@dataclass(frozen=True)
class FusionResult:
    """The outcome of the section 5 data-integration pipeline.

    ``instance`` is the fused instance over ``merged``;
    ``objects_before``/``objects_after`` count oids around the key
    identification step, and ``correspondences`` records the per-class
    analysis that explains *why* objects did or did not unify.
    """

    merged: KeyedSchema
    instance: Instance
    objects_before: int
    objects_after: int
    correspondences: Tuple[KeyCorrespondence, ...]

    @property
    def identified(self) -> int:
        """How many objects were unified by key-based identity."""
        return self.objects_before - self.objects_after

    def summary(self) -> str:
        """A short, human-readable account of the fusion."""
        lines = [
            f"fused {self.objects_before} object(s) into "
            f"{self.objects_after} ({self.identified} identified by keys)",
        ]
        lines.extend(row.describe() for row in self.correspondences)
        return "\n".join(lines)


def fuse(
    sources: Sequence[Tuple[KeyedSchema, Instance]],
    value_classes: Iterable[NameLike] = (),
    assertions: Iterable[Schema] = (),
    consistency: Optional[ConsistencyRelation] = None,
) -> FusionResult:
    """Merge schemas and fuse their instances by key-based identity.

    The pipeline is exactly the one section 5 sketches:

    1. merge the keyed schemas (upper merge + minimal satisfactory key
       assignment), optionally constrained by *assertions* and vetted
       by a *consistency* relationship;
    2. union the source instances, keeping *value_classes* shared
       across sources (:func:`federate_shared`);
    3. quotient by the merged keys
       (:func:`~repro.instances.merging.identify_by_keys`) — objects
       agreeing on some merged key of a common class collapse, whether
       they came from the same source or different ones.

    The returned :class:`FusionResult` carries the correspondence
    analysis, so callers can see which classes deduplicated under an
    agreed key, which had a key imposed on them, and which remained
    undeterminable.
    """
    schemas = [keyed for keyed, _instance in sources]
    instances = [instance for _keyed, instance in sources]
    merged = merge_keyed(
        *schemas, assertions=assertions, consistency=consistency
    )
    combined = federate_shared(instances, value_classes=value_classes)
    fused = identify_by_keys(combined, merged)
    return FusionResult(
        merged=merged,
        instance=fused,
        objects_before=len(combined),
        objects_after=len(fused),
        correspondences=tuple(analyze_correspondence(schemas, merged=merged)),
    )
