"""Merging instances (sections 5 and 6; [16]).

Two distinct operations live here:

* :func:`federate` — the lower-merge story: take instances of the
  *input* schemas, disjointify their oid spaces, embed each into the
  lower merge (adding empty extents for foreign classes) and union
  them.  Section 6: "we would expect to be able to coalesce or take
  the union of a number of instances of the collection of schemas and
  use that as an instance of the merged schema."
* :func:`identify_by_keys` — the section 5 story of keys as inter-
  database object identity: "an object in the extent of Person in an
  instance of G1 corresponds to an object in the extent of Person in
  an instance of G2 if they have the same social security number."
  Oids in one class's extent that agree on all labels of one of the
  class's keys are identified (union-find over the agreement pairs),
  and the quotient instance is returned.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Tuple

from repro.core.keys import KeyedSchema
from repro.core.names import sort_key
from repro.exceptions import InstanceError
from repro.instances.instance import Instance, Oid

__all__ = ["federate", "identify_by_keys"]


def federate(
    instances: Sequence[Instance],
    disjointify: bool = True,
) -> Instance:
    """Union instances of federated sources into one instance.

    With *disjointify* (the default) each source's oids are prefixed
    with their source index, so accidental collisions across autonomous
    databases cannot conflate unrelated objects — identification should
    be done deliberately, via :func:`identify_by_keys`.  The result
    satisfies the lower merge of the sources' schemas whenever each
    input satisfied its own; the property tests exercise this theorem.
    """
    combined = Instance.empty()
    for index, instance in enumerate(instances):
        source = (
            instance.with_prefixed_oids(f"src{index}")
            if disjointify
            else instance
        )
        combined = combined.union(source)
    return combined


class _UnionFind:
    """Minimal union-find over arbitrary hashable items."""

    def __init__(self):
        self._parent: Dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left: Hashable, right: Hashable) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            # Deterministic representative: smaller repr wins.
            if repr(root_left) <= repr(root_right):
                self._parent[root_right] = root_left
            else:
                self._parent[root_left] = root_right


def identify_by_keys(
    instance: Instance, keyed: KeyedSchema
) -> Instance:
    """Quotient an instance by key-based object identity (section 5).

    For every keyed class, oids in its extent agreeing on every label of
    some minimal key are identified.  Identification is iterated to a
    fixpoint, because identifying two attribute values can make two
    previously distinct key tuples equal.  Raises
    :class:`~repro.exceptions.InstanceError` if identification forces
    one oid's attribute to take two genuinely different values —
    evidence the data violated the keys to begin with.
    """
    current = instance
    for _round in range(max(1, len(instance.oids)) + 1):
        uf = _UnionFind()
        for oid in current.oids:
            uf.find(oid)
        merged_any = False
        for cls in sorted(keyed.declared_classes(), key=sort_key):
            family = keyed.keys_of(cls)
            for key in family.min_keys:
                labels = sorted(key)
                seen: Dict[Tuple[Oid, ...], Oid] = {}
                for oid in sorted(current.extent(cls), key=repr):
                    values = tuple(
                        current.value(oid, label) for label in labels
                    )
                    if any(v is None for v in values):
                        continue
                    other = seen.get(values)
                    if other is None:
                        seen[values] = oid
                    elif uf.find(other) != uf.find(oid):
                        uf.union(other, oid)
                        merged_any = True
        if not merged_any:
            return current
        current = _quotient(current, uf)
    return current


def _quotient(instance: Instance, uf: _UnionFind) -> Instance:
    """Collapse an instance along a union-find's equivalence classes."""
    def rep(oid: Oid) -> Oid:
        return uf.find(oid)

    new_values: Dict[Tuple[Oid, str], Oid] = {}
    for (oid, label), target in instance.values().items():
        key = (rep(oid), label)
        new_target = rep(target)
        existing = new_values.get(key)
        if existing is not None and existing != new_target:
            raise InstanceError(
                f"key identification forces {key[0]!r}.{label} to be both "
                f"{existing!r} and {new_target!r}; the source data violates "
                "the keys"
            )
        new_values[key] = new_target
    return Instance(
        frozenset(rep(o) for o in instance.oids),
        {
            cls: frozenset(rep(o) for o in members)
            for cls, members in instance.extents().items()
        },
        new_values,
    )
