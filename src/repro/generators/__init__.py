"""Synthetic schema generators for tests and benchmarks."""
