"""Named benchmark workloads.

Benchmarks should not invent their parameters inline — the experiment
index in DESIGN.md refers to workloads by name, and EXPERIMENTS.md
records results against those names.  Each workload is a frozen recipe
(generator + parameters + seed) that always produces the same inputs.

Two kinds of workload live here:

* :class:`Workload` — a family of schemas to merge in one shot (the
  original benchmark inputs);
* :class:`RequestStream` — a family of *initial* schemas plus a seeded
  sequence of service requests (``view`` / ``query`` / ``register``)
  replayed against a long-lived :class:`repro.service.MergeService`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.schema import Schema
from repro.exceptions import UnknownWorkloadError
from repro.generators.pathological import (
    diamond_chain_schemas,
    nfa_blowup_pair,
)
from repro.generators.random_schemas import random_schema_family

__all__ = [
    "Workload",
    "WORKLOADS",
    "get_workload",
    "Request",
    "RequestStream",
    "REQUEST_STREAMS",
    "get_request_stream",
    "ConcurrentStream",
    "CONCURRENT_STREAMS",
    "get_concurrent_stream",
]


@dataclass(frozen=True)
class Workload:
    """A named, reproducible family of schemas to merge."""

    name: str
    description: str
    make: Callable[[], List[Schema]]

    def schemas(self) -> List[Schema]:
        """Produce the workload's schemas (always identical output)."""
        return self.make()


def _family(n_schemas, pool, classes, labels, arrow_d, spec_d, seed):
    def make() -> List[Schema]:
        return random_schema_family(
            n_schemas=n_schemas,
            pool_size=pool,
            n_classes=classes,
            n_labels=labels,
            arrow_density=arrow_d,
            spec_density=spec_d,
            seed=seed,
        )

    return make


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in [
        Workload(
            "views-small",
            "3 overlapping views, 12 classes each from a 20-class pool",
            _family(3, 20, 12, 4, 0.15, 0.12, seed=11),
        ),
        Workload(
            "views-medium",
            "4 overlapping views, 30 classes each from a 60-class pool",
            _family(4, 60, 30, 6, 0.12, 0.08, seed=23),
        ),
        Workload(
            "views-large",
            "5 overlapping views, 60 classes each from a 120-class pool",
            _family(5, 120, 60, 8, 0.08, 0.05, seed=37),
        ),
        Workload(
            "federation-wide",
            "8 thin sources, 10 classes each from a 40-class pool",
            _family(8, 40, 10, 3, 0.2, 0.1, seed=41),
        ),
        Workload(
            "diamonds-16",
            "16 stacked Figure-3 diamonds (linear implicit growth)",
            lambda: list(diamond_chain_schemas(16)),
        ),
        Workload(
            "nfa-8",
            "subset-construction adversary, k=8 (exponential Imp)",
            lambda: list(nfa_blowup_pair(8)),
        ),
        Workload(
            "nfa-12",
            "subset-construction adversary, k=12 (exponential Imp)",
            lambda: list(nfa_blowup_pair(12)),
        ),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name, with a helpful error."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; known: {known}"
        ) from None


# A service request: ("view", class-name-or-None), ("query", class-name)
# or ("register", Schema).  Plain tuples so streams serialize trivially
# into benchmark records.
Request = Tuple[str, Optional[object]]


@dataclass(frozen=True)
class RequestStream:
    """A named, reproducible service workload.

    ``make()`` returns ``(initial_schemas, requests)``: the schemas the
    service starts with and the request sequence to replay against it.
    ``register`` requests carry schemas drawn from the same generated
    family (held out of the initial set), so they genuinely overlap
    existing components the way late-arriving views do.
    """

    name: str
    description: str
    make: Callable[[], Tuple[List[Schema], List[Request]]]


def _mixed_requests(
    initial: List[Schema],
    held_out: List[Schema],
    n_requests: int,
    seed: int,
) -> List[Request]:
    """A seeded view/query mix with registrations interleaved evenly."""
    rng = random.Random(seed * 31 + 7)
    known = sorted({str(c) for g in initial for c in g.classes})
    requests: List[Request] = []
    for _ in range(n_requests):
        roll = rng.random()
        if roll < 0.45:
            requests.append(("view", rng.choice(known)))
        elif roll < 0.55:
            requests.append(("view", None))
        else:
            requests.append(("query", rng.choice(known)))
    # Interleave every held-out schema at evenly spaced positions so
    # each replay exercises registration (and the invalidation it
    # causes) mid-stream, deterministically.
    for i, schema in enumerate(held_out):
        at = (i + 1) * len(requests) // (len(held_out) + 1)
        requests.insert(at, ("register", schema))
    return requests


def _request_stream(
    n_initial: int,
    n_register: int,
    n_requests: int,
    pool: int,
    classes: int,
    labels: int,
    arrow_d: float,
    spec_d: float,
    seed: int,
) -> Callable[[], Tuple[List[Schema], List[Request]]]:
    def make() -> Tuple[List[Schema], List[Request]]:
        family = random_schema_family(
            n_schemas=n_initial + n_register,
            pool_size=pool,
            n_classes=classes,
            n_labels=labels,
            arrow_density=arrow_d,
            spec_density=spec_d,
            seed=seed,
        )
        initial, held_out = family[:n_initial], family[n_initial:]
        return initial, _mixed_requests(initial, held_out, n_requests, seed)

    return make


def _sharded_stream(
    n_pods: int,
    per_pod: int,
    n_register: int,
    n_requests: int,
    pool: int,
    classes: int,
    labels: int,
    arrow_d: float,
    spec_d: float,
    seed: int,
) -> Callable[[], Tuple[List[Schema], List[Request]]]:
    """*n_pods* disjoint class pools → *n_pods* independent components.

    Each pod draws from its own prefixed pool, so the service shards the
    registry into exactly ``n_pods`` components.  The first *n_register*
    pods generate one extra schema each (same pool, same shared ranks,
    so it is guaranteed compatible); those are held out and replayed as
    mid-stream registrations that each touch exactly one component.
    """

    def make() -> Tuple[List[Schema], List[Request]]:
        initial: List[Schema] = []
        held_out: List[Schema] = []
        for pod in range(n_pods):
            extra = 1 if pod < n_register else 0
            family = random_schema_family(
                n_schemas=per_pod + extra,
                pool_size=pool,
                n_classes=classes,
                n_labels=labels,
                arrow_density=arrow_d,
                spec_density=spec_d,
                seed=seed + 1009 * pod,
                prefix=f"P{pod:02d}_",
            )
            initial.extend(family[:per_pod])
            held_out.extend(family[per_pod:])
        return initial, _mixed_requests(initial, held_out, n_requests, seed)

    return make


REQUEST_STREAMS: Dict[str, RequestStream] = {
    stream.name: stream
    for stream in [
        RequestStream(
            "service-tiny",
            "12 initial schemas, 2 late registrations, 40 requests "
            "(fast enough for unit tests and CLI smoke)",
            _request_stream(
                n_initial=12,
                n_register=2,
                n_requests=40,
                pool=24,
                classes=8,
                labels=4,
                arrow_d=0.2,
                spec_d=0.1,
                seed=11,
            ),
        ),
        RequestStream(
            "service-small",
            "40 initial schemas, 4 late registrations, 120 requests",
            _request_stream(
                n_initial=40,
                n_register=4,
                n_requests=120,
                pool=60,
                classes=14,
                labels=6,
                arrow_d=0.2,
                spec_d=0.08,
                seed=7,
            ),
        ),
        RequestStream(
            "service-mixed-200",
            "200 initial schemas (the merge-engine acceptance family), "
            "8 late registrations, 400 requests",
            _request_stream(
                n_initial=200,
                n_register=8,
                n_requests=400,
                pool=60,
                classes=14,
                labels=6,
                arrow_d=0.2,
                spec_d=0.08,
                seed=7,
            ),
        ),
        RequestStream(
            "service-sharded-small",
            "6 pods x 5 schemas over disjoint pools (6 components), "
            "3 late registrations, 120 requests",
            _sharded_stream(
                n_pods=6,
                per_pod=5,
                n_register=3,
                n_requests=120,
                pool=20,
                classes=10,
                labels=5,
                arrow_d=0.2,
                spec_d=0.1,
                seed=13,
            ),
        ),
        RequestStream(
            "service-sharded-200",
            "20 pods x 10 schemas over disjoint pools (20 components), "
            "6 late registrations, 400 requests — the service acceptance "
            "workload",
            _sharded_stream(
                n_pods=20,
                per_pod=10,
                n_register=6,
                n_requests=400,
                pool=24,
                classes=12,
                labels=6,
                arrow_d=0.2,
                spec_d=0.08,
                seed=13,
            ),
        ),
    ]
}


def get_request_stream(name: str) -> RequestStream:
    """Look up a request stream by name, with a helpful error."""
    try:
        return REQUEST_STREAMS[name]
    except KeyError:
        known = ", ".join(sorted(REQUEST_STREAMS))
        raise UnknownWorkloadError(
            f"unknown request stream {name!r}; known: {known}"
        ) from None


@dataclass(frozen=True)
class ConcurrentStream:
    """A named, reproducible *concurrent* service workload.

    ``make()`` returns ``(initial_schemas, lanes)``: one seed schema per
    writer lane (so every lane's component exists up front and readers
    have classes to query), and one request list per concurrent writer.
    Lanes draw from disjoint prefixed class pools, so ``n_writers``
    writers touch ``n_writers`` distinct components — the workload the
    per-shard locking design is supposed to run in parallel, and the one
    ``benchmarks/bench_http.py`` drives at 1/4/16 writers.
    """

    name: str
    description: str
    n_writers: int
    make: Callable[[], Tuple[List[Schema], List[List[Request]]]]


def _concurrent_lanes(
    n_writers: int,
    per_writer: int,
    pool: int,
    classes: int,
    labels: int,
    arrow_d: float,
    spec_d: float,
    seed: int,
) -> Callable[[], Tuple[List[Schema], List[List[Request]]]]:
    def make() -> Tuple[List[Schema], List[List[Request]]]:
        initial: List[Schema] = []
        lanes: List[List[Request]] = []
        for writer in range(n_writers):
            family = random_schema_family(
                n_schemas=per_writer + 1,
                pool_size=pool,
                n_classes=classes,
                n_labels=labels,
                arrow_density=arrow_d,
                spec_density=spec_d,
                seed=seed + 7919 * writer,
                prefix=f"W{writer:02d}_",
            )
            initial.append(family[0])
            lanes.append([("register", schema) for schema in family[1:]])
        return initial, lanes

    return make


def _concurrent(n_writers: int, per_writer: int = 8) -> ConcurrentStream:
    return ConcurrentStream(
        f"concurrent-disjoint-{n_writers}",
        f"{n_writers} writer lanes x {per_writer} registrations, each "
        "lane on its own disjoint class pool (one component per lane)",
        n_writers,
        _concurrent_lanes(
            n_writers=n_writers,
            per_writer=per_writer,
            pool=20,
            classes=10,
            labels=5,
            arrow_d=0.2,
            spec_d=0.1,
            seed=29,
        ),
    )


CONCURRENT_STREAMS: Dict[str, ConcurrentStream] = {
    stream.name: stream
    for stream in [_concurrent(1), _concurrent(4), _concurrent(16)]
}


def get_concurrent_stream(name: str) -> ConcurrentStream:
    """Look up a concurrent stream by name, with a helpful error."""
    try:
        return CONCURRENT_STREAMS[name]
    except KeyError:
        known = ", ".join(sorted(CONCURRENT_STREAMS))
        raise UnknownWorkloadError(
            f"unknown concurrent stream {name!r}; known: {known}"
        ) from None
