"""Named benchmark workloads.

Benchmarks should not invent their parameters inline — the experiment
index in DESIGN.md refers to workloads by name, and EXPERIMENTS.md
records results against those names.  Each workload is a frozen recipe
(generator + parameters + seed) that always produces the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.schema import Schema
from repro.generators.pathological import (
    diamond_chain_schemas,
    nfa_blowup_pair,
)
from repro.generators.random_schemas import random_schema_family

__all__ = ["Workload", "WORKLOADS", "get_workload"]


@dataclass(frozen=True)
class Workload:
    """A named, reproducible family of schemas to merge."""

    name: str
    description: str
    make: Callable[[], List[Schema]]

    def schemas(self) -> List[Schema]:
        """Produce the workload's schemas (always identical output)."""
        return self.make()


def _family(n_schemas, pool, classes, labels, arrow_d, spec_d, seed):
    def make() -> List[Schema]:
        return random_schema_family(
            n_schemas=n_schemas,
            pool_size=pool,
            n_classes=classes,
            n_labels=labels,
            arrow_density=arrow_d,
            spec_density=spec_d,
            seed=seed,
        )

    return make


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in [
        Workload(
            "views-small",
            "3 overlapping views, 12 classes each from a 20-class pool",
            _family(3, 20, 12, 4, 0.15, 0.12, seed=11),
        ),
        Workload(
            "views-medium",
            "4 overlapping views, 30 classes each from a 60-class pool",
            _family(4, 60, 30, 6, 0.12, 0.08, seed=23),
        ),
        Workload(
            "views-large",
            "5 overlapping views, 60 classes each from a 120-class pool",
            _family(5, 120, 60, 8, 0.08, 0.05, seed=37),
        ),
        Workload(
            "federation-wide",
            "8 thin sources, 10 classes each from a 40-class pool",
            _family(8, 40, 10, 3, 0.2, 0.1, seed=41),
        ),
        Workload(
            "diamonds-16",
            "16 stacked Figure-3 diamonds (linear implicit growth)",
            lambda: list(diamond_chain_schemas(16)),
        ),
        Workload(
            "nfa-8",
            "subset-construction adversary, k=8 (exponential Imp)",
            lambda: list(nfa_blowup_pair(8)),
        ),
        Workload(
            "nfa-12",
            "subset-construction adversary, k=12 (exponential Imp)",
            lambda: list(nfa_blowup_pair(12)),
        ),
    ]
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name, with a helpful error."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
