"""Adversarial schema families with exploding implicit-class counts.

The conclusion of the paper concedes: "it may be possible to construct
pathological examples in which the number of implicit classes is very
large; however, we do not think these are likely to occur in practice."
This module constructs exactly such examples, so the IMPGROWTH
benchmark can chart both halves of that sentence.

The construction piggybacks on the classic NFA subset-construction
blow-up.  The ``Imp`` fixpoint of section 4.2 computes all reach sets
``R(X, a)`` closed under label application — precisely the subset
construction of an NFA whose transition relation is the arrow relation.
The language "the k-th symbol from the end is ``a``" needs an NFA of
``k + 1`` states but a DFA of ``2^k`` states; encoded as a schema
(:func:`nfa_blowup_schema`), its weak self-merge reaches ``2^(k-1)``
distinct subsets, all antichains, so ``Imp`` — and with it the
properized schema — grows exponentially.

:func:`diamond_chain_schemas` is the gentler adversary: ``k`` stacked
Figure-3 diamonds whose merge needs exactly ``k`` implicit classes —
linear growth, the "likely in practice" regime.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.schema import Schema

__all__ = [
    "nfa_blowup_schema",
    "nfa_blowup_pair",
    "diamond_chain_schemas",
    "expected_nfa_implicit_count",
]


def nfa_blowup_schema(k: int) -> Schema:
    """A single weak schema whose ``Imp`` has ``2^(k-1) - k`` members.

    Classes ``q0 .. qk`` mimic the NFA for "the k-th symbol from the
    end is *a*": label ``a`` sends ``q0`` to both ``q0`` and ``q1``
    (the nondeterministic guess) and ``qi`` to ``qi+1``; label ``b``
    sends ``q0`` to ``q0`` and ``qi`` to ``qi+1``.  There are no
    specialization edges, so every multi-element reach set is its own
    antichain and lands in ``Imp`` verbatim.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    arrows: List[Tuple[str, str, str]] = [
        ("q0", "a", "q0"),
        ("q0", "a", "q1"),
        ("q0", "b", "q0"),
    ]
    for i in range(1, k):
        arrows.append((f"q{i}", "a", f"q{i + 1}"))
        arrows.append((f"q{i}", "b", f"q{i + 1}"))
    return Schema.build(
        classes=[f"q{i}" for i in range(k + 1)], arrows=arrows
    )


def expected_nfa_implicit_count(k: int) -> int:
    """The exact size of ``Imp`` for :func:`nfa_blowup_schema`.

    Reach sets from ``{q0}`` are ``{q0, q1} ∪ S`` shifted along the
    chain; counting the distinct multi-element subsets reachable gives
    ``2^(k-1)`` sets containing ``q0`` and ``q1``-shifts, minus the
    singletons.  Computed here by brute force for small ``k`` (the
    benchmark asserts the measured count equals this function, keeping
    the formulaic claim honest).
    """
    from repro.core.implicit import implicit_sets

    return len(implicit_sets(nfa_blowup_schema(k)))


def nfa_blowup_pair(k: int) -> Tuple[Schema, Schema]:
    """Two innocuous-looking proper schemas whose *merge* blows up.

    The first schema carries the deterministic chain arrows, the second
    adds only the nondeterministic ``q0 --a--> q1`` guess.  Each is
    proper on its own (every reach set is a singleton); their weak
    merge is :func:`nfa_blowup_schema`, so all the implicit classes
    appear only at merge time — the scenario the paper's conclusion
    worries about.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    chain_arrows: List[Tuple[str, str, str]] = [
        ("q0", "a", "q0"),
        ("q0", "b", "q0"),
    ]
    for i in range(1, k):
        chain_arrows.append((f"q{i}", "a", f"q{i + 1}"))
        chain_arrows.append((f"q{i}", "b", f"q{i + 1}"))
    first = Schema.build(
        classes=[f"q{i}" for i in range(k + 1)], arrows=chain_arrows
    )
    second = Schema.build(arrows=[("q0", "a", "q1")])
    return first, second


def diamond_chain_schemas(k: int) -> Tuple[Schema, Schema]:
    """``k`` independent Figure-3 diamonds: merge needs exactly ``k``
    implicit classes — the benign, linear-growth regime.

    Schema one asserts ``Ci ==> Ai`` and ``Ci ==> Bi``; schema two
    gives ``Ai`` and ``Bi`` ``a``-arrows to ``Pi`` and ``Qi``.  Each
    diamond independently forces one implicit class below
    ``{Pi, Qi}``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    spec = []
    arrows = []
    for i in range(k):
        spec.append((f"C{i}", f"A{i}"))
        spec.append((f"C{i}", f"B{i}"))
        arrows.append((f"A{i}", "a", f"P{i}"))
        arrows.append((f"B{i}", "a", f"Q{i}"))
    return Schema.build(spec=spec), Schema.build(arrows=arrows)
