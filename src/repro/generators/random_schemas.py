"""Seeded random generation of schemas, keyed schemas and instances.

The paper evaluates nothing empirically; its conclusion explicitly
leaves open "how many implicit classes can be introduced in the merge"
on realistic inputs.  These generators supply the missing workload: a
deterministic (seeded) family of weak/proper schemas whose size, label
vocabulary, arrow density, specialization density and inter-schema
overlap are all dials, so benchmarks can sweep them and property tests
can fuzz the algebra.

Design notes
------------
* Specialization edges are generated *between rank levels* of a random
  ranking, which guarantees acyclicity by construction — every random
  schema is compatible with itself and the builder never has to reject.
* Overlapping families (:func:`random_schema_family`) draw their
  classes from one shared pool so that merging them actually exercises
  class unification, the way real view integration does.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.implicit import properize
from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.participation import Participation
from repro.core.schema import Schema
from repro.instances.instance import Instance

__all__ = [
    "random_weak_schema",
    "random_proper_schema",
    "random_schema_family",
    "random_keyed_schema",
    "random_keyed_family",
    "random_annotated_schema",
    "random_instance",
]


def _class_pool(count: int, prefix: str) -> List[str]:
    return [f"{prefix}{i:03d}" for i in range(count)]


def _label_pool(count: int) -> List[str]:
    return [f"l{i:02d}" for i in range(count)]


def random_weak_schema(
    n_classes: int = 12,
    n_labels: int = 4,
    arrow_density: float = 0.15,
    spec_density: float = 0.15,
    seed: int = 0,
    class_pool: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
) -> Schema:
    """A random weak schema with roughly the requested densities.

    ``arrow_density`` is the probability that a given (source, label)
    pair carries an arrow (to a random target); ``spec_density`` the
    probability of a specialization edge between two classes of
    adjacent rank.  All randomness comes from *seed* (or an explicit
    *rng*), so every call is reproducible.
    """
    rng = rng or random.Random(seed)
    pool = list(class_pool) if class_pool is not None else _class_pool(n_classes, "C")
    if len(pool) < n_classes:
        raise ValueError(
            f"class pool of {len(pool)} cannot supply {n_classes} classes"
        )
    classes = rng.sample(pool, n_classes)
    labels = _label_pool(n_labels)

    # Acyclic specialization: assign ranks, edges only go upward in rank.
    ranks: Dict[str, int] = {cls: rng.randrange(4) for cls in classes}
    spec: List[Tuple[str, str]] = []
    for sub in classes:
        for sup in classes:
            if ranks[sub] < ranks[sup] and rng.random() < spec_density:
                spec.append((sub, sup))

    arrows: List[Tuple[str, str, str]] = []
    for source in classes:
        for label in labels:
            if rng.random() < arrow_density:
                target = rng.choice(classes)
                arrows.append((source, label, target))
    return Schema.build(classes=classes, arrows=arrows, spec=spec)


def random_proper_schema(
    n_classes: int = 12,
    n_labels: int = 4,
    arrow_density: float = 0.15,
    spec_density: float = 0.15,
    seed: int = 0,
) -> Schema:
    """A random *proper* schema: generate weak, then properize.

    The result may contain implicit classes; callers wanting pristine
    user classes only can strip them, but for merge benchmarks the
    properized form is the realistic input (it is what a previous merge
    would have produced).
    """
    return properize(
        random_weak_schema(
            n_classes=n_classes,
            n_labels=n_labels,
            arrow_density=arrow_density,
            spec_density=spec_density,
            seed=seed,
        )
    )


def random_schema_family(
    n_schemas: int = 3,
    pool_size: int = 30,
    n_classes: int = 12,
    n_labels: int = 4,
    arrow_density: float = 0.15,
    spec_density: float = 0.1,
    seed: int = 0,
    prefix: str = "C",
) -> List[Schema]:
    """A family of schemas over one shared class pool.

    Because the schemas draw from the same pool, they overlap — same
    classes with different arrows, partial hierarchies — which is what
    makes their merge non-trivial.  Specialization ranks are shared
    across the family so the union of their specialization relations is
    acyclic: the generated family is always *compatible* (benchmarks
    that want incompatibility construct it deliberately).

    *prefix* names the pool; two families with different prefixes share
    no class names at all, which is how the service benchmarks build
    workloads with many independent components.
    """
    rng = random.Random(seed)
    pool = _class_pool(pool_size, prefix)
    ranks = {cls: rng.randrange(4) for cls in pool}
    family: List[Schema] = []
    labels = _label_pool(n_labels)
    for _index in range(n_schemas):
        classes = rng.sample(pool, n_classes)
        spec = [
            (sub, sup)
            for sub in classes
            for sup in classes
            if ranks[sub] < ranks[sup] and rng.random() < spec_density
        ]
        arrows = [
            (source, label, rng.choice(classes))
            for source in classes
            for label in labels
            if rng.random() < arrow_density
        ]
        family.append(Schema.build(classes=classes, arrows=arrows, spec=spec))
    return family


def random_keyed_schema(
    n_classes: int = 10,
    n_labels: int = 5,
    key_probability: float = 0.5,
    seed: int = 0,
) -> KeyedSchema:
    """A random schema with random (valid) key families attached.

    Keys are random non-empty subsets of each class's out-labels, so
    the structural side conditions of section 5 hold by construction.
    The assignment is *not* forced to be specialization-monotone — it
    represents raw designer input, which the merge then completes.
    """
    rng = random.Random(seed)
    schema = random_weak_schema(
        n_classes=n_classes,
        n_labels=n_labels,
        arrow_density=0.35,
        spec_density=0.1,
        seed=rng.randrange(2**31),
    )
    keys: Dict[str, KeyFamily] = {}
    for cls in schema.sorted_classes():
        labels = sorted(schema.out_labels(cls))
        if not labels or rng.random() > key_probability:
            continue
        n_keys = rng.randrange(1, 3)
        families = []
        for _k in range(n_keys):
            size = rng.randrange(1, min(3, len(labels)) + 1)
            families.append(rng.sample(labels, size))
        keys[str(cls)] = KeyFamily(families)
    return KeyedSchema(schema, keys, check_spec_monotone=False)


def random_keyed_family(
    n_schemas: int = 2,
    pool_size: int = 16,
    n_classes: int = 8,
    n_labels: int = 5,
    key_probability: float = 0.5,
    seed: int = 0,
) -> List[KeyedSchema]:
    """A *compatible* family of keyed schemas over one shared pool.

    The schema parts come from :func:`random_schema_family` (shared
    ranks ⇒ no cross-schema specialization cycles); each then gets
    random valid keys as in :func:`random_keyed_schema`.
    """
    rng = random.Random(seed)
    family = random_schema_family(
        n_schemas=n_schemas,
        pool_size=pool_size,
        n_classes=n_classes,
        n_labels=n_labels,
        arrow_density=0.3,
        spec_density=0.1,
        seed=rng.randrange(2**31),
    )
    keyed: List[KeyedSchema] = []
    for schema in family:
        keys: Dict[str, KeyFamily] = {}
        for cls in schema.sorted_classes():
            labels = sorted(schema.out_labels(cls))
            if not labels or rng.random() > key_probability:
                continue
            families = []
            for _k in range(rng.randrange(1, 3)):
                size = rng.randrange(1, min(3, len(labels)) + 1)
                families.append(rng.sample(labels, size))
            keys[str(cls)] = KeyFamily(families)
        keyed.append(KeyedSchema(schema, keys, check_spec_monotone=False))
    return keyed


def random_annotated_schema(
    n_classes: int = 10,
    n_labels: int = 4,
    arrow_density: float = 0.2,
    optional_fraction: float = 0.4,
    seed: int = 0,
) -> AnnotatedSchema:
    """A random participation-annotated schema for lower-merge tests."""
    rng = random.Random(seed)
    base = random_weak_schema(
        n_classes=n_classes,
        n_labels=n_labels,
        arrow_density=arrow_density,
        spec_density=0.1,
        seed=rng.randrange(2**31),
    )
    annotated_arrows = []
    for source, label, target in base.sorted_arrows():
        constraint = (
            Participation.OPTIONAL
            if rng.random() < optional_fraction
            else Participation.REQUIRED
        )
        annotated_arrows.append((source, label, target, constraint))
    return AnnotatedSchema.build(
        classes=base.classes, arrows=annotated_arrows, spec=base.spec
    )


def random_instance(
    schema: Schema,
    objects_per_class: int = 3,
    seed: int = 0,
) -> Instance:
    """A random instance *satisfying* a proper schema.

    Populates leaf-ward extents first and propagates membership up the
    specialization order; every required attribute is given a value in
    the arrow's target extent (creating a fresh target object when the
    extent would otherwise be empty).  The result satisfies the schema
    by construction, which the test suite cross-checks against
    :func:`repro.instances.satisfaction.satisfies`.
    """
    rng = random.Random(seed)
    extents: Dict[object, set] = {cls: set() for cls in schema.classes}
    counter = 0

    def fresh(cls) -> str:
        nonlocal counter
        counter += 1
        return f"o{counter}@{cls}"

    # Seed each class with its own objects, closed upward along spec.
    for cls in schema.sorted_classes():
        for _i in range(rng.randrange(1, objects_per_class + 1)):
            oid = fresh(cls)
            for sup in schema.generalizations_of(cls):
                extents[sup].add(oid)

    values: Dict[Tuple[str, str], str] = {}
    # Satisfy arrows: iterate to a fixpoint because giving an object an
    # attribute may add objects to extents with their own obligations.
    for _round in range(10 * len(schema.classes) + 10):
        satisfied = True
        for source, label, target in schema.sorted_arrows():
            target_pool = sorted(extents[target])
            for oid in sorted(extents[source]):
                if (oid, label) in values:
                    # Existing value must also land in this target (and,
                    # to keep spec containment intact, in everything
                    # above it).
                    if values[(oid, label)] not in extents[target]:
                        for sup in schema.generalizations_of(target):
                            extents[sup].add(values[(oid, label)])
                        satisfied = False
                    continue
                satisfied = False
                if target_pool:
                    values[(oid, label)] = rng.choice(target_pool)
                else:
                    new_oid = fresh(target)
                    for sup in schema.generalizations_of(target):
                        extents[sup].add(new_oid)
                    target_pool = [new_oid]
                    values[(oid, label)] = new_oid
        if satisfied:
            break
    return Instance.build(
        extents={cls: frozenset(members) for cls, members in extents.items()},
        values=values,
    )
