"""Dense integer ids for class names — the substrate of the bit kernels.

Hash-consed interning (:mod:`repro.perf.interning`) makes structurally
equal names pointer-equal; a :class:`NameSpace` goes one step further
and maps each name a component has seen onto a *dense* id — ``0, 1, 2,
...`` in first-appearance order.  Dense ids buy two things the interned
objects alone cannot:

* any **set of classes** becomes one Python ``int`` used as a bitset
  (bit *i* set ⇔ class *i* is a member), so the closure kernels in
  :mod:`repro.core.relations` replace per-element ``set`` operations
  with bulk ``|``/``&``/``~`` that run word-parallel at C speed;
* the id table is the **serialization dictionary** for dense component
  snapshots (:mod:`repro.service.snapshots`): each name is encoded
  once, at its id's position, and every relation row is just integers.

A ``NameSpace`` is append-only in normal operation — an id, once
assigned, always denotes the same name, which is what makes masks
stored anywhere (closure rows, memo keys, snapshots) stable.  The one
sanctioned exception is :meth:`truncate`, which rolls back a *freshly
interned tail* during the atomic-``add_schema`` failure path of
:class:`repro.perf.closure.ClosureBuilder`.

>>> from repro.core.names import name
>>> space = NameSpace()
>>> space.intern(name("Dog")), space.intern(name("Animal"))
(0, 1)
>>> space.intern(name("Dog"))  # idempotent: same name, same id
0
>>> space.encode([name("Dog"), name("Animal")])  # a 2-class bitset
3
>>> [str(cls) for cls in space.decode(0b10)]
['Animal']
>>> twin = space.clone()
>>> twin.intern(name("Cat"))
2
>>> len(space), len(twin)  # clones share no state
(2, 3)
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.names import ClassName

__all__ = ["NameSpace"]


class NameSpace:
    """A bidirectional ``ClassName ↔ dense id`` table for one component.

    Ids are assigned contiguously from 0 in interning order, so a
    ``NameSpace`` of *n* names pairs with length-*n* lists of masks
    (``succ``/``pred`` in the builder) and ``n``-bit bitsets.  Lookup
    in both directions is O(1): a dict for ``name → id``, a list for
    ``id → name``.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self, names: Iterable[ClassName] = ()) -> None:
        self._ids: Dict[ClassName, int] = {}
        self._names: List[ClassName] = []
        for cls in names:
            self.intern(cls)

    def intern(self, cls: ClassName) -> int:
        """The dense id of *cls*, assigning the next free id if new."""
        idx = self._ids.get(cls)
        if idx is None:
            idx = len(self._names)
            self._ids[cls] = idx
            self._names.append(cls)
        return idx

    def id_of(self, cls: ClassName) -> Optional[int]:
        """The id of *cls*, or ``None`` if it was never interned."""
        return self._ids.get(cls)

    def name_of(self, ident: int) -> ClassName:
        """The name with dense id *ident* (raises IndexError if unused)."""
        return self._names[ident]

    def names(self) -> Tuple[ClassName, ...]:
        """Every interned name, position = dense id (a snapshot)."""
        return tuple(self._names)

    def encode(self, classes: Iterable[ClassName]) -> int:
        """The bitset of an (already interned) collection of names.

        Raises :class:`KeyError` on a name this space has never seen —
        encoding must not allocate ids as a side effect.
        """
        mask = 0
        ids = self._ids
        for cls in classes:
            mask |= 1 << ids[cls]
        return mask

    def decode(self, mask: int) -> Iterator[ClassName]:
        """The names whose bits are set in *mask*, ascending by id."""
        names = self._names
        while mask:
            low = mask & -mask
            yield names[low.bit_length() - 1]
            mask ^= low

    def clone(self) -> "NameSpace":
        """An independent copy — same ids, no shared mutable state."""
        twin = NameSpace()
        twin._ids = dict(self._ids)
        twin._names = list(self._names)
        return twin

    def truncate(self, size: int) -> None:
        """Forget every id ``>= size`` (rollback of a fresh tail only).

        The caller must guarantee that no retained structure still
        references the dropped ids; :class:`ClosureBuilder.add_schema
        <repro.perf.closure.ClosureBuilder>` does, because the ids it
        rolls back were interned by the very call that failed.
        """
        for cls in self._names[size:]:
            del self._ids[cls]
        del self._names[size:]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, cls: object) -> bool:
        return cls in self._ids

    def __repr__(self) -> str:
        return f"NameSpace(size={len(self._names)})"
