"""Hash-consing intern tables — the substrate of the merge engine.

The core algebra hashes and compares :class:`~repro.core.names.ClassName`
values millions of times inside closure computations; profiling the
200-schema ``join_all`` sweep shows ~3.7M Python-level ``__eq__`` calls
resolving set-membership collisions.  CPython's ``PyObject_RichCompareBool``
short-circuits on *identity* before ever calling ``__eq__``, so making
structurally equal values pointer-equal (classic hash-consing) removes
that entire cost without touching any call site.

This module is deliberately free of ``repro.core`` imports: the name
classes themselves intern through these tables, so anything here that
imported the core would be a cycle.

Tables are *bounded*.  When a table exceeds its capacity the oldest
entries are evicted (insertion order — Python dicts are ordered), which
only weakens the pointer-equality fast path: structural ``__eq__`` and
``__hash__`` remain correct for every value, interned or not, so
eviction can never change a result.  That is the cache-invalidation
story in one line — interned values are immutable, so there is nothing
to invalidate, only memory to bound.  See ``docs/PERFORMANCE.md``.

>>> table = InternTable("doc.example", maxsize=64, register=False)
>>> canonical = table.put(("a", 1), ["payload"])
>>> table.get(("a", 1)) is canonical  # callers get() before they put()
True
>>> table.get(("b", 2)) is None       # miss: construct, then put
True
>>> table.stats()["hits"], table.stats()["misses"]
(1, 1)
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

__all__ = [
    "InternTable",
    "intern_stats",
    "clear_intern_tables",
]


_REGISTRY: Dict[str, "InternTable"] = {}


class InternTable:
    """A bounded identity table mapping structural keys to canonical values.

    ``get`` / ``put`` are kept primitive (no factory callback) because
    the hot callers construct the value inline only on a miss and the
    extra closure allocation of a factory API is measurable there.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "evictions", "_table")

    def __init__(self, name: str, maxsize: int = 65536, register: bool = True):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: Dict[Hashable, Any] = {}
        if register:
            _REGISTRY[name] = self

    def get(self, key: Hashable) -> Optional[Any]:
        """The canonical value for *key*, or ``None`` if not interned."""
        value = self._table.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Register *value* as the canonical representative of *key*."""
        table = self._table
        if len(table) >= self.maxsize:
            # Evict the oldest quarter in one sweep; per-insert single
            # evictions would make every put near capacity pay a dict
            # reshuffle.  pop(..., None) tolerates a concurrent sweep on
            # another thread deleting the same snapshot keys — eviction
            # is best-effort, correctness never depends on it.
            drop = max(1, self.maxsize // 4)
            for old in list(table)[:drop]:
                table.pop(old, None)
            self.evictions += drop
        table[key] = value
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are telemetry)."""
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._table),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def intern_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size statistics for every registered intern table."""
    return {name: table.stats() for name, table in sorted(_REGISTRY.items())}


def clear_intern_tables() -> None:
    """Empty every registered intern table (safe: eviction-equivalent)."""
    for table in _REGISTRY.values():
        table.clear()
