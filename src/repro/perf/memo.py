"""Bounded memo caches for the decision procedures of the ordering.

``is_sub``, ``compatible`` and ``annotated_leq`` are called in tight
loops by merge pipelines, property tests and the analysis layer, almost
always on a small working set of schemas (the inputs of the current
merge and their intermediates).  Because :class:`~repro.core.schema.Schema`
and :class:`~repro.core.lower.AnnotatedSchema` are immutable with
precomputed hashes — and interned, so cache-key comparisons usually
short-circuit on identity — memoizing these predicates is sound with no
invalidation protocol at all: a key can never refer to a value that
later changes.  The only resource to manage is memory, hence the LRU
bound.

Like :mod:`repro.perf.interning`, this module must not import
``repro.core`` (the core imports *it*) — :mod:`repro.sentinels` and
:mod:`repro.obs` are both core-free, so the shared miss sentinel and
the telemetry gauges are safe imports.

Registered caches publish ``memo.hits`` / ``memo.misses`` callback
gauges (labelled ``cache=<name>``) into the global
:data:`repro.obs.metrics.REGISTRY`: the registry reads the live
counters at snapshot time, so the ``get``/``put`` hot path pays
nothing for being observable.

>>> cache = MemoCache("doc.example", maxsize=32, register=False)
>>> cache.get("key") is MemoCache.MISS  # a sentinel, so None is cacheable
True
>>> cache.put("key", None)
>>> cache.get("key") is None
True
>>> cache.stats()["hits"], cache.stats()["misses"]
(1, 1)
"""

from __future__ import annotations

from typing import Any, Dict, Hashable

from repro.obs.instrument import register_cache_gauges
from repro.sentinels import Sentinel

__all__ = ["MemoCache", "cache_stats", "clear_memo_caches"]


_REGISTRY: Dict[str, "MemoCache"] = {}


class MemoCache:
    """A bounded LRU mapping from hashable keys to computed results.

    ``get`` returns the :data:`MemoCache.MISS` sentinel on a miss so
    that ``None``/``False`` results are cacheable.
    """

    MISS = Sentinel("MemoCache.MISS")

    __slots__ = ("name", "maxsize", "hits", "misses", "_table")

    def __init__(self, name: str, maxsize: int = 16384, register: bool = True):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._table: Dict[Hashable, Any] = {}
        if register:
            _REGISTRY[name] = self
            register_cache_gauges(
                "memo",
                name,
                {
                    "hits": lambda cache=self: cache.hits,
                    "misses": lambda cache=self: cache.misses,
                },
            )

    def get(self, key: Hashable) -> Any:
        table = self._table
        # pop-then-reinsert refreshes recency (dicts preserve insertion
        # order) in single GIL-atomic dict operations, so a concurrent
        # get/put on another thread cannot observe a half-applied
        # refresh or raise KeyError.
        value = table.pop(key, MemoCache.MISS)
        if value is MemoCache.MISS:
            self.misses += 1
        else:
            self.hits += 1
            table[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        table = self._table
        while len(table) >= self.maxsize:
            try:
                table.pop(next(iter(table)), None)
            except (StopIteration, RuntimeError):
                # Another thread emptied or resized the table mid-scan;
                # eviction is best-effort, correctness never depends on it.
                break
        table[key] = value
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._table),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size statistics for every registered memo cache."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


def clear_memo_caches() -> None:
    """Empty every registered memo cache (results are recomputed cold)."""
    for cache in _REGISTRY.values():
        cache.clear()
