"""The one wall-clock timing helper behind every benchmark path.

``benchmarks/_timing.py`` (pytest conftest + runner) and
:mod:`repro.service.bench` all measure through :func:`time_call`, so a
change to timing semantics (warmup handling, per-run setup, what
"best" means) lands everywhere at once and trajectory files stay
byte-compatible across entry points.

>>> timing = time_call(lambda: sum(range(100)), repeat=2, warmup=0)
>>> sorted(timing)
['best_s', 'mean_s', 'repeat', 'runs']
>>> timing["repeat"], len(timing["runs"])
(2, 2)

An *observe* callback receives each timed duration, which is how the
benchmarks feed :class:`repro.obs.metrics.Histogram` instruments
without a second clock:

>>> samples = []
>>> _ = time_call(lambda: None, repeat=3, warmup=0, observe=samples.append)
>>> len(samples)
3
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["time_call"]


def time_call(
    fn: Callable[[], Any],
    repeat: int = 5,
    warmup: int = 1,
    setup: Optional[Callable[[], Any]] = None,
    observe: Optional[Callable[[float], Any]] = None,
) -> Dict[str, Any]:
    """Best-of-*repeat* wall-clock timing of ``fn()``.

    *setup* (when given) runs before every timed call, outside the
    clock — used e.g. to clear the engine caches so a benchmark measures
    the cold path on purpose.  *observe* (when given) receives every
    timed duration in seconds, after the clock stops — the hook
    telemetry histograms attach to.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    runs: List[float] = []
    for _ in range(repeat):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        runs.append(elapsed)
        if observe is not None:
            observe(elapsed)
    return {
        "best_s": min(runs),
        "mean_s": sum(runs) / len(runs),
        "repeat": repeat,
        "runs": runs,
    }
