"""Pre-engine reference implementations, preserved verbatim in spirit.

These are the cold-path algorithms the merge engine replaced, kept for
two jobs:

* the **benchmark baseline** — ``benchmarks/runner.py`` times
  :func:`reference_join_all` against the engine's ``join_all`` and
  records the speedup in ``BENCH_merge_engine.json``;
* the **property-test oracle** — ``tests/test_perf_engine.py`` asserts
  on randomized schemas that the interned/memoized/incremental paths
  return values *equal* to these direct computations.

They intentionally re-derive everything from scratch: the naive
per-arrow ``below × above`` W1/W2 closure, a separate compatibility
pass that closes the union specialization a second time, and per-arrow
participation lookups in the lower merge.  Do not "optimize" them —
their slowness is their purpose.

>>> from repro.core.ordering import join_all
>>> from repro.core.schema import Schema
>>> pair = [Schema.build(arrows=[("A", "f", "B")]),
...         Schema.build(spec=[("B", "C")])]
>>> reference_join_all(pair) == join_all(pair)
True
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core import relations
from repro.core.lower import AnnotatedSchema, complete_classes
from repro.core.participation import Participation, glb_all, leq
from repro.core.schema import Arrow, Schema
from repro.exceptions import IncompatibleSchemasError

__all__ = [
    "reference_arrow_closure",
    "reference_join_all",
    "reference_is_sub",
    "reference_compatible",
    "reference_annotated_leq",
    "reference_lower_merge",
]


def reference_arrow_closure(arrows, spec):
    """The naive one-pass W1/W2 closure: ``below(p) × above(q)`` per arrow."""
    below = relations.predecessors_map(spec)
    above = relations.successors_map(spec)
    closed = set()
    for source, label, target in arrows:
        for sub in below.get(source, {source}):
            for sup in above.get(target, {target}):
                closed.add((sub, label, sup))
    return frozenset(closed)


def reference_join_all(schemas: Iterable[Schema]) -> Schema:
    """The pre-engine ``join_all``: compatibility pass + full re-closure."""
    schema_list: List[Schema] = list(schemas)
    if not schema_list:
        return Schema.empty()
    all_classes: Set = set()
    union_spec: Set = set()
    all_arrows: Set[Arrow] = set()
    for g in schema_list:
        all_classes |= g.classes
        union_spec |= g.spec
        all_arrows |= g.arrows
    # Pass 1: close the union specialization for the compatibility check.
    check = relations.reflexive_transitive_closure(union_spec, all_classes)
    if not relations.is_antisymmetric(check):
        cycle = relations.find_cycle(check) or ()
        raise IncompatibleSchemasError(
            "schemas are incompatible; their combined specializations "
            "contain the cycle " + " ==> ".join(str(c) for c in cycle),
            cycle=cycle,
        )
    # Pass 2: the old Schema.build recomputed the very same closure.
    closed_spec = relations.reflexive_transitive_closure(union_spec, all_classes)
    closed_arrows = reference_arrow_closure(all_arrows, closed_spec)
    # The old build path wrapped validated components directly (no
    # validation, no interning); bypass Schema.__new__ so the baseline
    # neither pays the new validation nor benefits from the intern table.
    classes = frozenset(all_classes)
    instance = object.__new__(Schema)
    object.__setattr__(instance, "_classes", classes)
    object.__setattr__(instance, "_arrows", closed_arrows)
    object.__setattr__(instance, "_spec", closed_spec)
    object.__setattr__(instance, "_hash", hash((classes, closed_arrows, closed_spec)))
    object.__setattr__(instance, "_reach_cache", None)
    return instance


def reference_is_sub(left: Schema, right: Schema) -> bool:
    """The unmemoized component-wise containment test."""
    return (
        left.classes <= right.classes
        and left.arrows <= right.arrows
        and left.spec <= right.spec
    )


def reference_compatible(*schemas: Schema) -> bool:
    """The unmemoized compatibility check (full union closure)."""
    all_classes: Set = set()
    union_spec: Set = set()
    for g in schemas:
        all_classes |= g.classes
        union_spec |= g.spec
    closed = relations.reflexive_transitive_closure(union_spec, all_classes)
    return relations.is_antisymmetric(closed)


def reference_annotated_leq(
    left: AnnotatedSchema, right: AnnotatedSchema
) -> bool:
    """The unmemoized refined ordering of section 6."""
    if not (left.classes <= right.classes and left.spec <= right.spec):
        return False
    table_left = left.participation_table()
    table_right = right.participation_table()
    known = left.classes
    for arrow, constraint in table_left.items():
        if not leq(constraint, table_right.get(arrow, Participation.ABSENT)):
            return False
    for arrow, constraint in table_right.items():
        source, _label, target = arrow
        if source in known and target in known and arrow not in table_left:
            if not leq(Participation.ABSENT, constraint):
                return False
    return True


def reference_lower_merge(
    *schemas: AnnotatedSchema,
    import_specializations: bool = False,
) -> AnnotatedSchema:
    """The pre-engine lower merge: per-arrow method-call GLB lookups."""
    if not schemas:
        return AnnotatedSchema.empty()
    completed = complete_classes(list(schemas), import_specializations)
    merged_classes = completed[0].classes
    merged_spec = frozenset.intersection(*(s.spec for s in completed))
    all_arrows: Set[Arrow] = set()
    for schema in completed:
        all_arrows |= schema.present_arrows()
    table: Dict[Arrow, Participation] = {}
    for arrow in all_arrows:
        source, label, target = arrow
        combined = glb_all(
            schema.participation_of(source, label, target)
            for schema in completed
        )
        if combined != Participation.ABSENT:
            table[arrow] = combined
    return AnnotatedSchema(merged_classes, merged_spec, table)
