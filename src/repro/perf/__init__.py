"""repro.perf — the high-throughput merge engine layer.

Three cooperating mechanisms make the core algebra fast without
changing its semantics (every one is property-tested against the
preserved cold-path reference implementations in
:mod:`repro.perf.reference`):

* **hash-consed interning** (:mod:`repro.perf.interning`) — class
  names and closed schemas are canonicalized so structurally equal
  values are pointer-equal; equality short-circuits on identity and
  hashes are precomputed, which removes the dominant cost of the
  closure computations (element comparison inside big sets of tuples);
* **incremental closure** (:mod:`repro.perf.closure`) —
  :class:`ClosureBuilder` folds any number of schemas through one
  mutable reach/specialization index and closes arrows once at the
  end, instead of n full re-closures; ``Schema.with_arrows`` /
  ``with_spec`` delta-update in the same spirit;
* **bounded memoization** (:mod:`repro.perf.memo`) — ``is_sub``,
  ``compatible`` and ``annotated_leq`` results are cached keyed on the
  interned operands.  Immutability means there is no invalidation
  protocol, only an LRU memory bound;
* **dense-id bitset kernels** (:mod:`repro.perf.namespace` +
  :mod:`repro.perf.closure`) — each component's interned names map to
  dense integer ids, class sets become Python-int bitmasks, and the
  closure kernels run as bulk word-parallel OR/AND.  The pre-bitset
  set-based engine is preserved verbatim in :mod:`repro.perf.setwise`
  as the benchmark baseline and secondary test oracle.

``engine_stats()`` / ``clear_caches()`` are the operational surface:
benchmarks report the former, tests use the latter to force cold paths.

This ``__init__`` imports only the core-free primitives; the builder
(which imports ``repro.core.schema``) loads lazily via PEP 562 so that
the core modules themselves can import ``repro.perf.interning`` and
``repro.perf.memo`` without a cycle.

>>> from repro.core import ordering  # registers its memo caches
>>> from repro.perf import ClosureBuilder, clear_caches, engine_stats
>>> sorted(engine_stats())
['intern', 'memo']
>>> clear_caches()  # cold-start; never changes any result
>>> engine_stats()["memo"]["ordering.is_sub"]["size"]
0
>>> builder = ClosureBuilder().add_spec_edge("Puppy", "Dog")
>>> builder.is_spec("Puppy", "Dog")
True
"""

from __future__ import annotations

from typing import Any, Dict

from repro.perf.interning import (
    InternTable,
    clear_intern_tables,
    intern_stats,
)
from repro.perf.memo import MemoCache, cache_stats, clear_memo_caches

__all__ = [
    "InternTable",
    "MemoCache",
    "NameSpace",
    "ClosureBuilder",
    "DenseClosure",
    "SetwiseClosureBuilder",
    "intern_stats",
    "cache_stats",
    "engine_stats",
    "clear_caches",
    "clear_intern_tables",
    "clear_memo_caches",
]


def engine_stats() -> Dict[str, Dict[str, Any]]:
    """One merged view of every intern table and memo cache."""
    return {"intern": intern_stats(), "memo": cache_stats()}


def clear_caches() -> None:
    """Reset the whole engine to a cold state.

    Safe at any point: interning and memoization are transparent, so
    clearing only costs the next calls their warm-up.  Used by property
    tests to compare cold and warm paths, and by long-running services
    to shed memory between workloads.
    """
    clear_intern_tables()
    clear_memo_caches()


def __getattr__(attr: str) -> Any:
    if attr in ("ClosureBuilder", "DenseClosure"):
        from repro.perf import closure

        return getattr(closure, attr)
    if attr == "NameSpace":
        from repro.perf.namespace import NameSpace

        return NameSpace
    if attr == "SetwiseClosureBuilder":
        from repro.perf.setwise import SetwiseClosureBuilder

        return SetwiseClosureBuilder
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
