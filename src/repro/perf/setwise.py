"""The set-based closure engine, frozen as the pre-bitset baseline.

This is the :class:`~repro.perf.closure.ClosureBuilder` as it shipped
before the dense-id rewrite: one mutable specialization index held as
``dict`` of ``set`` of interned names, delta-updated per novel edge via
:func:`repro.core.relations.closure_insert`, one raw arrow pool, one
grouped W1/W2 sweep at build time.

Like :mod:`repro.perf.reference` (the pre-*engine* cold path), it is
kept for two jobs and must not be "improved":

* the **benchmark baseline** — ``benchmarks/runner.py`` times
  :func:`setwise_join_all` against the bitset engine's ``join_all`` and
  gates the 320-schema speedup recorded in ``BENCH_merge_engine.json``;
* a **secondary oracle** — the dense kernels are property-tested
  against it (and against :mod:`repro.perf.reference`) in
  ``tests/test_dense_kernels.py``.

It deliberately reports no work counters: only the live engine feeds
``closure.*`` telemetry.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.core import relations
from repro.core.names import ClassName, Label, name
from repro.core.schema import (
    Arrow,
    Schema,
    SpecEdge,
    _closure_index,
    _coerce_arrow,
    _index_arrows,
)
from repro.exceptions import IncompatibleSchemasError

__all__ = ["SetwiseClosureBuilder", "setwise_join_all"]


class SetwiseClosureBuilder:
    """The pre-refactor accumulator: sets of interned names throughout.

    Invariants as in the original: ``_succ``/``_pred`` always hold the
    reflexive-transitive closure of the specialization edges seen so
    far, ``_raw_arrows`` holds un-closed input arrows, and arrows are
    closed once at build time by the grouped sweep.
    """

    __slots__ = ("_classes", "_raw_arrows", "_succ", "_pred")

    def __init__(self, schemas: Iterable[Schema] = ()):
        self._classes: Set[ClassName] = set()
        self._raw_arrows: Set[Arrow] = set()
        self._succ: Dict[ClassName, Set[ClassName]] = {}
        self._pred: Dict[ClassName, Set[ClassName]] = {}
        for schema in schemas:
            self.add_schema(schema)

    def add_class(self, cls: ClassName) -> "SetwiseClosureBuilder":
        """Register a class (idempotent)."""
        cls = name(cls)
        if cls not in self._classes:
            self._classes.add(cls)
            self._succ.setdefault(cls, {cls})
            self._pred.setdefault(cls, {cls})
        return self

    def _insert_edge(self, sub, sup, undo=None) -> None:
        try:
            relations.closure_insert(self._succ, self._pred, sub, sup, undo)
        except ValueError:
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in (sub, sup, sub)),
                cycle=(sub, sup, sub),
            ) from None

    def add_spec_edge(
        self, sub: ClassName, sup: ClassName
    ) -> "SetwiseClosureBuilder":
        """Add ``sub ==> sup``, delta-updating the closure."""
        sub, sup = name(sub), name(sup)
        self.add_class(sub)
        self.add_class(sup)
        self._insert_edge(sub, sup)
        return self

    def add_arrow(
        self, source: ClassName, label: Label, target: ClassName
    ) -> "SetwiseClosureBuilder":
        """Add one raw arrow (closed at build time)."""
        arrow = _coerce_arrow((source, label, target))
        self.add_class(arrow[0])
        self.add_class(arrow[2])
        self._raw_arrows.add(arrow)
        return self

    def add_schema(self, schema: Schema) -> "SetwiseClosureBuilder":
        """Fold a whole (closed) schema into the accumulator — atomically."""
        added_classes = []
        for cls in schema.classes:
            if cls not in self._classes:
                self.add_class(cls)
                added_classes.append(cls)
        succ = self._succ
        pred = self._pred
        undo = []
        try:
            for sub, sup in schema.spec:
                if sub is not sup and sub != sup and sup not in succ[sub]:
                    self._insert_edge(sub, sup, undo)
        except IncompatibleSchemasError:
            for lower, upper in undo:
                succ[lower].discard(upper)
                pred[upper].discard(lower)
            for cls in added_classes:
                self._classes.discard(cls)
                succ.pop(cls, None)
                pred.pop(cls, None)
            raise
        self._raw_arrows |= schema.arrows
        return self

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """Every class registered so far (a snapshot, not a live view)."""
        return frozenset(self._classes)

    def clone(self) -> "SetwiseClosureBuilder":
        """An independent copy sharing no mutable state with the original."""
        twin = SetwiseClosureBuilder()
        twin._classes = set(self._classes)
        twin._raw_arrows = set(self._raw_arrows)
        twin._succ = {cls: set(sups) for cls, sups in self._succ.items()}
        twin._pred = {cls: set(subs) for cls, subs in self._pred.items()}
        return twin

    def is_spec(self, sub: ClassName, sup: ClassName) -> bool:
        """Does ``sub ==> sup`` hold in the accumulated closure?"""
        sub, sup = name(sub), name(sup)
        return sub == sup or sup in self._succ.get(sub, ())

    def spec_pairs(self) -> FrozenSet[SpecEdge]:
        """The current reflexive-transitive specialization closure."""
        return frozenset(
            (sub, sup)
            for sub, sups in self._succ.items()
            for sup in sups
        )

    def build(self, extra_arrows: Iterable[Arrow] = ()) -> Schema:
        """Close the accumulated components into an (interned) Schema."""
        raw = self._raw_arrows
        classes = frozenset(self._classes)
        spec = self.spec_pairs()
        extra = [_coerce_arrow(edge) for edge in extra_arrows]
        if extra:
            raw = raw | set(extra)
            new_classes = frozenset(
                endpoint
                for source, _label, target in extra
                for endpoint in (source, target)
                if endpoint not in classes
            )
            if new_classes:
                classes |= new_classes
                spec |= frozenset((cls, cls) for cls in new_classes)
        index = _closure_index(raw, self._pred, self._succ)
        arrows = _index_arrows(index)
        return Schema._from_closed(classes, arrows, spec, reach_index=index)


def setwise_join_all(schemas: Iterable[Schema]) -> Schema:
    """``join_all`` exactly as the set-based engine computed it.

    Mirrors :func:`repro.core.ordering.join_all` minus the memo layer:
    fold everything through one :class:`SetwiseClosureBuilder`, build
    once.  This is the timed baseline for the ≥5x bitset-kernel gate.
    """
    schema_list: List[Schema] = list(schemas)
    if not schema_list:
        return Schema.empty()
    if len(schema_list) == 1:
        return schema_list[0]
    builder = SetwiseClosureBuilder()
    for g in schema_list:
        builder.add_schema(g)
    return builder.build()
