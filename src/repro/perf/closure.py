"""Incremental closure on dense ids: bitset kernels end to end.

``join_all`` folds many schemas through one mutable builder; the first
engine generation did so with Python sets of interned names.  This
generation re-represents everything on **dense integer ids**
(:class:`repro.perf.namespace.NameSpace`): each node's up-/down-set in
the specialization closure is one Python int used as a bitset, and the
accumulated arrow pool becomes a table of ``(source_id, label) →
target bitset`` rows.  The two closure kernels become per-node bulk
int operations:

* **edge insertion** (:func:`repro.core.relations.closure_insert_bits`)
  delta-updates the ``down(sub) × up(sup)`` rectangle with one ``|``
  per affected node — cycles still surface at insertion time, so there
  is no separate compatibility pass;
* the **grouped W1/W2 sweep** at :meth:`ClosureBuilder.build` expands
  each arrow row's targets upward (OR of ``succ`` masks, memoized per
  distinct target set) and pushes each row down the specialization
  with one ``|`` per subclass.

Bulk int OR/AND is *word-parallel*: CPython operates on the limbs of a
big int in C, so a 60-class component's whole row updates in a couple
of machine words instead of ~60 hash-and-probe set operations.  The
swept rows are handed to the finished :class:`~repro.core.schema.Schema`
*still in dense form* (:class:`DenseClosure`): the name-level reach
index, the flat arrow relation and their hashes all materialize lazily,
on first use — which is also what lets a component view serialize
without re-walking schema object graphs (``repro.io.json_io``).

The builder is the engine room of ``repro.core.ordering.join_all`` and
is public API for callers that accumulate schemas over time (sessions,
streaming merges): add schemas as they arrive, ``build()`` when a
closed value is needed, keep adding afterwards.  The pre-rewrite
set-based engine survives verbatim in :mod:`repro.perf.setwise` as the
benchmark baseline, and :mod:`repro.perf.reference` remains the
pre-engine property-test oracle.

Process-wide work counters (``closure.inserts``,
``closure.arrows_swept``, ``closure.components_rebuilt``) report into
:data:`repro.obs.metrics.REGISTRY`; they are plain integer adds per
*structural* operation (edge insertion, full build), far off the
per-lookup hot paths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core import relations
from repro.core.names import ClassName, Label, name
from repro.core.schema import (
    Arrow,
    Schema,
    SpecEdge,
    _coerce_arrow,
)
from repro.exceptions import IncompatibleSchemasError
from repro.obs.metrics import REGISTRY
from repro.perf.namespace import NameSpace

__all__ = ["ClosureBuilder", "DenseClosure"]

_INSERTS = REGISTRY.counter("closure.inserts")
_ARROWS_SWEPT = REGISTRY.counter("closure.arrows_swept")
_REBUILDS = REGISTRY.counter("closure.components_rebuilt")

#: One closed arrow-row table: ``(source_id, label) → bitset of target
#: ids`` — the flat form carried by :class:`DenseClosure`.
RowTable = Dict[Tuple[int, Label], int]

#: Accumulated raw rows, grouped by source id: ``source_id → {label →
#: OR of every asserted target bitset}``.  Two levels so the hot fold
#: hashes one small int per source and one label string per row — no
#: tuple keys on the per-row path.
RawRows = Dict[int, Dict[Label, int]]


def _sweep(succ: List[int], pred: List[int], rows: RowTable) -> RowTable:
    """The grouped W1/W2 closure of id-keyed *rows*, entirely on bitmasks.

    W2 first: each row's target set grows to the union of its targets'
    up-sets (``succ`` masks, OR'd; memoized per distinct input mask —
    rows repeat target sets heavily across a family).  W1 second: each
    expanded row is pushed down to every subclass of its source with
    one OR per subclass.  The result maps every populated
    ``(class_id, label)`` to the closed reach bitset.

    This standalone form serves :meth:`DenseClosure.validate` (closed
    rows are a fixpoint of the sweep); the builder's build path runs
    the same computation fused with target-set encoding in
    :meth:`ClosureBuilder._fold_sweep`.
    """
    up_memo: Dict[int, int] = {}
    out: RowTable = {}
    for (src, label), tmask in rows.items():
        up = up_memo.get(tmask)
        if up is None:
            acc = 0
            mask = tmask
            while mask:
                low = mask & -mask
                acc |= succ[low.bit_length() - 1]
                mask ^= low
            up = up_memo[tmask] = acc
        mask = pred[src]
        while mask:
            low = mask & -mask
            sub = low.bit_length() - 1
            mask ^= low
            key = (sub, label)
            prev = out.get(key)
            out[key] = up if prev is None else prev | up
    return out


def _decode_spec(
    names: Tuple[ClassName, ...], succ: Iterable[int]
) -> FrozenSet[SpecEdge]:
    """The name-level specialization closure of a ``succ`` mask table."""
    rows_memo: Dict[int, Tuple[ClassName, ...]] = {}
    spec: Set[SpecEdge] = set()
    for i, mask in enumerate(succ):
        ups = rows_memo.get(mask)
        if ups is None:
            ups = rows_memo[mask] = tuple(
                names[j] for j in relations.iter_bits(mask)
            )
        sub = names[i]
        for sup in ups:
            spec.add((sub, sup))
    return frozenset(spec)


class DenseClosure:
    """One component's closed relations in dense form — a value.

    The zero-copy unit of the engine: *names* is the id table (position
    = dense id), *succ* the reflexive-transitive specialization closure
    (``succ[i]`` bit *j* set ⇔ ``i ==> j``), *reach* the W1/W2-closed
    arrow rows keyed on ``(source_id, label)``.  Every relation is
    integers, so a snapshot encoder writes each name exactly once and
    never walks a schema object graph (``repro.io.json_io``), and a
    ``Schema`` backed by one of these decodes the name-level index
    lazily, on first reach query.

    >>> from repro.perf.closure import ClosureBuilder
    >>> state = (ClosureBuilder().add_spec_edge("Puppy", "Dog")
    ...          .add_arrow("Dog", "owner", "Person").dense_state())
    >>> len(state.names), state.to_schema().has_arrow("Puppy", "owner", "Person")
    (3, True)
    """

    __slots__ = ("names", "succ", "reach")

    def __init__(
        self,
        names: Tuple[ClassName, ...],
        succ: Tuple[int, ...],
        reach: RowTable,
    ) -> None:
        self.names = names  # frozen-after-init
        self.succ = succ  # frozen-after-init
        self.reach = reach  # frozen-after-init

    def validate(self) -> None:
        """Check the dense invariants; raise :class:`ValueError` if broken.

        Used by the snapshot decoder on untrusted documents.  All four
        checks run on masks: reflexivity and range per node, transitivity
        and antisymmetry per reachable pair, id-range of every arrow
        row, and W1/W2-closedness by re-sweeping (the sweep is idempotent
        on closed rows, so closed input must re-sweep to itself).
        """
        n = len(self.names)
        if len(self.succ) != n:
            raise ValueError("succ table length differs from the id table")
        full = (1 << n) - 1 if n else 0
        for i, mask in enumerate(self.succ):
            if mask & ~full:
                raise ValueError(f"succ[{i}] references ids outside the table")
            if not (mask >> i) & 1:
                raise ValueError(f"specialization not reflexive at id {i}")
            rest = mask
            while rest:
                low = rest & -rest
                j = low.bit_length() - 1
                rest ^= low
                if self.succ[j] & ~mask:
                    raise ValueError("specialization not transitive")
                if i != j and (self.succ[j] >> i) & 1:
                    raise ValueError("specialization not antisymmetric")
        pred = [0] * n
        for i, mask in enumerate(self.succ):
            bit = 1 << i
            rest = mask
            while rest:
                low = rest & -rest
                pred[low.bit_length() - 1] |= bit
                rest ^= low
        for (src, label), tmask in self.reach.items():
            if not 0 <= src < n or tmask & ~full or not tmask:
                raise ValueError(
                    f"arrow row ({src}, {label!r}) references ids outside "
                    "the table or is empty"
                )
        if _sweep(list(self.succ), pred, dict(self.reach)) != self.reach:
            raise ValueError("arrow rows are not W1/W2-closed")

    def decode_index(
        self,
    ) -> Dict[Tuple[ClassName, Label], FrozenSet[ClassName]]:
        """The name-level reach index ``{(p, a): R(p, a)}`` of the rows.

        Masks repeat heavily across rows (W1 pushes the same expanded
        target set down a whole subtree), so target sets are decoded
        once per distinct mask.
        """
        names = self.names
        decode: Dict[int, FrozenSet[ClassName]] = {}
        index: Dict[Tuple[ClassName, Label], FrozenSet[ClassName]] = {}
        for (src, label), tmask in self.reach.items():
            targets = decode.get(tmask)
            if targets is None:
                targets = decode[tmask] = frozenset(
                    names[i] for i in relations.iter_bits(tmask)
                )
            index[(names[src], label)] = targets
        return index

    def decode_spec(self) -> FrozenSet[SpecEdge]:
        """The name-level specialization closure of the ``succ`` table."""
        return _decode_spec(self.names, self.succ)

    def to_schema(self) -> Schema:
        """The component view as a (lazily materializing) :class:`Schema`."""
        return Schema._from_closed(frozenset(self.names), None, None, dense=self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseClosure):
            return NotImplemented
        return (
            self.names == other.names
            and self.succ == other.succ
            and self.reach == other.reach
        )

    def __hash__(self) -> int:
        return hash((self.names, self.succ))

    def __repr__(self) -> str:
        return (
            f"DenseClosure(classes={len(self.names)}, "
            f"rows={len(self.reach)})"
        )


class ClosureBuilder:
    """A mutable accumulator whose ``build()`` is the LUB of everything added.

    Invariants: the per-component :class:`NameSpace` assigns dense ids
    in first-appearance order; ``_succ[i]``/``_pred[i]`` always hold the
    reflexive-transitive closure of the specialization edges seen so
    far as bitsets (every registered node's own bit is set), and
    ``_rows`` holds the un-closed input arrows as one raw target
    bitset per ``(source_id, label)`` key (the OR of every asserted
    row under that key).  Arrows are closed once, at build time —
    closing them per addition would redo work the final grouped sweep
    does in one pass.
    """

    __slots__ = ("_ns", "_succ", "_pred", "_rows")

    def __init__(self, schemas: Iterable[Schema] = ()):
        self._ns = NameSpace()
        self._succ: List[int] = []
        self._pred: List[int] = []
        self._rows: RawRows = {}
        for schema in schemas:
            self.add_schema(schema)

    def _intern(self, cls: ClassName) -> int:
        """The dense id of *cls*, registering it (with its self-bit) if new."""
        ns = self._ns
        size = len(ns)
        idx = ns.intern(cls)
        if idx == size:
            bit = 1 << idx
            self._succ.append(bit)
            self._pred.append(bit)
        return idx

    def add_class(self, cls: ClassName) -> "ClosureBuilder":
        """Register a class (idempotent)."""
        self._intern(name(cls))
        return self

    def _insert_edge(self, sub: int, sup: int) -> None:
        """closure_insert_bits with the domain error mapped on.

        Serves the single-edge entry point (which needs no undo log:
        the kernel checks for a cycle before mutating anything); the
        bulk fold inlines the kernel call.  Counter discipline:
        callers account ``closure.inserts``.
        """
        try:
            relations.closure_insert_bits(self._succ, self._pred, sub, sup)
        except ValueError:
            ns = self._ns
            cycle = (ns.name_of(sub), ns.name_of(sup), ns.name_of(sub))
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in cycle),
                cycle=cycle,
            ) from None

    def add_spec_edge(self, sub: ClassName, sup: ClassName) -> "ClosureBuilder":
        """Add ``sub ==> sup``, delta-updating the closure.

        Raises :class:`~repro.exceptions.IncompatibleSchemasError` the
        moment an edge closes a cycle — no separate compatibility pass.
        """
        self._insert_edge(self._intern(name(sub)), self._intern(name(sup)))
        _INSERTS.inc()
        return self

    def _add_row(
        self,
        rows: RawRows,
        source: ClassName,
        label: Label,
        target: ClassName,
    ) -> None:
        sid = self._intern(source)
        bit = 1 << self._intern(target)
        table = rows.get(sid)
        if table is None:
            rows[sid] = {label: bit}
        else:
            prev = table.get(label)
            table[label] = bit if prev is None else prev | bit

    def add_arrow(
        self, source: ClassName, label: Label, target: ClassName
    ) -> "ClosureBuilder":
        """Add one raw arrow (closed at build time)."""
        arrow = _coerce_arrow((source, label, target))
        self._add_row(self._rows, arrow[0], arrow[1], arrow[2])
        return self

    def add_schema(self, schema: Schema) -> "ClosureBuilder":
        """Fold a whole (closed) schema into the accumulator — atomically.

        Equivalent to ``add_schemas((schema,))`` — see there for the
        rollback contract and the dense fold mechanics.
        """
        return self.add_schemas((schema,))

    def _fold_cycle(
        self, a: int, b: int, snap: Optional[Tuple[List[int], List[int]]],
        base: int,
    ) -> IncompatibleSchemasError:
        """Roll back a failed fold and build its cycle error (cold path).

        Adding ``a ==> b`` would close a cycle.  The witness is named
        while the id tail is still alive, then the accumulator is
        restored to *base*: the pre-schema snapshot (when one was
        taken) both clears gained bits and truncates the mask tables,
        otherwise only the untouched fresh tail needs dropping.
        """
        ns = self._ns
        cycle = (ns.name_of(a), ns.name_of(b), ns.name_of(a))
        succ = self._succ
        pred = self._pred
        if snap is not None:
            succ[:], pred[:] = snap
        elif len(ns) != base:
            del succ[base:]
            del pred[base:]
        ns.truncate(base)
        return IncompatibleSchemasError(
            "specialization edges form a cycle: "
            + " ==> ".join(str(c) for c in cycle),
            cycle=cycle,
        )

    def add_schemas(self, schemas: Iterable[Schema]) -> "ClosureBuilder":
        """Fold many (closed) schemas — each one atomically, in order.

        On :class:`~repro.exceptions.IncompatibleSchemasError` the
        accumulator is rolled back to its state before the *offending
        schema* (schemas folded earlier in the same call remain), so a
        streaming caller can catch the error, drop that schema, and
        keep going; ``build()`` then reflects exactly the accepted
        schemas.

        Rollback is by snapshot: before a schema's first novel edge is
        inserted, the pre-schema slice of both mask tables is copied
        (two C-level list copies — gained-bit undo logs measured
        slower); restoring it clears every gained bit *and* drops the
        freshly interned id tail in one assignment (ids are assigned
        contiguously, so the classes the failed fold introduced are
        exactly the tail).

        This is the engine's hottest entry point (``join_all`` folds
        whole families through it), so the loop works on resolved ids:
        each schema's cached fold layout is translated to builder ids
        once (one table probe per class, a C-level ``map``), the
        strict spec pairs and the reach rows then walk as plain index
        tuples — no class-name hashing anywhere in the per-element
        loops.  The layout is a *generating* view (spec covers, minimal
        non-inherited reach rows — see ``Schema._fold_layout``): the
        builder's own rectangle updates and build-time sweep regenerate
        everything the layout omits, so the fold does strictly less
        work for the identical closure.  Each generator row encodes
        positionally through the translation and is OR'd into the raw
        row table under its ``(source_id, label)`` key — closure is
        deferred to the build-time sweep.
        """
        ns = self._ns
        ids = ns._ids
        ids_get = ids.get
        intern = self._intern
        succ = self._succ
        pred = self._pred
        rows = self._rows
        rows_get = rows.get
        inserts = 0
        try:
            for schema in schemas:
                base = len(ids)
                order, groups, row_layout = schema._fold_layout()
                tr = list(map(ids_get, order))
                if None in tr:
                    for k, idx in enumerate(tr):
                        if idx is None:
                            tr[k] = intern(order[k])
                snap = None
                for i, j0, more in groups:
                    a = tr[i]
                    sa = succ[a]
                    b = tr[j0]
                    if (sa >> b) & 1:
                        novel = 0
                    else:
                        if (succ[b] >> a) & 1:
                            raise self._fold_cycle(a, b, snap, base)
                        novel = succ[b]
                        inserts += 1
                    if more is not None:
                        for j in more:
                            b = tr[j]
                            if not (sa >> b) & 1:
                                if (succ[b] >> a) & 1:
                                    raise self._fold_cycle(a, b, snap, base)
                                novel |= succ[b]
                                inserts += 1
                    new_bits = novel & ~sa
                    if new_bits:
                        if snap is None:
                            # Fresh ids past *base* carry only their
                            # untouched self-bits; the snapshot excludes
                            # them so restoring also truncates.
                            snap = (succ[:base], pred[:base])
                        # One rectangle for the whole up-set delta: every
                        # subclass of *a* (which already reaches all of
                        # ``sa``, by closure) gains exactly these bits,
                        # and every newly reached node gains *a*'s
                        # down-set.  OR is idempotent and rollback is by
                        # snapshot, so no per-write gained-bit filtering.
                        down_a = pred[a]
                        mask = down_a
                        while mask:
                            low = mask & -mask
                            succ[low.bit_length() - 1] |= new_bits
                            mask ^= low
                        mask = new_bits
                        while mask:
                            low = mask & -mask
                            pred[low.bit_length() - 1] |= down_a
                            mask ^= low
                for spos, label, t0, rest in row_layout:
                    acc = 1 << tr[t0]
                    if rest is not None:
                        for t in rest:
                            acc |= 1 << tr[t]
                    sid = tr[spos]
                    table = rows_get(sid)
                    if table is None:
                        rows[sid] = {label: acc}
                    else:
                        table[label] = table.get(label, 0) | acc
        finally:
            if inserts:
                _INSERTS.inc(inserts)
        return self

    @classmethod
    def from_dense(cls, dense: DenseClosure) -> "ClosureBuilder":
        """A builder whose accumulated state *is* the given closed value.

        The warm-restart path of ``repro.service.storage``: a component
        restored from a snapshot re-enters service as a live builder
        without re-folding its member schemas.  The id table is adopted
        in order (dense ids are positions, so they survive the round
        trip), ``succ`` is taken verbatim, ``pred`` is derived by one
        pass over the succ bits, and the closed reach rows regroup into
        the raw row table by source id.  Seeding raw rows with *closed*
        rows is sound because the W1/W2 sweep is idempotent on closed
        input (the same property :meth:`DenseClosure.validate` checks),
        so the next ``build()`` reproduces exactly *dense* — and further
        additions fold incrementally, as if the builder had never left
        memory.

        >>> from repro.perf.closure import ClosureBuilder
        >>> state = (ClosureBuilder().add_spec_edge("Puppy", "Dog")
        ...          .add_arrow("Dog", "owner", "Person").dense_state())
        >>> revived = ClosureBuilder.from_dense(state)
        >>> revived.dense_state() == state
        True
        >>> revived.add_spec_edge("Dog", "Animal").is_spec("Puppy", "Animal")
        True
        """
        builder = cls()
        builder._ns = NameSpace(dense.names)
        succ = list(dense.succ)
        builder._succ = succ
        pred = [0] * len(succ)
        for i, mask in enumerate(succ):
            bit = 1 << i
            while mask:
                low = mask & -mask
                pred[low.bit_length() - 1] |= bit
                mask ^= low
        builder._pred = pred
        rows: RawRows = {}
        for (src, label), tmask in dense.reach.items():
            table = rows.get(src)
            if table is None:
                rows[src] = {label: tmask}
            else:
                table[label] = table.get(label, 0) | tmask
        builder._rows = rows
        return builder

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """Every class registered so far (a snapshot, not a live view)."""
        return frozenset(self._ns.names())

    def clone(self) -> "ClosureBuilder":
        """An independent copy sharing no mutable state with the original.

        Dense state makes this cheap: masks are immutable ints, so the
        copy is two list copies and per-source dicts of shared ints
        regardless of how dense the relations are.  This is the substrate of
        transactional callers (``repro.service``): apply a whole batch
        to a clone, then either swap it in or throw it away — the
        original is never half-updated.

        >>> from repro.perf.closure import ClosureBuilder
        >>> original = ClosureBuilder().add_spec_edge("Puppy", "Dog")
        >>> twin = original.clone()
        >>> _ = twin.add_spec_edge("Dog", "Animal")
        >>> original.is_spec("Dog", "Animal"), twin.is_spec("Dog", "Animal")
        (False, True)
        """
        twin = ClosureBuilder()
        twin._ns = self._ns.clone()
        twin._succ = list(self._succ)
        twin._pred = list(self._pred)
        twin._rows = {sid: dict(t) for sid, t in self._rows.items()}
        return twin

    def is_spec(self, sub: ClassName, sup: ClassName) -> bool:
        """Does ``sub ==> sup`` hold in the accumulated closure?"""
        sub, sup = name(sub), name(sup)
        if sub == sup:
            return True
        ns = self._ns
        i = ns.id_of(sub)
        j = ns.id_of(sup)
        if i is None or j is None:
            return False
        return bool((self._succ[i] >> j) & 1)

    def spec_pairs(self) -> FrozenSet[SpecEdge]:
        """The current reflexive-transitive specialization closure."""
        return _decode_spec(self._ns.names(), self._succ)

    def _fold_sweep(
        self,
        succ: List[int],
        rows: RawRows,
    ) -> Tuple[RowTable, int]:
        """W1/W2-close the accumulated raw rows, entirely on bitmasks.

        W2 first: each ``(source_id, label)`` key's raw target mask
        expands up the specialization.  W1 second, but not by pushing
        every row to every subclass of its source: rows propagate
        *down the Hasse diagram* of the specialization in topological
        order (supers first), so each node inherits its immediate
        parents' already-closed label tables — ``O(covers × labels)``
        merge operations instead of ``O(closure × rows)`` pushes, and a
        node with one parent and no own rows shares the parent's table
        outright (copy-on-write).  Returns the closed id-keyed rows and
        the number of raw arrows swept (the ``closure.arrows_swept``
        increment).
        """
        n = len(succ)
        src_rows: List[Optional[Dict[Label, int]]] = [None] * n
        swept = 0
        for sid, table in rows.items():
            expanded: Dict[Label, int] = {}
            for label, tmask in table.items():
                swept += tmask.bit_count()
                acc = 0
                mask = tmask
                while mask:
                    low = mask & -mask
                    acc |= succ[low.bit_length() - 1]
                    mask ^= low
                expanded[label] = acc
            src_rows[sid] = expanded
        # W1 down the Hasse diagram.  Processing in ascending |succ|
        # visits every strict ancestor before its descendants (p ==> q
        # implies succ[q] ⊊ succ[p]), so each closed table is final
        # when read.
        closed: List[Optional[Dict[Label, int]]] = [None] * n
        out: RowTable = {}
        for i in sorted(range(n), key=lambda k: succ[k].bit_count()):
            ups = succ[i] ^ (1 << i)
            if ups:
                # Immediate parents: strict ancestors not above another.
                red = 0
                mask = ups
                while mask:
                    low = mask & -mask
                    red |= succ[low.bit_length() - 1] ^ low
                    mask ^= low
                parents = ups & ~red
            else:
                parents = 0
            acc: Optional[Dict[Label, int]] = None
            shared = False
            mask = parents
            while mask:
                low = mask & -mask
                inherited = closed[low.bit_length() - 1]
                mask ^= low
                if inherited is None:
                    continue
                if acc is None:
                    acc = inherited
                    shared = True
                    continue
                if shared:
                    acc = dict(acc)
                    shared = False
                for label, up in inherited.items():
                    prev = acc.get(label)
                    if prev is None:
                        acc[label] = up
                    else:
                        merged = prev | up
                        if merged is not prev and merged != prev:
                            acc[label] = merged
            own = src_rows[i]
            if own is not None:
                if acc is None:
                    acc = own
                else:
                    if shared:
                        acc = dict(acc)
                    for label, up in own.items():
                        prev = acc.get(label)
                        acc[label] = up if prev is None else prev | up
            closed[i] = acc
            if acc:
                for label, up in acc.items():
                    out[(i, label)] = up
        return out, swept

    def dense_state(self) -> DenseClosure:
        """The fully closed component as a dense value (see DenseClosure).

        Runs the same fold-and-sweep as :meth:`build` but stops at the
        id-level representation — the input to zero-copy snapshot
        serialization (``repro.service`` / ``repro.io.json_io``).  The
        builder is not mutated.
        """
        out, _swept = self._fold_sweep(self._succ, self._rows)
        return DenseClosure(self._ns.names(), tuple(self._succ), out)

    def build(
        self,
        extra_arrows: Iterable[Arrow] = (),
    ) -> Schema:
        """Close the accumulated components into an (interned) Schema.

        The builder stays usable afterwards — ``build`` is a snapshot,
        not a terminal operation; *extra_arrows* participate in this
        snapshot only (coerced and validated like every other input,
        with unseen endpoints appearing as isolated classes).

        The returned schema is backed by the dense closure directly:
        its name-level reach index, flat arrow relation and structural
        hash all materialize lazily, on first use.
        """
        ns = self._ns
        succ = self._succ
        rows = self._rows
        extra = [_coerce_arrow(edge) for edge in extra_arrows]
        if extra:
            # Work on copies: build() must not mutate the accumulator.
            saved = (self._ns, self._succ, self._pred, self._rows)
            self._ns = ns = ns.clone()
            self._succ = succ = list(succ)
            self._pred = list(self._pred)
            self._rows = rows = {sid: dict(t) for sid, t in rows.items()}
            try:
                for source, label, target in extra:
                    self._add_row(rows, source, label, target)
                out, swept = self._fold_sweep(succ, rows)
            finally:
                self._ns, self._succ, self._pred, self._rows = saved
        else:
            out, swept = self._fold_sweep(succ, rows)
        _REBUILDS.inc()
        _ARROWS_SWEPT.inc(swept)
        names = ns.names()
        dense = DenseClosure(names, tuple(succ), out)
        return Schema._from_closed(frozenset(names), None, None, dense=dense)
