"""Incremental closure: fold many schemas through one mutable builder.

``join_all`` used to (a) compute the transitive closure of the union
specialization once for the compatibility check, (b) recompute the very
same closure inside ``Schema.build``, and (c) run the naive per-arrow
W1/W2 closure.  Folding a *sequence* of joins (``reduce(join, ...)``)
was worse still: n full re-closures for n schemas.

:class:`ClosureBuilder` replaces all of that with one mutable
specialization index, delta-updated per novel edge
(:func:`repro.core.relations.closure_insert` — cycles surface at
insertion time, so there is no separate compatibility pass), one raw
arrow pool, and a single grouped arrow-closure at :meth:`build` time.
The closure's reach index is handed to the finished
:class:`~repro.core.schema.Schema` so the first ``reach`` query is free
as well.

The builder is the engine room of ``repro.core.ordering.join_all`` and
is public API for callers that accumulate schemas over time (sessions,
streaming merges): add schemas as they arrive, ``build()`` when a
closed value is needed, keep adding afterwards.

Process-wide work counters (``closure.inserts``,
``closure.arrows_swept``, ``closure.components_rebuilt``) report into
:data:`repro.obs.metrics.REGISTRY`; they are plain integer adds per
*structural* operation (edge insertion, full build), far off the
per-lookup hot paths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.core import relations
from repro.core.names import ClassName, Label, name
from repro.core.schema import (
    Arrow,
    Schema,
    SpecEdge,
    _closure_index,
    _coerce_arrow,
    _index_arrows,
)
from repro.exceptions import IncompatibleSchemasError
from repro.obs.metrics import REGISTRY

__all__ = ["ClosureBuilder"]

_INSERTS = REGISTRY.counter("closure.inserts")
_ARROWS_SWEPT = REGISTRY.counter("closure.arrows_swept")
_REBUILDS = REGISTRY.counter("closure.components_rebuilt")


class ClosureBuilder:
    """A mutable accumulator whose ``build()`` is the LUB of everything added.

    Invariants: ``_succ``/``_pred`` always hold the reflexive-transitive
    closure of the specialization edges seen so far (every registered
    class maps to a set containing itself), and ``_raw_arrows`` holds
    un-closed input arrows.  Arrows are closed once, at build time —
    closing them per addition would redo work the final grouped pass
    does in one sweep.
    """

    __slots__ = ("_classes", "_raw_arrows", "_succ", "_pred")

    def __init__(self, schemas: Iterable[Schema] = ()):
        self._classes: Set[ClassName] = set()
        self._raw_arrows: Set[Arrow] = set()
        self._succ: Dict[ClassName, Set[ClassName]] = {}
        self._pred: Dict[ClassName, Set[ClassName]] = {}
        for schema in schemas:
            self.add_schema(schema)

    def add_class(self, cls: ClassName) -> "ClosureBuilder":
        """Register a class (idempotent)."""
        cls = name(cls)
        if cls not in self._classes:
            self._classes.add(cls)
            self._succ.setdefault(cls, {cls})
            self._pred.setdefault(cls, {cls})
        return self

    def _insert_edge(self, sub, sup, undo=None) -> None:
        """closure_insert with the domain error both entry points share."""
        try:
            relations.closure_insert(self._succ, self._pred, sub, sup, undo)
            _INSERTS.inc()
        except ValueError:
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in (sub, sup, sub)),
                cycle=(sub, sup, sub),
            ) from None

    def add_spec_edge(self, sub: ClassName, sup: ClassName) -> "ClosureBuilder":
        """Add ``sub ==> sup``, delta-updating the closure.

        Raises :class:`~repro.exceptions.IncompatibleSchemasError` the
        moment an edge closes a cycle — no separate compatibility pass.
        """
        sub, sup = name(sub), name(sup)
        self.add_class(sub)
        self.add_class(sup)
        self._insert_edge(sub, sup)
        return self

    def add_arrow(
        self, source: ClassName, label: Label, target: ClassName
    ) -> "ClosureBuilder":
        """Add one raw arrow (closed at build time)."""
        arrow = _coerce_arrow((source, label, target))
        self.add_class(arrow[0])
        self.add_class(arrow[2])
        self._raw_arrows.add(arrow)
        return self

    def add_schema(self, schema: Schema) -> "ClosureBuilder":
        """Fold a whole (closed) schema into the accumulator — atomically.

        On :class:`~repro.exceptions.IncompatibleSchemasError` the
        accumulator is rolled back to its pre-call state, so a streaming
        caller can catch the error, drop the offending schema, and keep
        going; ``build()`` then reflects exactly the accepted schemas.

        Rollback uses :func:`repro.core.relations.closure_insert`'s undo
        log — the pairs actually inserted are recorded and discarded
        again on failure, so the cost is proportional to the work done,
        not the accumulator size — and arrows are folded in last, after
        nothing can fail.
        """
        added_classes = []
        for cls in schema.classes:
            if cls not in self._classes:
                self.add_class(cls)
                added_classes.append(cls)
        succ = self._succ
        pred = self._pred
        undo = []
        try:
            for sub, sup in schema.spec:
                if sub is not sup and sub != sup and sup not in succ[sub]:
                    self._insert_edge(sub, sup, undo)
        except IncompatibleSchemasError:
            for lower, upper in undo:
                succ[lower].discard(upper)
                pred[upper].discard(lower)
            for cls in added_classes:
                # Registered isolated this call; after the pair rollback
                # they appear in no other class's sets — safe to drop.
                self._classes.discard(cls)
                succ.pop(cls, None)
                pred.pop(cls, None)
            raise
        self._raw_arrows |= schema.arrows
        return self

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """Every class registered so far (a snapshot, not a live view)."""
        return frozenset(self._classes)

    def clone(self) -> "ClosureBuilder":
        """An independent copy sharing no mutable state with the original.

        The copy costs one pass over the accumulated index and is the
        substrate of transactional callers (``repro.service``): apply a
        whole batch to a clone, then either swap it in or throw it away
        — the original is never half-updated.

        >>> from repro.perf.closure import ClosureBuilder
        >>> original = ClosureBuilder().add_spec_edge("Puppy", "Dog")
        >>> twin = original.clone()
        >>> _ = twin.add_spec_edge("Dog", "Animal")
        >>> original.is_spec("Dog", "Animal"), twin.is_spec("Dog", "Animal")
        (False, True)
        """
        twin = ClosureBuilder()
        twin._classes = set(self._classes)
        twin._raw_arrows = set(self._raw_arrows)
        twin._succ = {cls: set(sups) for cls, sups in self._succ.items()}
        twin._pred = {cls: set(subs) for cls, subs in self._pred.items()}
        return twin

    def is_spec(self, sub: ClassName, sup: ClassName) -> bool:
        """Does ``sub ==> sup`` hold in the accumulated closure?"""
        sub, sup = name(sub), name(sup)
        return sub == sup or sup in self._succ.get(sub, ())

    def spec_pairs(self) -> FrozenSet[SpecEdge]:
        """The current reflexive-transitive specialization closure."""
        return frozenset(
            (sub, sup)
            for sub, sups in self._succ.items()
            for sup in sups
        )

    def build(
        self,
        extra_arrows: Iterable[Arrow] = (),
    ) -> Schema:
        """Close the accumulated components into an (interned) Schema.

        The builder stays usable afterwards — ``build`` is a snapshot,
        not a terminal operation; *extra_arrows* participate in this
        snapshot only (coerced and validated like every other input,
        with unseen endpoints appearing as isolated classes).
        """
        raw = self._raw_arrows
        _REBUILDS.inc()
        _ARROWS_SWEPT.inc(len(raw))
        classes = frozenset(self._classes)
        spec = self.spec_pairs()
        extra = [_coerce_arrow(edge) for edge in extra_arrows]
        if extra:
            raw = raw | set(extra)
            new_classes = frozenset(
                endpoint
                for source, _label, target in extra
                for endpoint in (source, target)
                if endpoint not in classes
            )
            if new_classes:
                classes |= new_classes
                spec |= frozenset((cls, cls) for cls in new_classes)
        index = _closure_index(raw, self._pred, self._succ)
        arrows = _index_arrows(index)
        return Schema._from_closed(classes, arrows, spec, reach_index=index)
