"""API-surface analyzer: ``__all__`` honesty and exception coverage.

Three related contracts, all about keeping the *published* surface in
sync with the code that backs it:

``api-surface``
    * every name a module lists in ``__all__`` is actually bound at
      module top level (a deleted class with a stale export is a
      latent ``ImportError`` for ``from m import *`` users);
    * in a package ``__init__.py`` facade, every *public* name imported
      with ``from ... import`` is listed in ``__all__`` (a facade that
      imports but does not export is leaking an accidental API), and
      every re-exported name is declared by its source module's own
      ``__all__`` (the facade cannot publish what the submodule calls
      private).

``http-status-map``
    every exception class defined in an ``exceptions`` module is mapped
    to an HTTP status by some ``_STATUS_MAP`` in the checked file set —
    directly or through a mapped ancestor.  ``status_for`` answers 500
    for unmapped types, so a new exception without a mapping silently
    turns a client error into an internal-server-error page.

This analyzer is cross-file: it receives the whole list of
:class:`SourceFile` objects for a run, resolves ``from pkg.sub import
name`` back to the source file when that file is part of the run, and
skips the checks it cannot ground (a facade importing a third-party
module is never flagged).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import Diagnostic, SourceFile

__all__ = ["check_api_surface"]


def _extract_all(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """``(lineno, names)`` of a literal top-level ``__all__``, or ``None``.

    Returns ``None`` both when there is no ``__all__`` and when it is
    built dynamically (augmented assignment, comprehension ...) — the
    checks require a literal list to be meaningful.
    """
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None
        names: List[str] = []
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None
        return node.lineno, names
    return None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound by the module's top-level statements."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name == "*":
                            continue
                        if isinstance(sub, ast.Import):
                            bound.add(alias.asname or alias.name.split(".", 1)[0])
                        else:
                            bound.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    bound.add(sub.id)
    return bound


def _resolve_import(sf: SourceFile, node: ast.ImportFrom) -> Optional[Path]:
    """The file a ``from X import ...`` pulls from, or ``None``.

    Absolute imports resolve by ascending from the importing file to a
    directory whose name matches the first dotted part; relative ones
    ascend ``node.level`` packages.  Missing files return ``None`` (the
    caller skips — nothing to check against).
    """
    here = Path(sf.path).resolve().parent
    if node.level:
        base = here
        for _ in range(node.level - 1):
            base = base.parent
        parts = node.module.split(".") if node.module else []
    else:
        if not node.module or node.module == "__future__":
            return None
        parts = node.module.split(".")
        base = None
        probe = here
        for _ in range(16):
            if probe.name == parts[0]:
                base = probe.parent
                break
            if probe == probe.parent:
                break
            probe = probe.parent
        if base is None:
            return None
    target = base.joinpath(*parts) if parts else base
    if (target / "__init__.py").is_file():
        return target / "__init__.py"
    candidate = target.with_suffix(".py")
    if candidate.is_file():
        return candidate
    return None


def _module_checks(
    sf: SourceFile, by_path: Dict[Path, SourceFile]
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    extracted = _extract_all(sf.tree)
    bound = _top_level_bindings(sf.tree)
    is_facade = Path(sf.path).name == "__init__.py"
    # PEP 562: a module-level __getattr__ can provide any name lazily,
    # so static binding analysis cannot call an export a lie.
    has_module_getattr = "__getattr__" in bound

    if extracted is not None and not has_module_getattr:
        all_line, exported = extracted
        for name in sorted(set(exported) - bound):
            if sf.suppressed(all_line, "api-surface"):
                continue
            diagnostics.append(
                Diagnostic(
                    path=sf.path,
                    line=all_line,
                    rule="api-surface",
                    message=(
                        f"__all__ exports {name!r} but the module never "
                        "binds it — `from module import *` would fail"
                    ),
                )
            )

    for node in sf.tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.module == "__future__":
            continue
        source_path = _resolve_import(sf, node)
        source = by_path.get(source_path) if source_path else None
        source_all = _extract_all(source.tree) if source is not None else None
        for alias in node.names:
            if alias.name == "*" or alias.name.startswith("_"):
                continue
            public_name = alias.asname or alias.name
            if (
                is_facade
                and extracted is not None
                and source is not None
                and not public_name.startswith("_")
                and public_name not in extracted[1]
                and not sf.suppressed(node.lineno, "api-surface")
            ):
                diagnostics.append(
                    Diagnostic(
                        path=sf.path,
                        line=node.lineno,
                        rule="api-surface",
                        message=(
                            f"facade imports {public_name!r} but does not "
                            "list it in __all__ — accidental public API"
                        ),
                    )
                )
            if (
                is_facade
                and source_all is not None
                and alias.name not in source_all[1]
                and Path(source.path).name != "__init__.py"
                and not sf.suppressed(node.lineno, "api-surface")
            ):
                diagnostics.append(
                    Diagnostic(
                        path=sf.path,
                        line=node.lineno,
                        rule="api-surface",
                        message=(
                            f"re-export of {alias.name!r} is not declared "
                            f"by __all__ of {source.path} — the facade "
                            "publishes a name its source module keeps "
                            "private"
                        ),
                    )
                )
    return diagnostics


# ---------------------------------------------------------------------------
# http-status-map


def _exception_classes(tree: ast.Module) -> Dict[str, List[str]]:
    """``class name → base names`` for every top-level class, plus aliases."""
    classes: Dict[str, List[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
            classes[node.name] = bases
        elif isinstance(node, ast.Assign):
            # `IncompatibleSchemaError = IncompatibleSchemasError` aliases.
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Name)
                and node.value.id in classes
            ):
                classes[node.targets[0].id] = [node.value.id]
    return classes


def _class_lines(tree: ast.Module) -> Dict[str, int]:
    return {
        node.name: node.lineno
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def _status_mapped_names(tree: ast.Module) -> Optional[Set[str]]:
    """Exception names listed in a literal ``_STATUS_MAP``, or ``None``."""
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "_STATUS_MAP" for t in targets
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        names: Set[str] = set()
        for entry in value.elts:
            if isinstance(entry, (ast.Tuple, ast.List)) and entry.elts:
                head = entry.elts[0]
                if isinstance(head, ast.Name):
                    names.add(head.id)
                elif isinstance(head, ast.Attribute):
                    names.add(head.attr)
        return names
    return None


def _covered(name: str, classes: Dict[str, List[str]], mapped: Set[str]) -> bool:
    seen: Set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in mapped:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(classes.get(current, []))
    return False


def _status_map_checks(files: Sequence[SourceFile]) -> List[Diagnostic]:
    exceptions_files = [
        sf for sf in files if Path(sf.path).name == "exceptions.py"
    ]
    mapped: Set[str] = set()
    have_map = False
    for sf in files:
        names = _status_mapped_names(sf.tree)
        if names is not None:
            mapped |= names
            have_map = True
    if not have_map:
        return []
    diagnostics: List[Diagnostic] = []
    for sf in exceptions_files:
        classes = _exception_classes(sf.tree)
        lines = _class_lines(sf.tree)
        for name, line in sorted(lines.items(), key=lambda kv: kv[1]):
            if _covered(name, classes, mapped):
                continue
            if sf.suppressed(line, "http-status-map"):
                continue
            diagnostics.append(
                Diagnostic(
                    path=sf.path,
                    line=line,
                    rule="http-status-map",
                    message=(
                        f"exception {name} has no HTTP status mapping in "
                        "_STATUS_MAP (neither directly nor via a mapped "
                        "ancestor) — status_for() would answer 500 for a "
                        "taxonomy error"
                    ),
                )
            )
    return diagnostics


def check_api_surface(files: Sequence[SourceFile]) -> List[Diagnostic]:
    """Run ``api-surface`` + ``http-status-map`` over a whole file set."""
    by_path = {Path(sf.path).resolve(): sf for sf in files}
    diagnostics: List[Diagnostic] = []
    for sf in files:
        diagnostics.extend(_module_checks(sf, by_path))
    diagnostics.extend(_status_map_checks(files))
    return diagnostics
