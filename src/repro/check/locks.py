"""The lock-discipline linter (rules ``lock-guard``, ``lock-order``,
``lock-nesting``, ``frozen-field``).

Reads the annotation conventions of ``docs/STATIC_ANALYSIS.md`` out of
a module's comments and enforces them over the AST:

* ``# guarded-by: <lock>`` on an attribute (or module variable)
  assignment — every read **and** write of that attribute must happen
  lexically inside a ``with self.<lock>:`` block (or inside a function
  annotated ``# requires-lock: <lock>``, which declares the caller
  holds it).  The ``guarded-by(writes)`` form guards writes only: the
  publication-ordered fields of the merge service are *written* under
  the topology lock but deliberately read lock-free.
* ``# frozen-after-init`` — the attribute is never written outside
  ``__init__``; committed shards and cache identities rely on it.
* ``# lock: planner`` on a lock attribute — while that lock is held,
  no other lock may be (blockingly) acquired: the planner lock is the
  short critical section everything else waits behind, so blocking
  inside it stalls every writer.  Re-entrant ``with`` on a held lock
  is reported under the same rule.
* any ``for`` loop that acquires locks must iterate a ``sorted(...)``
  sequence (directly or through a local assigned from ``sorted``), so
  the ascending-shard-id total order — the service's deadlock-freedom
  argument — is visible in the code, not just the docstring.

``__init__`` is exempt from the guard and frozen rules (the object is
not shared during construction); every other rule applies everywhere.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.check.diagnostics import (
    Diagnostic,
    SourceFile,
    access_kind,
    build_parent_map,
    is_frozen_comment,
    is_planner_comment,
    local_bindings,
    parse_guard_comment,
    parse_requires_comment,
)

__all__ = ["check_lock_discipline"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class _Guard:
    lock: Optional[str]  # None for frozen-after-init
    writes_only: bool
    frozen: bool


class _Scope:
    """One annotated class (or the module itself) and its declared fields."""

    def __init__(self, name: str, self_name: Optional[str]) -> None:
        self.name = name
        self.self_name = self_name  # None → module scope, match bare names
        self.guards: Dict[str, _Guard] = {}
        self.planner_locks: Set[str] = set()

    @property
    def lock_names(self) -> Set[str]:
        names = set(self.planner_locks)
        for guard in self.guards.values():
            if guard.lock:
                names.add(guard.lock)
        return names

    def interesting(self) -> bool:
        return bool(self.guards or self.planner_locks)


def _assignment_targets(stmt: ast.stmt, self_name: Optional[str]) -> List[str]:
    """Attribute/variable names a statement assigns, in scope terms."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: List[str] = []
    for target in targets:
        if self_name is None:
            if isinstance(target, ast.Name):
                names.append(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            names.append(target.attr)
    return names


def _collect_scope_annotations(
    sf: SourceFile, scope: _Scope, stmts: List[ast.stmt], self_name: Optional[str]
) -> None:
    for stmt in stmts:
        for name in _assignment_targets(stmt, self_name):
            comment = sf.comment(stmt.lineno)
            if not comment:
                continue
            guard = parse_guard_comment(comment)
            if guard is not None:
                lock, writes_only = guard
                scope.guards[name] = _Guard(lock, writes_only, frozen=False)
            elif is_frozen_comment(comment):
                scope.guards[name] = _Guard(None, writes_only=False, frozen=True)
            if is_planner_comment(comment):
                scope.planner_locks.add(name)


def _build_scopes(sf: SourceFile) -> List[Tuple[_Scope, List[ast.stmt]]]:
    """Every annotated scope in the file, paired with its function list."""
    scopes: List[Tuple[_Scope, List[ast.stmt]]] = []

    module_scope = _Scope("<module>", self_name=None)
    _collect_scope_annotations(sf, module_scope, list(sf.tree.body), None)
    if module_scope.interesting():
        functions = [
            stmt
            for stmt in sf.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes.append((module_scope, functions))

    for stmt in ast.walk(sf.tree):
        if not isinstance(stmt, ast.ClassDef):
            continue
        methods = [
            node
            for node in stmt.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self_name = "self"
        for method in methods:
            if method.args.args:
                self_name = method.args.args[0].arg
                break
        scope = _Scope(stmt.name, self_name=self_name)
        _collect_scope_annotations(sf, scope, list(stmt.body), None)
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    _collect_scope_annotations(sf, scope, [node], self_name)
        if scope.interesting():
            scopes.append((scope, list(methods)))
    return scopes


def _with_locks(node: Union[ast.With, ast.AsyncWith], scope: _Scope) -> Set[str]:
    """The scope lock names a ``with`` statement acquires."""
    locks: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if scope.self_name is None:
            if isinstance(expr, ast.Name) and expr.id in scope.lock_names:
                locks.add(expr.id)
        elif (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == scope.self_name
            and expr.attr in scope.lock_names
        ):
            locks.add(expr.attr)
    return locks


class _FunctionChecker:
    """Walks one function tracking the lexically-held lock set."""

    def __init__(
        self,
        sf: SourceFile,
        scope: _Scope,
        func: FunctionNode,
        check_guards: bool,
    ) -> None:
        self.sf = sf
        self.scope = scope
        self.func = func
        self.check_guards = check_guards
        self.diagnostics: List[Diagnostic] = []
        self.parents = build_parent_map(func)
        if scope.self_name is None:
            self.locals, self.globals = local_bindings(func)
        else:
            self.locals, self.globals = set(), set()

    def run(self) -> List[Diagnostic]:
        held: FrozenSet[str] = frozenset()
        required = parse_requires_comment(self.sf.region_comment(self.func))
        if required is not None:
            held = frozenset({required})
        for stmt in self.func.body:
            self._visit(stmt, held)
        return self.diagnostics

    # -- traversal ----------------------------------------------------

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function runs later, when nothing can be assumed
            # held — analyze its body against the empty lock set.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._visit(child, frozenset())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held)
            acquired = _with_locks(node, self.scope)
            self._note_with(node, acquired, held)
            inner = held | acquired
            for child in node.body:
                self._visit(child, inner)
            return
        self._inspect(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    # -- checks -------------------------------------------------------

    def _report(self, rule: str, line: int, message: str) -> None:
        if not self.sf.suppressed(line, rule):
            self.diagnostics.append(
                Diagnostic(path=self.sf.path, line=line, rule=rule, message=message)
            )

    def _note_with(
        self,
        node: Union[ast.With, ast.AsyncWith],
        acquired: Set[str],
        held: FrozenSet[str],
    ) -> None:
        for lock in sorted(acquired):
            if lock in held:
                self._report(
                    "lock-nesting",
                    node.lineno,
                    f"re-entrant `with {lock}` — the lock is already held here",
                )
            elif held & self.scope.planner_locks:
                planner = sorted(held & self.scope.planner_locks)[0]
                self._report(
                    "lock-nesting",
                    node.lineno,
                    f"acquiring {lock!r} while the planner lock {planner!r} "
                    f"is held can block every writer behind the planner "
                    f"critical section",
                )

    def _inspect(self, node: ast.AST, held: FrozenSet[str]) -> None:
        # Blocking .acquire() while the planner lock is held.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and held & self.scope.planner_locks
        ):
            planner = sorted(held & self.scope.planner_locks)[0]
            self._report(
                "lock-nesting",
                node.lineno,
                f"blocking .acquire() while the planner lock {planner!r} is "
                f"held; acquire shard locks before entering the planner "
                f"critical section (see docs/STATIC_ANALYSIS.md)",
            )
        if not self.check_guards:
            return
        name = self._guarded_name(node)
        if name is None:
            return
        guard = self.scope.guards[name]
        kind = access_kind(node, self.parents)  # type: ignore[arg-type]
        line = getattr(node, "lineno", self.func.lineno)
        if guard.frozen:
            if kind == "write":
                self._report(
                    "frozen-field",
                    line,
                    f"{self.scope.name}.{name} is frozen-after-init but is "
                    f"written in {self.func.name}()",
                )
            return
        if guard.writes_only and kind == "read":
            return
        if guard.lock is not None and guard.lock not in held:
            self._report(
                "lock-guard",
                line,
                f"{kind} of {self.scope.name}.{name} outside `with "
                f"{guard.lock}:` (declared # guarded-by"
                f"{'(writes)' if guard.writes_only else ''}: {guard.lock})",
            )

    def _guarded_name(self, node: ast.AST) -> Optional[str]:
        """The guarded field *node* references, if any."""
        if self.scope.self_name is None:
            if isinstance(node, ast.Name) and node.id in self.scope.guards:
                if node.id in self.locals:
                    return None
                return node.id
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.scope.self_name
            and node.attr in self.scope.guards
        ):
            return node.attr
        return None

# ----------------------------------------------------------------------
# Lock-ordering: file-wide, annotation-free (any loop that acquires)
# ----------------------------------------------------------------------


def _is_sorted_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "sorted"
    )


def _locals_assigned_from_sorted(func: FunctionNode) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_sorted_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _iterates_sorted(iter_expr: ast.expr, sorted_locals: Set[str]) -> bool:
    if _is_sorted_call(iter_expr):
        return True
    if isinstance(iter_expr, ast.Name) and iter_expr.id in sorted_locals:
        return True
    # enumerate(sorted(...)) / enumerate(<sorted local>) still walks the
    # sorted order.
    if (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id == "enumerate"
        and iter_expr.args
    ):
        return _iterates_sorted(iter_expr.args[0], sorted_locals)
    return False


def _check_acquire_loops(sf: SourceFile) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    parents = build_parent_map(sf.tree)
    sorted_locals_cache: Dict[int, Set[str]] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.For):
            continue
        acquires = any(
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "acquire"
            for stmt in node.body
            for call in ast.walk(stmt)
        )
        if not acquires:
            continue
        ancestor = parents.get(id(node))
        func: Optional[FunctionNode] = None
        while ancestor is not None:
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = ancestor
                break
            ancestor = parents.get(id(ancestor))
        if func is not None:
            key = id(func)
            if key not in sorted_locals_cache:
                sorted_locals_cache[key] = _locals_assigned_from_sorted(func)
            sorted_locals = sorted_locals_cache[key]
        else:
            sorted_locals = set()
        if not _iterates_sorted(node.iter, sorted_locals):
            if not sf.suppressed(node.lineno, "lock-order"):
                diagnostics.append(
                    Diagnostic(
                        path=sf.path,
                        line=node.lineno,
                        rule="lock-order",
                        message=(
                            "loop acquires locks but does not iterate a "
                            "sorted() sequence — the ascending-id "
                            "acquisition order (the deadlock-freedom "
                            "invariant) is not guaranteed"
                        ),
                    )
                )
    return diagnostics


def check_lock_discipline(sf: SourceFile) -> List[Diagnostic]:
    """Run the lock-discipline rules over one source file."""
    diagnostics: List[Diagnostic] = []
    for scope, functions in _build_scopes(sf):
        for func in functions:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # pragma: no cover - scopes only collect defs
            check_guards = func.name != "__init__"
            checker = _FunctionChecker(sf, scope, func, check_guards)
            diagnostics.extend(checker.run())
    diagnostics.extend(_check_acquire_loops(sf))
    return diagnostics
