"""Run every invariant analyzer over a file set and collect diagnostics.

:func:`run_checks` is the programmatic entry point (the CLI subcommand
and ``scripts/check_invariants.py`` both call it): it expands the given
paths to ``.py`` files, parses each one, runs the per-file analyzers
(lock discipline, async safety, publication order) plus the cross-file
API-surface pass, and returns the findings sorted by location.

A file that fails to parse contributes a single ``parse-error``
diagnostic instead of aborting the run — CI should report *every*
problem in one pass, not die on the first.

>>> src = "x = 1  # guarded-by: _lock\\ndef f():\\n    global x\\n    x = 2\\n"
>>> [d.rule for d in run_checks_on_sources({"m.py": src})]
['lock-guard']
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.check.api_surface import check_api_surface
from repro.check.asyncsafe import check_async_safety
from repro.check.diagnostics import Diagnostic, SourceFile
from repro.check.locks import check_lock_discipline
from repro.check.publication import check_publication_order

__all__ = [
    "iter_python_files",
    "render_report",
    "run_checks",
    "run_checks_on_sources",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
    return out


def _analyze(files: List[SourceFile]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for sf in files:
        diagnostics.extend(check_lock_discipline(sf))
        diagnostics.extend(check_async_safety(sf))
        diagnostics.extend(check_publication_order(sf))
        diagnostics.extend(sf.suppression_diagnostics())
    diagnostics.extend(check_api_surface(files))
    return sorted(set(diagnostics))


def run_checks(paths: Sequence[Union[str, Path]]) -> List[Diagnostic]:
    """All diagnostics for the ``.py`` files under *paths*, sorted."""
    diagnostics: List[Diagnostic] = []
    files: List[SourceFile] = []
    for path in iter_python_files(paths):
        try:
            files.append(SourceFile(path))
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    rule="parse-error",
                    message=f"could not parse: {exc.msg}",
                )
            )
    diagnostics.extend(_analyze(files))
    return sorted(set(diagnostics))


def run_checks_on_sources(sources: Dict[str, str]) -> List[Diagnostic]:
    """:func:`run_checks` over in-memory ``{label: source}`` texts.

    Test helper: corpus assertions and doctests check analyzer output
    without touching the filesystem.
    """
    diagnostics: List[Diagnostic] = []
    files: List[SourceFile] = []
    for label, text in sorted(sources.items()):
        try:
            files.append(SourceFile(label, text))
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=label,
                    line=exc.lineno or 1,
                    rule="parse-error",
                    message=f"could not parse: {exc.msg}",
                )
            )
    diagnostics.extend(_analyze(files))
    return sorted(set(diagnostics))


def render_report(diagnostics: Iterable[Diagnostic]) -> str:
    """The human-facing report: one diagnostic per line plus a summary."""
    found = list(diagnostics)
    lines = [d.render() for d in found]
    errors = sum(1 for d in found if d.severity == "error")
    warnings = sum(1 for d in found if d.severity == "warning")
    lines.append(
        f"invariant check: {errors} error(s), {warnings} warning(s)"
        if (errors or warnings)
        else "invariant check: all clean"
    )
    return "\n".join(lines)
