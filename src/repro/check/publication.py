"""Publication-order analyzer: the generation field is assigned last.

The merge service's read paths are lock-free: ``merged_view`` reads
``_generation``, then ``_class_to_sid``, then ``_shards`` without taking
any lock.  That is sound only because commit sites publish in the
opposite order — new shards first, the class map next, the generation
stamp **last** — so a reader that observes generation *g* is guaranteed
to see every structure *g* describes.  Reorder those stores and the
lock-free reads silently return torn state.

A commit site declares its contract with a trailing annotation on the
``def`` line::

    def _commit(self, ...):  # publishes: _shards, _class_to_sid, _generation

The listed fields are ordered; the **last** one is the publication
stamp.  The rule (``publication-order``) then checks, per annotated
function:

* the function stores the final field at least once (otherwise the
  annotation is stale);
* no store or in-place mutation (``.pop``, ``[k] = v``, ``.update`` ...)
  of any *earlier* listed field appears after the last store to the
  final field.

Reads are never flagged — only the mutation order matters — and fields
not named in the annotation are ignored entirely.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Union

from repro.check.diagnostics import (
    Diagnostic,
    SourceFile,
    access_kind,
    build_parent_map,
    parse_publishes_comment,
)

__all__ = ["check_publication_order"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _self_name(func: FunctionNode) -> str:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else "self"


def _field_accesses(
    func: FunctionNode, self_name: str, fields: List[str]
) -> Dict[str, List[ast.Attribute]]:
    """Every ``self.<field>`` attribute node per listed field."""
    wanted = set(fields)
    accesses: Dict[str, List[ast.Attribute]] = {f: [] for f in fields}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
            and node.attr in wanted
        ):
            accesses[node.attr].append(node)
    return accesses


def check_publication_order(sf: SourceFile) -> List[Diagnostic]:
    """Run the ``publication-order`` rule over one source file."""
    diagnostics: List[Diagnostic] = []
    parents = build_parent_map(sf.tree)
    for func in ast.walk(sf.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fields = parse_publishes_comment(sf.region_comment(func))
        if not fields:
            continue
        if len(fields) < 2:
            continue  # a single field imposes no order
        final = fields[-1]
        self_name = _self_name(func)
        accesses = _field_accesses(func, self_name, fields)

        final_store_lines = [
            node.lineno
            for node in accesses[final]
            if access_kind(node, parents) == "write"
        ]
        if not final_store_lines:
            if not sf.suppressed(func.lineno, "publication-order"):
                diagnostics.append(
                    Diagnostic(
                        path=sf.path,
                        line=func.lineno,
                        rule="publication-order",
                        message=(
                            f"{func.name}() declares `# publishes: "
                            f"{', '.join(fields)}` but never stores the "
                            f"final field {final!r} — stale annotation?"
                        ),
                    )
                )
            continue
        last_final_store = max(final_store_lines)

        for field in fields[:-1]:
            for node in accesses[field]:
                if access_kind(node, parents) != "write":
                    continue
                if node.lineno <= last_final_store:
                    continue
                if sf.suppressed(node.lineno, "publication-order"):
                    continue
                diagnostics.append(
                    Diagnostic(
                        path=sf.path,
                        line=node.lineno,
                        rule="publication-order",
                        message=(
                            f"{func.name}() mutates published field "
                            f"{field!r} after the final store of "
                            f"{final!r} (line {last_final_store}) — "
                            "lock-free readers that observed the new "
                            "generation can see torn state"
                        ),
                    )
                )
    return diagnostics
