"""Shared infrastructure for the invariant analyzers.

Every analyzer in :mod:`repro.check` consumes a :class:`SourceFile` —
one parsed module plus its comment map — and produces
:class:`Diagnostic` records.  This module owns the three pieces they
all share:

* the **annotation grammar**: structured trailing comments
  (``# guarded-by: <lock>``, ``# requires-lock: <lock>``,
  ``# lock: planner``, ``# publishes: a, b, c``,
  ``# frozen-after-init``) that declare the concurrency invariants the
  analyzers enforce — the conventions are documented in
  ``docs/STATIC_ANALYSIS.md``;
* **suppressions**: ``# check: ignore[rule-id]`` on the offending line
  silences exactly that rule there; a bare ``# check: ignore``
  silences every rule on the line.  Unknown rule ids in a suppression
  are themselves reported (as warnings) so typos cannot silently
  disable a rule;
* **mutation classification**: deciding whether an attribute access is
  a read, a write, or a mutating method call (``.pop``, ``.update``,
  ``self.attr[k] = v`` ...), shared by the lock-discipline and
  publication-order analyzers.

>>> sf = SourceFile("<demo>", "x = 1  # guarded-by: _lock\\n")
>>> parse_guard_comment(sf.comment(1))
('_lock', False)
>>> sf2 = SourceFile("<demo>", "y = 2  # check: ignore[lock-guard]\\n")
>>> sf2.suppressed(1, "lock-guard"), sf2.suppressed(1, "lock-order")
(True, False)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "SourceFile",
    "access_kind",
    "parse_guard_comment",
    "parse_ignore_comment",
    "parse_publishes_comment",
    "parse_requires_comment",
]

#: rule id → one-line description.  The single source of truth for what
#: a valid rule id is (suppressions referencing anything else warn).
ALL_RULES: Dict[str, str] = {
    "lock-guard": (
        "a # guarded-by: annotated attribute was accessed outside a "
        "`with <lock>:` block (or a # requires-lock: function)"
    ),
    "lock-order": (
        "a loop acquires locks without iterating a sorted() sequence, "
        "so the ascending-id acquisition order cannot be guaranteed"
    ),
    "lock-nesting": (
        "a blocking lock acquisition while the planner (topology) lock "
        "is held, or a re-entrant acquisition of a held lock"
    ),
    "frozen-field": (
        "a # frozen-after-init annotated attribute was written outside "
        "__init__ (committed objects must stay immutable once published)"
    ),
    "async-blocking": (
        "a blocking call (lock acquire, file/socket I/O, service write) "
        "is reachable from a coroutine running inline on the event loop"
    ),
    "publication-order": (
        "a commit site mutates a published field after assigning the "
        "final (generation) field of its # publishes: list"
    ),
    "http-status-map": (
        "an exception class has no HTTP status mapping in _STATUS_MAP"
    ),
    "api-surface": (
        "__all__ is out of sync with the module's actual bindings, or a "
        "facade re-exports a name its source module does not declare"
    ),
    "parse-error": "the file could not be parsed as Python source",
    "bad-suppression": "a # check: ignore[...] names an unknown rule id",
}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One analyzer finding, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}: [{self.rule}] {self.message}"


_GUARDED = re.compile(
    r"guarded-by(?:\((?P<mode>[a-z-]+)\))?:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
)
_FROZEN = re.compile(r"frozen-after-init\b")
_REQUIRES = re.compile(r"requires-lock:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_PLANNER = re.compile(r"(?<![a-z-])lock:\s*planner\b")
_PUBLISHES = re.compile(r"publishes:\s*(?P<fields>[A-Za-z0-9_,\s]+)")
_IGNORE = re.compile(r"check:\s*ignore(?:\[(?P<rules>[a-z0-9\-,\s]*)\])?")


def parse_guard_comment(comment: str) -> Optional[Tuple[str, bool]]:
    """``(lock_name, writes_only)`` from a guarded-by comment, or ``None``.

    >>> parse_guard_comment("# guarded-by(writes): _topology")
    ('_topology', True)
    """
    match = _GUARDED.search(comment)
    if match is None:
        return None
    return match.group("lock"), match.group("mode") == "writes"


def parse_requires_comment(comment: str) -> Optional[str]:
    """The lock a ``# requires-lock:`` comment declares held, or ``None``."""
    match = _REQUIRES.search(comment)
    return match.group("lock") if match else None


def parse_publishes_comment(comment: str) -> Optional[List[str]]:
    """The ordered field list of a ``# publishes:`` comment, or ``None``."""
    match = _PUBLISHES.search(comment)
    if match is None:
        return None
    fields = [f.strip() for f in match.group("fields").split(",")]
    return [f for f in fields if f]


def parse_ignore_comment(comment: str) -> Optional[Optional[FrozenSet[str]]]:
    """The suppression a comment carries: a rule set, or ``None`` for all.

    Returns ``None`` when the comment is not a suppression at all; the
    caller distinguishes that from an explicit blanket ``ignore`` (which
    returns an empty frozenset is wrong — so a blanket ignore returns
    the sentinel ``frozenset({"*"})``).
    """
    match = _IGNORE.search(comment)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset({"*"})
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def is_frozen_comment(comment: str) -> bool:
    return bool(_FROZEN.search(comment))


def is_planner_comment(comment: str) -> bool:
    return bool(_PLANNER.search(comment))


class SourceFile:
    """One module's text, AST, comments and suppressions.

    *path* may be a real file (text read from disk) or any label when
    *text* is supplied directly (tests, in-memory snippets).  Parsing
    happens eagerly; a :class:`SyntaxError` propagates to the caller
    (the runner turns it into a ``parse-error`` diagnostic).
    """

    def __init__(
        self, path: Union[str, Path], text: Optional[str] = None
    ) -> None:
        self.path = str(path)
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        self.comments: Dict[int, str] = {}
        #: line → suppressed rule ids ("*" = all) from # check: ignore.
        self.ignores: Dict[int, FrozenSet[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    line = token.start[0]
                    existing = self.comments.get(line, "")
                    self.comments[line] = (existing + " " + token.string).strip()
        except tokenize.TokenError:  # pragma: no cover - ast parsed, so rare
            pass
        for line, comment in self.comments.items():
            rules = parse_ignore_comment(comment)
            if rules is not None:
                self.ignores[line] = rules

    def comment(self, line: int) -> str:
        """The comment text on *line* (empty string when there is none)."""
        return self.comments.get(line, "")

    def region_comment(self, node: ast.AST) -> str:
        """Comments attached to a ``def``'s signature region.

        Multi-line signatures may carry the annotation on any line from
        the ``def`` up to (but not including) the first body statement.
        """
        body = getattr(node, "body", None)
        start = getattr(node, "lineno", 0)
        end = body[0].lineno if body else start + 1
        parts = [self.comments[n] for n in range(start, end) if n in self.comments]
        return " ".join(parts)

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether *rule* is silenced on *line* by a ``# check: ignore``."""
        rules = self.ignores.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules

    def suppression_diagnostics(self) -> List[Diagnostic]:
        """Warnings for suppressions that name unknown rule ids."""
        out: List[Diagnostic] = []
        for line, rules in sorted(self.ignores.items()):
            for rule in sorted(rules - {"*"}):
                if rule not in ALL_RULES:
                    out.append(
                        Diagnostic(
                            path=self.path,
                            line=line,
                            rule="bad-suppression",
                            message=(
                                f"suppression names unknown rule {rule!r} "
                                f"(known: {', '.join(sorted(ALL_RULES))})"
                            ),
                            severity="warning",
                        )
                    )
        return out


#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
        "__setitem__",
    }
)


def build_parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) → parent`` for every node under *root*."""
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def access_kind(node: ast.expr, parents: Dict[int, ast.AST]) -> str:
    """Classify an attribute/name reference as ``"read"`` or ``"write"``.

    A write is a direct store (``self.attr = v``, ``self.attr += v``,
    ``del self.attr``), a store through subscription
    (``self.attr[k] = v``, ``del self.attr[k]``), or a call of a
    mutating method (``self.attr.pop(...)``).
    """
    ctx = getattr(node, "ctx", None)
    if isinstance(ctx, (ast.Store, ast.Del)):
        return "write"
    parent = parents.get(id(node))
    if isinstance(parent, ast.Subscript) and parent.value is node:
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return "write"
    if isinstance(parent, ast.Attribute) and parent.value is node:
        if parent.attr in MUTATING_METHODS:
            grand = parents.get(id(parent))
            if isinstance(grand, ast.Call) and grand.func is parent:
                return "write"
    return "read"


def local_bindings(func: ast.AST) -> Tuple[Set[str], Set[str]]:
    """``(locals, globals)`` name sets for a function body.

    *locals* are parameter names plus every name stored without a
    ``global`` declaration; *globals* are the explicitly declared ones.
    Used by the module-scope lock checker to tell a shadowing local
    apart from a read of the guarded module variable.
    """
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            local.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                local.add(node.name)
    local -= declared_global
    return local, declared_global
