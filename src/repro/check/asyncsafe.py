"""Async-safety analyzer: no blocking calls inline on the event loop.

The HTTP front end (:mod:`repro.service.http`) runs coroutines on an
asyncio event loop and pushes every blocking service call into a thread
pool via ``loop.run_in_executor``.  A blocking call that slips into a
coroutine body *inline* — a lock ``.acquire()``, a synchronous
``MergeService`` write, file or socket I/O, ``time.sleep`` — stalls the
whole loop, which under load turns one slow merge into a full-service
outage.  That failure mode is invisible to unit tests (a single request
never notices) and to type checkers, so it gets its own analyzer.

The rule (``async-blocking``):

* the *roots* are every ``async def`` in the module;
* the *reachable set* is the roots plus every synchronous function in
  the same module transitively called from a root by bare name or as a
  ``self.<name>(...)`` method — those helpers run inline on the loop
  too;
* within the reachable set, flag

  - ``<anything>.acquire(...)`` calls — lock acquisition;
  - calls of known-blocking methods (``join``, ``result``, ``recv``,
    ``send``, ``connect``, ``accept``, ``communicate``, ``wait`` ...)
    and known-blocking service methods (``register``);
  - ``open(...)`` and ``time.sleep(...)``;
  - a synchronous ``with`` statement whose context expression looks
    like a lock (name matches ``lock``/``mutex``/``_topology``);

* **awaited calls are exempt** — ``await self._stop.wait()`` suspends,
  it does not block — and so are function *references* (passing
  ``self._service.register`` to ``run_in_executor`` is the sanctioned
  escape hatch; the analyzer only flags *calls*).

Nested function definitions and lambdas are not treated as running
inline (they are typically executor thunks), but calling one by name
from a coroutine pulls it into the reachable set like any helper.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.check.diagnostics import Diagnostic, SourceFile

__all__ = ["check_async_safety"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Attribute-call names that block the calling thread.
BLOCKING_ATTR_CALLS = frozenset(
    {
        "accept",
        "acquire",
        "check_call",
        "check_output",
        "communicate",
        "connect",
        "join",
        "read_text",
        "recv",
        "result",
        "send",
        "sendall",
        "wait",
        "write_text",
    }
)

#: Service methods that take locks / do real work; calling them inline
#: from a coroutine bypasses the executor hand-off.
BLOCKING_SERVICE_METHODS = frozenset({"register"})

#: Bare-name calls that block.
BLOCKING_NAME_CALLS = frozenset({"open", "input"})

#: ``module.func`` calls that block.
BLOCKING_DOTTED_CALLS = frozenset({("time", "sleep"), ("socket", "create_connection")})

_LOCKISH = re.compile(r"(^|_)(lock|mutex)s?($|_)|^_topology$|^_planner$")


def _function_defs(tree: ast.Module) -> Dict[str, FunctionNode]:
    """Top-level and class-method defs by bare name (last wins)."""
    defs: Dict[str, FunctionNode] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs[item.name] = item
    return defs


def _own_nodes(func: FunctionNode) -> List[ast.AST]:
    """Nodes of *func*'s body excluding nested def/lambda bodies."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # executor thunks / callbacks run elsewhere
        stack.extend(ast.iter_child_nodes(node))
    return out


def _called_names(func: FunctionNode) -> Set[str]:
    """Bare-name and ``self.<name>`` call targets in *func*'s own body."""
    names: Set[str] = set()
    for node in _own_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            names.add(target.attr)
    return names


def _reachable_sync(
    defs: Dict[str, FunctionNode],
) -> Dict[str, Tuple[FunctionNode, str]]:
    """``name → (def, root)`` for code that runs inline on the loop.

    Roots are the async defs (their *root* is themselves); synchronous
    defs enter the map when reachable from a root, tagged with the
    coroutine that pulls them in (for the diagnostic message).
    """
    reachable: Dict[str, Tuple[FunctionNode, str]] = {}
    queue: List[Tuple[str, str]] = []
    for name, node in defs.items():
        if isinstance(node, ast.AsyncFunctionDef):
            reachable[name] = (node, name)
            queue.append((name, name))
    while queue:
        name, root = queue.pop()
        for callee in _called_names(defs[name]):
            if callee in reachable or callee not in defs:
                continue
            node = defs[callee]
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # already a root
            reachable[callee] = (node, root)
            queue.append((callee, root))
    return reachable


def _awaited_calls(func: FunctionNode) -> Set[int]:
    """``id()`` of every expression directly under an ``await``."""
    return {
        id(node.value)
        for node in ast.walk(func)
        if isinstance(node, ast.Await)
    }


def _blocking_call_reason(node: ast.Call) -> Optional[str]:
    """Why this call blocks, or ``None`` if it does not."""
    target = node.func
    if isinstance(target, ast.Name):
        if target.id in BLOCKING_NAME_CALLS:
            return f"blocking builtin call {target.id}()"
        return None
    if not isinstance(target, ast.Attribute):
        return None
    attr = target.attr
    if isinstance(target.value, ast.Name):
        dotted = (target.value.id, attr)
        if dotted in BLOCKING_DOTTED_CALLS:
            return f"blocking call {dotted[0]}.{attr}()"
    if attr in BLOCKING_ATTR_CALLS:
        return f"blocking call .{attr}()"
    if attr in BLOCKING_SERVICE_METHODS:
        return f"blocking service method .{attr}() called inline"
    return None


def _lockish_with_reason(item: ast.withitem) -> Optional[str]:
    """A ``with``-item that acquires a lock synchronously, or ``None``."""
    expr = item.context_expr
    name: Optional[str] = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is not None and _LOCKISH.search(name):
        return f"synchronous `with {name}:` acquires a lock on the loop"
    return None


def check_async_safety(sf: SourceFile) -> List[Diagnostic]:
    """Run the ``async-blocking`` rule over one source file."""
    defs = _function_defs(sf.tree)
    reachable = _reachable_sync(defs)
    diagnostics: List[Diagnostic] = []

    def report(line: int, reason: str, name: str, root: str) -> None:
        if sf.suppressed(line, "async-blocking"):
            return
        if name == root:
            where = f"in coroutine {root}()"
        else:
            where = f"in {name}(), reachable from coroutine {root}()"
        diagnostics.append(
            Diagnostic(
                path=sf.path,
                line=line,
                rule="async-blocking",
                message=(
                    f"{reason} {where} — the event loop stalls; move the "
                    "work into run_in_executor or await an async variant"
                ),
            )
        )

    for name, (func, root) in sorted(reachable.items()):
        awaited = _awaited_calls(func)
        for node in _own_nodes(func):
            if isinstance(node, ast.Call) and id(node) not in awaited:
                reason = _blocking_call_reason(node)
                if reason is not None:
                    report(node.lineno, reason, name, root)
            elif isinstance(node, ast.With):
                for item in node.items:
                    reason = _lockish_with_reason(item)
                    if reason is not None:
                        report(node.lineno, reason, name, root)
    return diagnostics
