"""repro.check — static + dynamic verification of concurrency invariants.

PR 7 replaced the merge service's global lock with a hand-rolled
discipline: per-shard locks in ascending-sid order, a short planner
(topology) lock around plan/reserve/commit, and a publication order
that makes lock-free reads sound.  Those invariants are integrity
constraints on the *code*, and — like the paper's schema constraints —
they should be checked mechanically, not socially.  This package is
that checker:

* :mod:`repro.check.locks` — lock-discipline linter driven by
  ``# guarded-by:`` / ``# requires-lock:`` / ``# lock: planner`` /
  ``# frozen-after-init`` annotations (rules ``lock-guard``,
  ``lock-order``, ``lock-nesting``, ``frozen-field``);
* :mod:`repro.check.asyncsafe` — no blocking call reachable from a
  coroutine running inline on the event loop (``async-blocking``);
* :mod:`repro.check.publication` — commit sites assign the generation
  stamp last among their ``# publishes:`` fields
  (``publication-order``);
* :mod:`repro.check.api_surface` — ``__all__`` honesty, facade
  re-export integrity, and exception → HTTP-status coverage
  (``api-surface``, ``http-status-map``);
* :mod:`repro.check.witness` — the runtime lock-order witness that
  cross-checks the static rules under the concurrency storm tests.

Run it as ``schema-merge check --strict src/repro`` or
``python scripts/check_invariants.py``; the annotation grammar and
every rule are documented in ``docs/STATIC_ANALYSIS.md``.

>>> from repro.check import run_checks_on_sources
>>> bad = "x = {}  # guarded-by: _lock\\ndef f():\\n    x[1] = 2\\n"
>>> [(d.line, d.rule) for d in run_checks_on_sources({"m.py": bad})]
[(3, 'lock-guard')]
"""

from __future__ import annotations

from repro.check.api_surface import check_api_surface
from repro.check.asyncsafe import check_async_safety
from repro.check.diagnostics import ALL_RULES, Diagnostic, SourceFile
from repro.check.locks import check_lock_discipline
from repro.check.publication import check_publication_order
from repro.check.runner import (
    iter_python_files,
    render_report,
    run_checks,
    run_checks_on_sources,
)
from repro.check.witness import (
    LockLike,
    LockOrderViolation,
    WitnessedLock,
    disable_witness,
    enable_witness,
    witness_active,
    witness_stats,
)

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LockLike",
    "LockOrderViolation",
    "SourceFile",
    "WitnessedLock",
    "check_api_surface",
    "check_async_safety",
    "check_lock_discipline",
    "check_publication_order",
    "disable_witness",
    "enable_witness",
    "iter_python_files",
    "render_report",
    "run_checks",
    "run_checks_on_sources",
    "witness_active",
    "witness_stats",
]
