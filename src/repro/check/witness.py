"""Runtime lock-order witness: dynamic cross-check of the static rules.

The static analyzers prove lock discipline over the code they can see;
this module checks the same invariants over the locks a *running*
service actually takes.  When the witness is enabled (it is off by
default and costs nothing until then), :class:`repro.service.service.
MergeService` builds its topology and shard locks as
:class:`WitnessedLock` instances.  Every acquire is then checked
against a thread-local stack of locks the thread already holds:

* **re-entrancy** — acquiring a lock already held by this thread would
  self-deadlock (these are plain locks, not RLocks);
* **planner nesting** — blocking on *any* lock while the planner
  (topology) lock is held turns the short critical section into an
  unbounded one; the single sanctioned exception is acquiring a
  **fresh** lock (``acquire(fresh=True)``): a just-created, unpublished
  lock can never be contended, which is exactly the ``_reserve`` path;
* **ascending-sid order** — shard locks must be acquired in strictly
  ascending sid order; any descending or equal step is a potential
  ABBA deadlock with a writer walking the other way.

A violation raises :class:`LockOrderViolation` (an ``AssertionError``
subclass: witnesses are debug instrumentation, and test suites already
treat assertion failures as hard evidence).  The ``slow`` concurrency
storm tests run with the witness enabled, so every interleaving the
storm explores is also an interleaving the discipline is checked on.

>>> enable_witness()
>>> lock_a, lock_b = WitnessedLock(sid=1), WitnessedLock(sid=2)
>>> with lock_a:
...     with lock_b:      # ascending: fine
...         pass
>>> try:
...     with lock_b:
...         with lock_a:  # descending: flagged
...             pass
... except LockOrderViolation:
...     print("caught")
caught
>>> disable_witness()
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Protocol, runtime_checkable

__all__ = [
    "LockLike",
    "LockOrderViolation",
    "WitnessedLock",
    "disable_witness",
    "enable_witness",
    "witness_active",
    "witness_stats",
]


@runtime_checkable
class LockLike(Protocol):
    """The lock surface the service relies on (Lock or WitnessedLock)."""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def locked(self) -> bool: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc_info: object) -> Optional[bool]: ...


class LockOrderViolation(AssertionError):
    """A thread acquired locks in an order the discipline forbids."""


_active = False
_stats_lock = threading.Lock()
_stats: Dict[str, int] = {"acquires": 0, "checked": 0}
_tls = threading.local()


def enable_witness() -> None:
    """Turn the witness on (affects locks created *after* this call)."""
    global _active
    _active = True


def disable_witness() -> None:
    global _active
    _active = False


def witness_active() -> bool:
    return _active


def witness_stats() -> Dict[str, int]:
    """Counters: total acquires seen, acquires order-checked."""
    with _stats_lock:
        return dict(_stats)


def reset_witness_stats() -> None:
    with _stats_lock:
        _stats["acquires"] = 0
        _stats["checked"] = 0


def _held() -> List["WitnessedLock"]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = []
        _tls.held = stack
    return stack


#: Rank of the planner (topology) lock; shard locks rank below it.
PLANNER_RANK = 1
SHARD_RANK = 0


class WitnessedLock:
    """A ``threading.Lock`` that checks the service lock discipline.

    *sid* marks a shard lock (ordered by sid); ``planner=True`` marks
    the topology lock.  The wrapper is a drop-in for the subset of the
    ``Lock`` API the service uses.
    """

    __slots__ = ("_lock", "sid", "planner", "name")

    def __init__(
        self,
        sid: Optional[int] = None,
        planner: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self.sid = sid
        self.planner = planner
        self.name = name or (
            "planner" if planner else f"shard[{sid}]" if sid is not None else "lock"
        )

    @property
    def rank(self) -> int:
        return PLANNER_RANK if self.planner else SHARD_RANK

    def _check(self, held: List["WitnessedLock"]) -> None:
        for prior in held:
            if prior is self:
                raise LockOrderViolation(
                    f"re-entrant acquire of {self.name}: these are plain "
                    "locks, a second acquire self-deadlocks"
                )
        planner_held = any(prior.planner for prior in held)
        if planner_held:
            raise LockOrderViolation(
                f"blocking acquire of {self.name} while the planner "
                "(topology) lock is held — the short critical section "
                "must never wait on another lock (only fresh, unpublished "
                "locks may be taken there, via acquire(fresh=True))"
            )
        if not self.planner and self.sid is not None:
            for prior in held:
                if prior.planner or prior.sid is None:
                    continue
                if prior.sid >= self.sid:
                    raise LockOrderViolation(
                        f"shard lock order violated: {self.name} acquired "
                        f"while holding {prior.name}; shard locks must be "
                        "taken in strictly ascending sid order"
                    )

    def acquire(
        self,
        blocking: bool = True,
        timeout: float = -1,
        *,
        fresh: bool = False,
    ) -> bool:
        held = _held()
        with _stats_lock:
            _stats["acquires"] += 1
        if not fresh:
            with _stats_lock:
                _stats["checked"] += 1
            self._check(held)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            held.append(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        held = _held()
        if self in held:
            held.remove(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<WitnessedLock {self.name} {state}>"
