"""Deterministic renderers: ASCII text and Graphviz DOT."""
