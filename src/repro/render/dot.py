"""Graphviz DOT output — the library's stand-in for the paper's GUI.

Produces deterministic DOT text drawing schemas in the paper's visual
language: solid labelled edges for arrows, bold double-ish (``=>``
styled) edges for specialization covers, dashed boxes for implicit
classes and rounded boxes for generalization classes.  The text can be
piped straight into ``dot -Tpng`` where Graphviz is available; the test
suite only asserts on the text.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.lower import AnnotatedSchema
from repro.core.names import ClassName, GenName, ImplicitName, sort_key
from repro.core.participation import Participation
from repro.core.schema import Schema

__all__ = ["schema_to_dot", "annotated_to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_lines(classes, node_ids: Dict[ClassName, str]) -> List[str]:
    lines = []
    for cls in sorted(classes, key=sort_key):
        node_id = f"n{len(node_ids)}"
        node_ids[cls] = node_id
        attributes = [f"label={_quote(str(cls))}"]
        if isinstance(cls, ImplicitName):
            attributes.append("style=dashed")
        elif isinstance(cls, GenName):
            attributes.append("style=rounded")
        lines.append(f"  {node_id} [{', '.join(attributes)}];")
    return lines


def schema_to_dot(schema: Schema, name: str = "schema") -> str:
    """Render a schema as a DOT digraph (arrows solid, ISA bold).

    Only non-redundant edges are drawn, mirroring the paper's figures:
    specialization covers instead of the full order, and for arrows
    only those not implied by W1/W2 from another drawn arrow (i.e.
    each class's arrows to the *minimal* targets of each label, and
    only where no generalization already carries the identical arrow).
    """
    node_ids: Dict[ClassName, str] = {}
    lines = [f"digraph {_quote(name)} {{", "  rankdir=BT;", "  node [shape=box];"]
    lines.extend(_node_lines(schema.classes, node_ids))
    for sub, sup in sorted(
        schema.spec_covers(), key=lambda e: (sort_key(e[0]), sort_key(e[1]))
    ):
        lines.append(
            f"  {node_ids[sub]} -> {node_ids[sup]} "
            "[style=bold, arrowhead=onormal];"
        )
    drawn = []
    for cls in schema.sorted_classes():
        inherited = set()
        for sup in schema.generalizations_of(cls):
            if sup != cls:
                inherited.update(
                    (label, target)
                    for (_s, label, target) in schema.arrows_from(sup)
                )
        for label in sorted(schema.out_labels(cls)):
            for target in sorted(
                schema.min_classes(schema.reach(cls, label)), key=sort_key
            ):
                if (label, target) not in inherited:
                    drawn.append((cls, label, target))
    for source, label, target in drawn:
        lines.append(
            f"  {node_ids[source]} -> {node_ids[target]} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def annotated_to_dot(schema: AnnotatedSchema, name: str = "schema") -> str:
    """Render an annotated schema; optional arrows are drawn dashed."""
    node_ids: Dict[ClassName, str] = {}
    lines = [f"digraph {_quote(name)} {{", "  rankdir=BT;", "  node [shape=box];"]
    lines.extend(_node_lines(schema.classes, node_ids))
    strict = sorted(
        ((a, b) for a, b in schema.spec if a != b),
        key=lambda e: (sort_key(e[0]), sort_key(e[1])),
    )
    for sub, sup in strict:
        lines.append(
            f"  {node_ids[sub]} -> {node_ids[sup]} "
            "[style=bold, arrowhead=onormal];"
        )
    table = schema.participation_table()
    for (source, label, target) in sorted(
        table, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
    ):
        style = (
            ", style=dashed"
            if table[(source, label, target)] == Participation.OPTIONAL
            else ""
        )
        lines.append(
            f"  {node_ids[source]} -> {node_ids[target]} "
            f"[label={_quote(label)}{style}];"
        )
    lines.append("}")
    return "\n".join(lines)
