"""Deterministic text rendering of schemas and merge reports.

The paper's prototype shipped "a graphical interface ... for creating
and displaying schema graphs"; in a terminal-first reproduction the
equivalent affordance is a stable, diffable text layout.  Everything
here is deterministic — classes in canonical name order, arrows sorted
— so renderings can be asserted in tests and compared across runs.

The layout mirrors the paper's figure conventions: ``-->`` for arrow
(attribute) edges with their labels, ``==>`` for specialization edges,
and only Hasse covers of the specialization order are shown (the
figures "omit double arrows implied by transitivity and reflexivity").
"""

from __future__ import annotations

from typing import List

from repro.core.keys import KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.merge import MergeReport
from repro.core.names import sort_key
from repro.core.participation import Participation
from repro.core.schema import Schema

__all__ = [
    "render_schema",
    "render_keyed",
    "render_annotated",
    "render_report",
    "render_instance",
]


def render_schema(schema: Schema, title: str = "") -> str:
    """A stable multi-line description of a schema.

    Only non-inherited, canonical-free arrows are *not* filtered — the
    full closed relation is informative for debugging, but to stay
    close to the figures we print each class's arrows once, and the
    specialization section prints only covers.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if schema.is_empty():
        lines.append("(empty schema)")
        return "\n".join(lines)
    lines.append(f"classes ({len(schema.classes)}):")
    for cls in schema.sorted_classes():
        lines.append(f"  {cls}")
    covers = sorted(
        schema.spec_covers(),
        key=lambda edge: (sort_key(edge[0]), sort_key(edge[1])),
    )
    if covers:
        lines.append(f"specializations ({len(covers)} cover(s)):")
        for sub, sup in covers:
            lines.append(f"  {sub} ==> {sup}")
    arrows = schema.sorted_arrows()
    if arrows:
        lines.append(f"arrows ({len(arrows)}, closed):")
        for source, label, target in arrows:
            lines.append(f"  {source} --{label}--> {target}")
    return "\n".join(lines)


def render_keyed(keyed: KeyedSchema, title: str = "") -> str:
    """Render a keyed schema: the schema plus its key table."""
    lines = [render_schema(keyed.schema, title)]
    declared = sorted(keyed.declared_classes(), key=sort_key)
    if declared:
        lines.append(f"keys ({len(declared)} keyed class(es)):")
        for cls in declared:
            families = ", ".join(
                "{" + ", ".join(sorted(key)) + "}"
                for key in keyed.keys_of(cls)
            )
            lines.append(f"  {cls}: {families}")
    return "\n".join(lines)


def render_annotated(schema: AnnotatedSchema, title: str = "") -> str:
    """Render an annotated schema with participation marks.

    Required arrows print as ``--label-->`` and optional arrows as
    ``--label?-->``, following the paper's convention that constraint-0
    arrows are simply not drawn.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"classes ({len(schema.classes)}):")
    for cls in sorted(schema.classes, key=sort_key):
        lines.append(f"  {cls}")
    strict = sorted(
        ((a, b) for a, b in schema.spec if a != b),
        key=lambda edge: (sort_key(edge[0]), sort_key(edge[1])),
    )
    if strict:
        lines.append(f"specializations ({len(strict)}):")
        for sub, sup in strict:
            lines.append(f"  {sub} ==> {sup}")
    table = schema.participation_table()
    if table:
        lines.append(f"arrows ({len(table)}):")
        for (source, label, target) in sorted(
            table, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
        ):
            mark = "?" if table[(source, label, target)] == Participation.OPTIONAL else ""
            lines.append(f"  {source} --{label}{mark}--> {target}")
    return "\n".join(lines)


def render_instance(instance, title: str = "") -> str:
    """A stable multi-line description of a database instance.

    Extents come first (classes in canonical order, members sorted by
    repr), then one ``oid.label = value`` line per valuation entry —
    the level of detail the fusion examples need when inspecting which
    objects were identified.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not instance.oids:
        lines.append("(empty instance)")
        return "\n".join(lines)
    lines.append(f"objects ({len(instance.oids)}):")
    populated = {
        cls: members
        for cls, members in instance.extents().items()
        if members
    }
    for cls in sorted(populated, key=sort_key):
        members = ", ".join(
            repr(oid) for oid in sorted(populated[cls], key=repr)
        )
        lines.append(f"  {cls} ({len(populated[cls])}): {members}")
    values = instance.values()
    if values:
        lines.append(f"attribute values ({len(values)}):")
        for (oid, label), target in sorted(
            values.items(), key=lambda kv: (repr(kv[0][0]), kv[0][1])
        ):
            lines.append(f"  {oid!r}.{label} = {target!r}")
    return "\n".join(lines)


def render_report(report: MergeReport) -> str:
    """Render a full merge report: inputs, weak merge, result, implicits."""
    sections: List[str] = []
    for index, schema in enumerate(report.inputs, start=1):
        sections.append(render_schema(schema, f"input {index}"))
    if report.assertions:
        sections.append(
            f"assertions: {len(report.assertions)} elementary schema(s)"
        )
    sections.append(render_schema(report.weak, "weak merge (LUB)"))
    if report.implicit_members:
        pretty = "; ".join(
            "{" + ", ".join(sorted(str(m) for m in members)) + "}"
            for members in report.implicit_members
        )
        sections.append(f"implicit classes introduced below: {pretty}")
    sections.append(render_schema(report.merged, "merged schema (proper)"))
    sections.append(report.summary())
    return "\n\n".join(sections)
