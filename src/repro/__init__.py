"""repro — a full reproduction of *Theoretical Aspects of Schema Merging*
(Buneman, Davidson, Kosky; EDBT 1992).

The library implements the paper's general graph data model, the weak
information ordering with its bounded joins, the associative/commutative
upper merge with origin-named implicit classes, key-constraint
propagation, participation-constraint lower merges, and the ER /
relational / functional model translations the paper sketches — plus the
instance semantics, baselines and tooling needed to evaluate it.

Quickstart::

    from repro import Schema, upper_merge, isa

    pets = Schema.build(
        arrows=[("Dog", "owner", "Person"), ("Dog", "breed", "Breed")])
    licences = Schema.build(
        arrows=[("Dog", "licence", "Licence"),
                ("Police-dog", "badge", "Badge")],
        spec=[("Police-dog", "Dog")])
    merged = upper_merge(pets, licences, assertions=[isa("Puppy", "Dog")])

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
paper-to-module mapping, and ``EXPERIMENTS.md`` for the reproduction of
every figure.
"""

from repro.core.assertions import AssertionSet, arrow, class_exists, isa
from repro.core.consistency import ConsistencyRelation
from repro.core.framework import (
    ANNOTATED_ORDERING,
    KEYED_ORDERING,
    WEAK_ORDERING,
    InformationOrdering,
    annotated_join,
    annotated_meet,
    keyed_join,
    keyed_leq,
    keyed_meet,
    validate_merge_concept,
)
from repro.core.keys import (
    KeyFamily,
    KeyedSchema,
    merge_keyed,
    minimal_satisfactory_assignment,
)
from repro.core.lower import (
    AnnotatedSchema,
    annotated_leq,
    lower_merge,
    lower_properize,
)
from repro.core.merge import MergeReport, merge_report, upper_merge, weak_merge
from repro.core.implicit import properize, strip_implicits
from repro.core.names import BaseName, GenName, ImplicitName, name
from repro.core.ordering import compatible, is_sub, join, join_all, meet
from repro.core.participation import Participation
from repro.core.proper import canonical_arrows, canonical_class, is_proper
from repro.core.schema import Schema
from repro import obs
from repro.obs import span
from repro.service import (
    MergeService,
    QueryResult,
    RegisterReceipt,
    RegistrationEntry,
    RetireReceipt,
    serve_http,
)
from repro.tools.session import IntegrationSession
from repro.exceptions import (
    CorruptLogError,
    CorruptSnapshotError,
    IncompatibleSchemaError,
    IncompatibleSchemasError,
    InconsistentSchemasError,
    KeyConstraintError,
    NotProperError,
    RetiredSchemaError,
    SchemaError,
    SchemaValidationError,
    ServiceError,
    ServiceShutdownError,
    StorageError,
    UnknownClassError,
    UnknownSchemaError,
)

__version__ = "1.1.0"

__all__ = [
    "ANNOTATED_ORDERING",
    "AnnotatedSchema",
    "AssertionSet",
    "InformationOrdering",
    "KEYED_ORDERING",
    "WEAK_ORDERING",
    "BaseName",
    "ConsistencyRelation",
    "CorruptLogError",
    "CorruptSnapshotError",
    "GenName",
    "ImplicitName",
    "IncompatibleSchemaError",
    "IncompatibleSchemasError",
    "InconsistentSchemasError",
    "IntegrationSession",
    "KeyConstraintError",
    "KeyFamily",
    "KeyedSchema",
    "MergeReport",
    "MergeService",
    "NotProperError",
    "Participation",
    "QueryResult",
    "RegisterReceipt",
    "RegistrationEntry",
    "RetireReceipt",
    "RetiredSchemaError",
    "Schema",
    "SchemaError",
    "SchemaValidationError",
    "ServiceError",
    "ServiceShutdownError",
    "StorageError",
    "UnknownClassError",
    "UnknownSchemaError",
    "annotated_join",
    "annotated_leq",
    "annotated_meet",
    "arrow",
    "canonical_arrows",
    "canonical_class",
    "class_exists",
    "compatible",
    "is_proper",
    "is_sub",
    "isa",
    "join",
    "join_all",
    "keyed_join",
    "keyed_leq",
    "keyed_meet",
    "lower_merge",
    "lower_properize",
    "meet",
    "merge_keyed",
    "merge_report",
    "minimal_satisfactory_assignment",
    "name",
    "obs",
    "properize",
    "serve_http",
    "span",
    "strip_implicits",
    "upper_merge",
    "validate_merge_concept",
    "weak_merge",
    "__version__",
]
