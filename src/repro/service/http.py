"""Asyncio HTTP front end for the merge service — stdlib only.

One event loop serves every connection.  Reads (``GET``) are answered
inline on the loop: :meth:`~repro.service.MergeService.merged_view` and
:meth:`~repro.service.MergeService.query` are lock-free, so a read is
just a cache lookup and never stalls the loop.  Writes
(``POST /v1/schemas``) are dispatched to a small thread pool, so the
loop keeps streaming read responses while a register folds closures
under its per-shard locks — the service's "reads never block behind
writers" guarantee carries through to the wire.

**Routes** (wire format ``repro.api/1``; schemas travel as
``repro.schema/1`` documents from :mod:`repro.io.json_io`):

========  ===========================  =======================================
method    path                         answer
========  ===========================  =======================================
POST      ``/v1/schemas``              register a batch → receipt; an entry is
                                       either a bare schema document or a
                                       named wrapper ``{"name", "version",
                                       "lifecycle", "schema": {...}}``
GET       ``/v1/schemas/{name}``       lifecycle info for one named schema
DELETE    ``/v1/schemas/{name}``       retire every live version → receipt
GET       ``/v1/components/{id}/view`` one component's merged schema
GET       ``/v1/query/{class}``        everything asserted about one class
GET       ``/v1/stats``                Prometheus text (``?format=json`` for
                                       the ``service_stats()`` document)
========  ===========================  =======================================

**Status codes** follow the :mod:`repro.exceptions` taxonomy:
:class:`~repro.exceptions.InvalidRequestError` and
:class:`~repro.exceptions.SerializationError` → 400,
:class:`~repro.exceptions.UnknownClassError` and
:class:`~repro.exceptions.UnknownSchemaError` → 404,
:class:`~repro.exceptions.IncompatibleSchemasError` → 409 (the batch
rolled back; the registry is unchanged),
:class:`~repro.exceptions.RetiredSchemaError` → 410 (deliberately
withdrawn, as opposed to never registered),
:class:`~repro.exceptions.StorageError` → 500 (persistence trouble is
the server's problem, never the client's request),
:class:`~repro.exceptions.ServiceShutdownError` → 503.

>>> import http.client, json
>>> from repro.service import MergeService
>>> with HttpFrontend(MergeService()) as frontend:
...     conn = http.client.HTTPConnection(*frontend.address)
...     body = json.dumps({"format": "repro.api/1", "schemas": [
...         {"format": "repro.schema/1",
...          "arrows": [["Dog", "owner", "Person"]]}]})
...     conn.request("POST", "/v1/schemas", body)
...     registered = json.loads(conn.getresponse().read())
...     conn.request("GET", "/v1/query/Dog")
...     answer = json.loads(conn.getresponse().read())
...     conn.close()
>>> registered["generation"], answer["arrows_out"]
(1, [['owner', 'Person']])
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.exceptions import (
    IncompatibleSchemasError,
    InvalidRequestError,
    RetiredSchemaError,
    SchemaError,
    SerializationError,
    ServiceShutdownError,
    StorageError,
    UnknownClassError,
    UnknownSchemaError,
)
from repro.io.json_io import schema_from_dict, schema_to_dict
from repro.obs import prometheus_text
from repro.service.api_types import API_FORMAT
from repro.service.service import MergeService
from repro.service.storage import RegistrationEntry

__all__ = ["HttpFrontend", "serve_http", "status_for"]

#: Exception → HTTP status, checked in order (most specific first).
#: The terminal ``SchemaError`` entry is the taxonomy-wide fallback:
#: every library error is a client-input problem (400) unless a more
#: specific mapping above says otherwise; only *non*-taxonomy
#: exceptions — genuine bugs — fall through to 500.
_STATUS_MAP: Tuple[Tuple[type, int], ...] = (
    (UnknownClassError, 404),
    (UnknownSchemaError, 404),
    (RetiredSchemaError, 410),
    (ServiceShutdownError, 503),
    (IncompatibleSchemasError, 409),
    (InvalidRequestError, 400),
    (SerializationError, 400),
    (StorageError, 500),
    (SchemaError, 400),
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def status_for(exc: BaseException) -> int:
    """The HTTP status the taxonomy assigns to *exc* (500 if unmapped).

    >>> status_for(UnknownClassError("no such class"))
    404
    >>> status_for(RuntimeError("surprise"))
    500
    """
    for exc_type, status in _STATUS_MAP:
        if isinstance(exc, exc_type):
            return status
    return 500


class HttpFrontend:
    """The HTTP server: owns a loop, a write pool, and open connections.

    Two ways to run it.  :func:`serve_http` (or :meth:`serve_forever`)
    blocks the calling thread — the CLI's mode.  The context-manager
    form runs the loop on a daemon thread and yields once the socket is
    bound, which is what tests and benchmarks want::

        with HttpFrontend(service, port=0) as frontend:
            host, port = frontend.address   # port=0 picked a free one

    *max_workers* bounds concurrent in-flight registers; reads are not
    pooled (they run on the event loop and never block).
    """

    def __init__(
        self,
        service: MergeService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: int = 4,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._max_workers = max_workers
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._writers: set = set()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — available once serving."""
        if self._address is None:
            raise RuntimeError("the front end is not serving yet")
        return self._address

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def _run(
        self,
        ready: Optional[threading.Event] = None,
        announce: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers,
            thread_name_prefix="repro-http-write",
        )
        server = await asyncio.start_server(self._handle, self._host, self._port)
        try:
            host, port = server.sockets[0].getsockname()[:2]
            self._address = (host, port)
            if announce is not None:
                announce(host, port)
            if ready is not None:
                ready.set()
            async with server:
                await self._stop.wait()
                # Unpark keep-alive handlers so wait_closed() returns.
                for writer in list(self._writers):
                    writer.close()
        finally:
            self._pool.shutdown(wait=False)
            if ready is not None:
                ready.set()  # never leave a starter waiting on a crash

    def serve_forever(
        self, announce: Optional[Callable[[str, int], None]] = None
    ) -> None:
        """Serve on the calling thread until KeyboardInterrupt."""
        try:
            asyncio.run(self._run(announce=announce))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass

    def start(self) -> "HttpFrontend":
        """Serve on a daemon thread; returns once the socket is bound."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._run(ready=ready)),
            name="repro-http-loop",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10) or self._address is None:
            raise RuntimeError("HTTP front end failed to start")
        return self

    def stop(self) -> None:
        """Stop a :meth:`start`-ed front end and join its thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
                    )
                except ValueError:
                    writer.write(
                        self._encode(400, {"error": "malformed request line"},
                                     "application/json", False)
                    )
                    await writer.drain()
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                status, payload, content_type = await self._dispatch(
                    method, target, body
                )
                writer.write(
                    self._encode(status, payload, content_type, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _encode(
        status: int,
        payload: Union[Dict[str, Any], str, bytes],
        content_type: str,
        keep_alive: bool,
    ) -> bytes:
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], str], str]:
        path, _, query = target.partition("?")
        try:
            if path == "/v1/schemas":
                if method != "POST":
                    return 405, {"error": "POST required"}, "application/json"
                return await self._post_schemas(body)
            if path.startswith("/v1/schemas/"):
                from urllib.parse import unquote

                name = unquote(path[len("/v1/schemas/"):])
                if not name:
                    raise InvalidRequestError("empty schema name")
                if method == "GET":
                    return self._get_schema(name)
                if method == "DELETE":
                    return await self._delete_schema(name)
                return (
                    405,
                    {"error": "GET or DELETE required"},
                    "application/json",
                )
            if method != "GET":
                return 405, {"error": "GET required"}, "application/json"
            if path.startswith("/v1/components/") and path.endswith("/view"):
                return self._get_view(path[len("/v1/components/"):-len("/view")])
            if path.startswith("/v1/query/"):
                return self._get_query(path[len("/v1/query/"):])
            if path == "/v1/stats":
                return self._get_stats(query)
            return (
                404,
                {"error": f"no route for {method} {path}"},
                "application/json",
            )
        except Exception as exc:  # taxonomy-mapped error document
            return (
                status_for(exc),
                {
                    "format": API_FORMAT,
                    "error": str(exc),
                    "type": type(exc).__name__,
                },
                "application/json",
            )

    async def _post_schemas(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], str]:
        try:
            doc = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"request body is not JSON: {exc}")
        if not isinstance(doc, dict) or doc.get("format") != API_FORMAT:
            raise InvalidRequestError(
                f"expected a {API_FORMAT!r} document with a 'schemas' list"
            )
        docs = doc.get("schemas")
        if not isinstance(docs, list):
            raise InvalidRequestError("'schemas' must be a list")
        entries = [self._decode_entry(d) for d in docs]
        loop = asyncio.get_running_loop()
        receipt = await loop.run_in_executor(
            self._pool, self._service.register, entries
        )
        payload = {"format": API_FORMAT}
        payload.update(receipt.to_dict())
        return 200, payload, "application/json"

    @staticmethod
    def _decode_entry(doc: Any) -> RegistrationEntry:
        """A batch element: bare schema document or named-entry wrapper."""
        if isinstance(doc, dict) and "schema" in doc:
            if not isinstance(doc.get("name"), str) or not doc["name"]:
                raise InvalidRequestError(
                    "a named entry needs a non-empty string 'name'"
                )
            return RegistrationEntry(
                schema_from_dict(doc["schema"]),
                name=doc["name"],
                version=doc.get("version"),
                lifecycle=doc.get("lifecycle"),
            )
        return RegistrationEntry(schema_from_dict(doc))

    def _get_schema(self, name: str) -> Tuple[int, Dict[str, Any], str]:
        payload: Dict[str, Any] = {"format": API_FORMAT}
        payload.update(self._service.schema_info(name))
        return 200, payload, "application/json"

    async def _delete_schema(
        self, name: str
    ) -> Tuple[int, Dict[str, Any], str]:
        loop = asyncio.get_running_loop()
        receipt = await loop.run_in_executor(
            self._pool, self._service.retire, name
        )
        payload = {"format": API_FORMAT}
        payload.update(receipt.to_dict())
        return 200, payload, "application/json"

    def _get_view(self, raw_sid: str) -> Tuple[int, Dict[str, Any], str]:
        try:
            sid = int(raw_sid)
        except ValueError:
            raise InvalidRequestError(f"component id must be an integer, got {raw_sid!r}")
        view = self._service.merged_view(sid)
        return (
            200,
            {"format": API_FORMAT, "component": sid, "view": schema_to_dict(view)},
            "application/json",
        )

    def _get_query(self, raw_cls: str) -> Tuple[int, Dict[str, Any], str]:
        from urllib.parse import unquote

        cls = unquote(raw_cls)
        if not cls:
            raise InvalidRequestError("empty class name")
        result = self._service.query(cls)
        payload = {"format": API_FORMAT}
        payload.update(result.to_dict())
        return 200, payload, "application/json"

    def _get_stats(
        self, query: str
    ) -> Tuple[int, Union[Dict[str, Any], str], str]:
        if "format=json" in query:
            return (
                200,
                {"format": API_FORMAT, "stats": self._service.service_stats()},
                "application/json",
            )
        return 200, prometheus_text(), "text/plain; version=0.0.4; charset=utf-8"


def serve_http(
    service: MergeService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    max_workers: int = 4,
    announce: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Serve *service* over HTTP on the calling thread (Ctrl-C to stop).

    The blocking entry point behind ``repro serve --http PORT``.  For a
    background server (tests, benchmarks) use :class:`HttpFrontend` as a
    context manager instead.
    """
    HttpFrontend(
        service, host=host, port=port, max_workers=max_workers
    ).serve_forever(announce=announce)
