"""Component sharding: which schemas can possibly interact under merge.

Two weak schemas influence each other's join only through shared class
names — every specialization edge and arrow mentions only the schema's
own classes, so the least upper bound of a family factors into
independent joins of its *name-overlap components*.  The service
exploits exactly that: each component is a shard with its own
:class:`repro.perf.closure.ClosureBuilder`, a registration touches only
the shards its class names reach, and closure work never crosses a
component boundary.

:func:`plan_groups` is the pure planning half: given the current
class → shard assignment and a batch of new schemas, it unions shards
and batch members into groups without mutating anything, so the caller
can apply (or abandon) the whole batch atomically.

>>> from repro.core.schema import Schema
>>> pets = Schema.build(arrows=[("Dog", "owner", "Person")])
>>> court = Schema.build(arrows=[("Case", "judge", "Court")])
>>> plan_groups([pets, court], {})
[(set(), [0]), (set(), [1])]
>>> bridge = Schema.build(arrows=[("Person", "argues", "Case")])
>>> existing = {c: 0 for c in pets.classes} | {c: 1 for c in court.classes}
>>> plan_groups([bridge], existing)
[({0, 1}, [0])]
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.names import ClassName
from repro.core.schema import Schema
from repro.perf.closure import ClosureBuilder

__all__ = ["Shard", "UnionFind", "plan_groups"]


class UnionFind:
    """Disjoint sets over arbitrary hashable nodes (path-halving find)."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}

    def find(self, node: Hashable) -> Hashable:
        parent = self._parent
        if node not in parent:
            parent[node] = node
            return node
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, left: Hashable, right: Hashable) -> Hashable:
        """Merge the two sets; returns the surviving root."""
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self._parent[root_right] = root_left
        return root_left

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Every node, grouped by root (roots included in their group)."""
        out: Dict[Hashable, List[Hashable]] = {}
        for node in self._parent:
            out.setdefault(self.find(node), []).append(node)
        return out


class Shard:
    """One name-overlap component: its builder, members and mutation stamp.

    *generation* is the service generation of the last mutation; the
    snapshot caches compare against it to decide whether an answer
    derived from this shard is still current.

    *schemas* is any immutable-after-handoff sequence: commits build
    plain lists, but a snapshot-led recovery hands over a lazily
    decoded view whose members only materialize when a later mutation
    (or introspection) actually reads them.
    """

    __slots__ = ("sid", "builder", "schemas", "generation")

    def __init__(
        self,
        sid: int,
        builder: ClosureBuilder,
        schemas: Sequence[Schema],
        generation: int,
    ) -> None:
        self.sid = sid  # frozen-after-init
        self.builder = builder  # frozen-after-init
        self.schemas = schemas  # frozen-after-init
        self.generation = generation  # frozen-after-init

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Shard(sid={self.sid}, schemas={len(self.schemas)}, "
            f"generation={self.generation})"
        )


def plan_groups(
    batch: Sequence[Schema],
    class_to_sid: Dict[ClassName, int],
    reserved: Optional[Dict[ClassName, int]] = None,
) -> List[Tuple[Set[int], List[int]]]:
    """Plan how a batch folds into the existing shard layout (pure).

    Returns one ``(existing_sids, batch_indices)`` tuple per group that
    contains at least one batch schema, in first-touch order: the shards
    the group absorbs (possibly none) and the batch members that land in
    it.  Batch schemas sharing a class — directly or through a chain of
    existing shards — end up in the same group.  Shards untouched by the
    batch are not reported.

    *reserved* is a second ``class → sid`` mapping consulted when
    *class_to_sid* has no entry: the per-shard-locking service records
    in-flight writers' claims on still-uncommitted class names there, so
    a concurrent plan routes contending batches onto the claimant's
    shard id (and therefore onto its lock) instead of racing it.
    """
    uf = UnionFind()
    first_claim: Dict[ClassName, Tuple[str, int]] = {}
    for index, schema in enumerate(batch):
        node = ("new", index)
        uf.find(node)
        for cls in schema.classes:
            sid = class_to_sid.get(cls)
            if sid is None and reserved is not None:
                sid = reserved.get(cls)
            if sid is not None:
                uf.union(node, ("shard", sid))
            else:
                claimant = first_claim.setdefault(cls, node)
                if claimant != node:
                    uf.union(node, claimant)
    plans: List[Tuple[Set[int], List[int]]] = []
    by_root: Dict[Hashable, Tuple[Set[int], List[int]]] = {}
    for index in range(len(batch)):
        root = uf.find(("new", index))
        plan = by_root.get(root)
        if plan is None:
            plan = by_root[root] = (set(), [])
            plans.append(plan)
        plan[1].append(index)
    for kind, value in uf._parent:
        if kind == "shard":
            root = uf.find((kind, value))
            plan = by_root.get(root)
            if plan is not None:
                plan[0].add(value)
    return plans
