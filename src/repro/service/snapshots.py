"""Generation-stamped snapshot caches for the merge service.

The engine-level caches (:mod:`repro.perf.memo`) never invalidate —
their keys are immutable values.  A *service* cache is different: the
answer to ``merged_view("Dog")`` depends on which schemas have been
registered so far, so every entry is stamped with the generation it was
computed at and checked against the current generation on lookup.

Three outcomes per lookup:

* **hit** — the entry's generation equals the current one: nothing has
  been registered since, the answer is trivially current;
* **partial hit** — the generation moved on, but the caller's
  ``still_valid(stamp)`` predicate proves the entry's inputs did not
  (only *other* shards changed).  The entry is re-stamped to the
  current generation and reused — this is what makes a mostly-read
  service cheap even under a trickle of writes to unrelated components;
* **miss** — no entry, or the entry's inputs really changed.

Every outcome is counted on registered instruments in the global
:data:`repro.obs.metrics.REGISTRY` — ``snapshot.hits``,
``snapshot.misses``, ``snapshot.revalidations`` (partial hits) and
``snapshot.evictions``, all labelled ``cache=<name>`` — and
:meth:`SnapshotCache.stats` is a thin compatibility view over those
same instruments.  Registration is last-wins per cache name, so the
registry always describes the newest cache instance (one merge service
per process in production).

>>> cache = SnapshotCache("example", maxsize=8)
>>> cache.lookup("answer", generation=1) is SnapshotCache.MISS
True
>>> cache.store("answer", 42, generation=1, stamp=("shard", 1))
42
>>> cache.lookup("answer", generation=1)
42
>>> cache.lookup("answer", generation=2, still_valid=lambda s: True)
42
>>> cache.stats()["partial_hits"]
1
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, NamedTuple, Optional

from repro.obs.metrics import REGISTRY, Counter
from repro.perf.closure import DenseClosure
from repro.sentinels import Sentinel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.schema import Schema

__all__ = ["ComponentSnapshot", "SnapshotCache"]


class ComponentSnapshot(NamedTuple):
    """One component's merged view, frozen in dense id-table form.

    The payload is the component shard's :class:`DenseClosure` — its
    :class:`~repro.perf.namespace.NameSpace` id table plus the bitmask
    closure arrays — so a snapshot serializes without re-walking any
    schema object graph: each class name is written exactly once (at
    its id position) and every relation row is integers.  ``sid`` /
    ``generation`` identify which shard state the snapshot captured;
    ``schemas`` counts the registered schemas folded into it.
    """

    sid: int
    generation: int
    schemas: int
    dense: DenseClosure

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro.snapshot/1`` JSON document for this component."""
        from repro.io.json_io import snapshot_to_dict

        return snapshot_to_dict(
            self.dense,
            component={
                "sid": self.sid,
                "generation": self.generation,
                "schemas": self.schemas,
            },
        )

    def schema(self) -> "Schema":
        """Decode back to an interned :class:`~repro.core.schema.Schema`."""
        return self.dense.to_schema()


class SnapshotCache:
    """A bounded LRU of generation-stamped answers.

    Entries are ``(value, generation, stamp)``; *stamp* is an opaque
    caller-supplied fingerprint of the entry's inputs (e.g. the shard id
    and shard generation an answer was derived from), consulted by the
    partial-hit predicate.  ``lookup`` returns :data:`SnapshotCache.MISS`
    on a miss so ``None``/``False`` values are cacheable.

    Counter updates are plain instrument increments.  The cache itself
    is GIL-tolerant: the merge service consults it from lock-free read
    paths, so concurrent ``store``/``lookup``/eviction races are
    handled defensively (see ``_evict``) and cost at worst a recompute,
    never a wrong answer.
    """

    MISS = Sentinel("SnapshotCache.MISS")

    __slots__ = ("name", "maxsize", "_hits", "_misses", "_partial", "_evictions", "_table")

    def __init__(self, name: str, maxsize: int = 256) -> None:
        self.name = name  # frozen-after-init
        self.maxsize = maxsize  # frozen-after-init
        self._hits = REGISTRY.register(Counter("snapshot.hits", cache=name))
        self._misses = REGISTRY.register(Counter("snapshot.misses", cache=name))
        self._partial = REGISTRY.register(
            Counter("snapshot.revalidations", cache=name)
        )
        self._evictions = REGISTRY.register(
            Counter("snapshot.evictions", cache=name)
        )
        self._table: Dict[Hashable, Any] = {}

    # Compatibility views over the registered instruments.
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def partial_hits(self) -> int:
        return self._partial.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def lookup(
        self,
        key: Hashable,
        generation: int,
        still_valid: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """The cached answer for *key* at *generation*, or ``MISS``.

        *still_valid* receives the entry's stamp when the generation has
        moved on; returning ``True`` means the entry's inputs are
        untouched, so the answer is reused (and re-stamped) as a partial
        hit.  Stale entries are dropped on sight.
        """
        table = self._table
        entry = table.pop(key, None)
        if entry is None:
            self._misses.inc()
            return SnapshotCache.MISS
        value, stamped_generation, stamp = entry
        if stamped_generation == generation:
            self._hits.inc()
            table[key] = entry
            return value
        if still_valid is not None and still_valid(stamp):
            self._partial.inc()
            table[key] = (value, generation, stamp)
            return value
        self._misses.inc()
        return SnapshotCache.MISS

    def store(
        self,
        key: Hashable,
        value: Any,
        generation: int,
        stamp: Any = None,
    ) -> Any:
        """Record *value* for *key* at *generation* (evicting LRU-first)."""
        table = self._table
        while len(table) >= self.maxsize:
            try:
                table.pop(next(iter(table)), None)
                self._evictions.inc()
            except (StopIteration, RuntimeError):
                # Concurrent clear/resize mid-scan; eviction is
                # best-effort, correctness never depends on it.
                break
        table[key] = (value, generation, stamp)
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are telemetry)."""
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        """The pre-telemetry dict shape, read from the instruments."""
        return {
            "size": len(self._table),
            "maxsize": self.maxsize,
            "hits": self._hits.value,
            "misses": self._misses.value,
            "partial_hits": self._partial.value,
            "evictions": self._evictions.value,
        }
