"""Generation-stamped snapshot caches for the merge service.

The engine-level caches (:mod:`repro.perf.memo`) never invalidate —
their keys are immutable values.  A *service* cache is different: the
answer to ``merged_view("Dog")`` depends on which schemas have been
registered so far, so every entry is stamped with the generation it was
computed at and checked against the current generation on lookup.

Three outcomes per lookup:

* **hit** — the entry's generation equals the current one: nothing has
  been registered since, the answer is trivially current;
* **partial hit** — the generation moved on, but the caller's
  ``still_valid(stamp)`` predicate proves the entry's inputs did not
  (only *other* shards changed).  The entry is re-stamped to the
  current generation and reused — this is what makes a mostly-read
  service cheap even under a trickle of writes to unrelated components;
* **miss** — no entry, or the entry's inputs really changed.

>>> cache = SnapshotCache("example", maxsize=8)
>>> cache.lookup("answer", generation=1) is SnapshotCache.MISS
True
>>> cache.store("answer", 42, generation=1, stamp=("shard", 1))
42
>>> cache.lookup("answer", generation=1)
42
>>> cache.lookup("answer", generation=2, still_valid=lambda s: True)
42
>>> cache.stats()["partial_hits"]
1
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["SnapshotCache"]


class _Miss:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<SnapshotCache.MISS>"


class SnapshotCache:
    """A bounded LRU of generation-stamped answers.

    Entries are ``(value, generation, stamp)``; *stamp* is an opaque
    caller-supplied fingerprint of the entry's inputs (e.g. the shard id
    and shard generation an answer was derived from), consulted by the
    partial-hit predicate.  ``lookup`` returns :data:`SnapshotCache.MISS`
    on a miss so ``None``/``False`` values are cacheable.
    """

    MISS = _Miss()

    __slots__ = ("name", "maxsize", "hits", "misses", "partial_hits", "_table")

    def __init__(self, name: str, maxsize: int = 256):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.partial_hits = 0
        self._table: Dict[Hashable, Any] = {}

    def lookup(
        self,
        key: Hashable,
        generation: int,
        still_valid: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """The cached answer for *key* at *generation*, or ``MISS``.

        *still_valid* receives the entry's stamp when the generation has
        moved on; returning ``True`` means the entry's inputs are
        untouched, so the answer is reused (and re-stamped) as a partial
        hit.  Stale entries are dropped on sight.
        """
        table = self._table
        entry = table.pop(key, None)
        if entry is None:
            self.misses += 1
            return SnapshotCache.MISS
        value, stamped_generation, stamp = entry
        if stamped_generation == generation:
            self.hits += 1
            table[key] = entry
            return value
        if still_valid is not None and still_valid(stamp):
            self.partial_hits += 1
            table[key] = (value, generation, stamp)
            return value
        self.misses += 1
        return SnapshotCache.MISS

    def store(
        self,
        key: Hashable,
        value: Any,
        generation: int,
        stamp: Any = None,
    ) -> Any:
        """Record *value* for *key* at *generation* (evicting LRU-first)."""
        table = self._table
        while len(table) >= self.maxsize:
            try:
                table.pop(next(iter(table)), None)
            except (StopIteration, RuntimeError):
                # Concurrent clear/resize mid-scan; eviction is
                # best-effort, correctness never depends on it.
                break
        table[key] = (value, generation, stamp)
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are telemetry)."""
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._table),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "partial_hits": self.partial_hits,
        }
