"""Durable registry storage: append-only log + per-component snapshots.

The merge service is transactional in memory — every ``register()``
batch commits atomically or rolls back without a trace — and this
module makes the committed history *durable*.  Two artifacts, behind
one :class:`StorageBackend` protocol:

* **the registration log** — one checksummed JSONL record
  (``repro.log/1``) per committed mutation, appended and fsync'd in
  commit order.  Replaying the log from empty reproduces the service
  state record by record (same shards, same generations), which is the
  whole recovery story: the log *is* the registry, everything else is
  an optimization.
* **service snapshots** — a periodic cut of every component's dense
  closure (the ``repro.snapshot/1`` codec of ``repro.io.json_io``,
  written per component as ``snap-<sid>.json``) plus a ``manifest.json``
  naming the cut's log position, generation and schema-lifecycle table.
  Recovery restores components from the newest complete cut and replays
  only the log *suffix* — snapshot files are written tmp-file +
  atomic-rename, and the manifest is written last, so a crash mid-cut
  leaves the previous cut intact.

**Corruption semantics** (exercised by ``tests/test_storage_recovery``):
a torn *final* log line — no terminating newline, the footprint of a
crash mid-append — is silently truncated to the last durable record;
any well-formed line whose checksum or sequence number is wrong raises
:class:`~repro.exceptions.CorruptLogError`.  A snapshot or manifest
that fails its checksum, decoding, or the dense-closure invariant
re-validation raises
:class:`~repro.exceptions.CorruptSnapshotError`; a *missing* snapshot
file (or one from a half-finished cut) is not corruption — recovery
falls back to full log replay, slower but exact.

:class:`MemoryBackend` (the default) keeps records as live objects —
no encoding, no I/O — so an un-persisted service pays near nothing for
the logging hooks.  :class:`FileBackend` is the first real backend; the
protocol is the seam where a replicated or object-store backend slots
in later (ROADMAP item 3).

Work counters report into :data:`repro.obs.metrics.REGISTRY`:
``storage.appends``, ``storage.replays``, ``storage.snapshot_writes``,
``storage.recoveries``.

>>> from repro.core.schema import Schema
>>> entry = RegistrationEntry(
...     Schema.build(arrows=[("Dog", "owner", "Person")]),
...     name="pets", version=1, lifecycle="recommended",
... )
>>> backend = MemoryBackend()
>>> backend.append(LogRecord(kind="register", generation=1, entries=(entry,)))
1
>>> [(seq, record.kind) for seq, record in backend.records()]
[(1, 'register')]

The file backend round-trips the same records through the checksummed
JSONL encoding::

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     first = FileBackend(tmp)
    ...     _ = first.append(
    ...         LogRecord(kind="register", generation=1, entries=(entry,))
    ...     )
    ...     first.close()
    ...     reopened = FileBackend(tmp)
    ...     replayed = [record.kind for _seq, record in reopened.records()]
    ...     reopened.close()
    >>> replayed
    ['register']
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.core.schema import Schema
from repro.exceptions import (
    CorruptLogError,
    CorruptSnapshotError,
    InvalidRequestError,
    SerializationError,
    StorageError,
)
from repro.io.json_io import (
    canonical_dumps,
    schema_from_dict,
    schema_to_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.obs.metrics import REGISTRY
from repro.perf.closure import DenseClosure

__all__ = [
    "LIFECYCLES",
    "RegistrationEntry",
    "LogRecord",
    "VersionState",
    "ComponentState",
    "ServiceState",
    "StorageBackend",
    "MemoryBackend",
    "FileBackend",
]

FORMAT_LOG = "repro.log/1"
FORMAT_SERVICE_SNAPSHOT = "repro.service.snapshot/1"
FORMAT_MANIFEST = "repro.service.manifest/1"

#: The schema-lifecycle vocabulary, in descending preference order:
#: name resolution picks the highest ``recommended`` version, falls
#: back to ``supported``, and never resolves to ``obsolete`` unless
#: nothing else is live.
LIFECYCLES = ("recommended", "supported", "obsolete")

APPENDS = REGISTRY.counter("storage.appends")
REPLAYS = REGISTRY.counter("storage.replays")
SNAPSHOT_WRITES = REGISTRY.counter("storage.snapshot_writes")
RECOVERIES = REGISTRY.counter("storage.recoveries")


@dataclass(frozen=True)
class RegistrationEntry:
    """One schema as submitted to ``register()`` — optionally named.

    A bare :class:`~repro.core.schema.Schema` registration is anonymous:
    it merges into its component and cannot be retired individually.
    Naming it enrolls it in the lifecycle table: *version* defaults to
    one past the name's highest existing version, *lifecycle* to
    ``"recommended"`` (demoting the previous recommended version to
    ``"supported"`` — the supersede chain).
    """

    schema: Schema
    name: Optional[str] = None
    version: Optional[int] = None
    lifecycle: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name is not None and not isinstance(self.name, str):
            raise InvalidRequestError(
                f"schema names must be strings, got {self.name!r}"
            )
        if self.name is None and (
            self.version is not None or self.lifecycle is not None
        ):
            raise InvalidRequestError(
                "anonymous registrations cannot carry a version or lifecycle"
            )
        if self.version is not None and (
            not isinstance(self.version, int)
            or isinstance(self.version, bool)
            or self.version < 1
        ):
            raise InvalidRequestError(
                f"schema versions are integers starting at 1, "
                f"got {self.version!r}"
            )
        if self.lifecycle is not None and self.lifecycle not in LIFECYCLES:
            raise InvalidRequestError(
                f"unknown lifecycle {self.lifecycle!r}; "
                f"expected one of {LIFECYCLES}"
            )


@dataclass(frozen=True)
class LogRecord:
    """One committed mutation, exactly as it entered the log.

    ``kind`` is ``"register"`` (with *entries* and the committed
    per-group component *sids*) or ``"retire"`` (with *name* and the
    retired *versions*); *generation* is the registry generation the
    commit produced, re-checked during replay so a log that no longer
    determines the same state is rejected instead of trusted.

    *sids* exist because component-id allocation is the one part of a
    commit that the batch alone does not determine: rolled-back batches
    and plan retries consume ids that replay (which sees committed
    history only) would never burn.  Recording the assignment makes the
    recovered registry answer ``query``/``component_snapshot`` with the
    same component ids the original handed out.
    """

    kind: str
    generation: int
    entries: Tuple[RegistrationEntry, ...] = ()
    sids: Tuple[int, ...] = ()
    name: Optional[str] = None
    versions: Tuple[int, ...] = ()


@dataclass(frozen=True)
class VersionState:
    """One version of a named schema in the lifecycle table."""

    version: int
    lifecycle: str
    retired: bool
    schema: Schema


@dataclass(frozen=True)
class ComponentState:
    """One component's durable state at a snapshot cut."""

    sid: int
    generation: int
    dense: DenseClosure
    members: Sequence[Schema]


class _LazyMembers(Sequence[Schema]):
    """Member schemas of a restored component, decoded on first use.

    A snapshot-led recovery serves views and queries from the dense
    closure alone; the member list matters only to *later* mutations
    (a merge absorbing the shard, a retire refolding it) and to
    introspection.  Decoding every member doc up front is the dominant
    restart cost, so it is deferred: ``len`` reads the doc count, any
    content access hydrates the whole tuple exactly once.  The docs
    sit inside a checksummed snapshot, so byte corruption is caught at
    load time; a doc that is CRC-clean yet undecodable still surfaces
    as :class:`~repro.exceptions.CorruptSnapshotError`, merely later.
    """

    __slots__ = ("_docs", "_origin", "_decoded", "_lock")

    def __init__(self, docs: Sequence[Mapping[str, Any]], origin: str) -> None:
        self._docs = tuple(docs)
        self._origin = origin
        # Written once under the lock, read lock-free (double-checked:
        # a stale None just takes the locked slow path).
        self._decoded: Optional[Tuple[Schema, ...]] = None  # guarded-by(writes): _lock
        self._lock = threading.Lock()

    def raw_docs(self) -> Optional[Tuple[Mapping[str, Any], ...]]:
        """The undecoded docs, if no hydration happened yet.

        Lets a snapshot cut taken right after recovery re-write the
        member block without a decode/encode round trip.
        """
        return None if self._decoded is not None else self._docs

    def _hydrate(self) -> Tuple[Schema, ...]:
        decoded = self._decoded
        if decoded is None:
            with self._lock:
                decoded = self._decoded
                if decoded is None:
                    try:
                        decoded = tuple(
                            schema_from_dict(dict(doc)) for doc in self._docs
                        )
                    except (
                        SerializationError,
                        AttributeError,
                        TypeError,
                        ValueError,
                    ) as exc:
                        raise CorruptSnapshotError(
                            f"{self._origin} member schemas do not "
                            f"decode: {exc}"
                        ) from exc
                    self._decoded = decoded
        return decoded

    def __len__(self) -> int:
        return len(self._docs)

    def __getitem__(self, index):  # type: ignore[override]
        return self._hydrate()[index]

    def __iter__(self) -> Iterator[Schema]:
        return iter(self._hydrate())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "decoded" if self._decoded is not None else "raw"
        return f"_LazyMembers({len(self._docs)} schemas, {state})"


@dataclass(frozen=True)
class ServiceState:
    """A full service snapshot: everything up to log position *seq*."""

    seq: int
    generation: int
    next_sid: int
    components: Tuple[ComponentState, ...]
    series: Mapping[str, Tuple[VersionState, ...]]


class StorageBackend(Protocol):
    """The pluggable persistence seam of :class:`MergeService`.

    ``append`` must be durable before it returns (a crash immediately
    after a successful append never loses the record); ``records``
    yields every durable record in sequence order; ``save_state`` /
    ``load_state`` store and retrieve the latest complete snapshot cut
    (``load_state`` returns ``None`` when recovery should fall back to
    full log replay).
    """

    def append(self, record: LogRecord) -> int:
        """Durably append *record*; return its sequence number."""
        ...  # pragma: no cover - protocol

    def records(self, after: int = 0) -> Iterator[Tuple[int, LogRecord]]:
        """Durable records with sequence number > *after*, ascending.

        Integrity of the *whole* log is still verified (a corrupt
        record below the cut must surface), but records at or below
        *after* are covered by a snapshot and may skip semantic
        decoding — which is what keeps a snapshot-led recovery from
        paying full-log decode cost.
        """
        ...  # pragma: no cover - protocol

    def load_state(self) -> Optional[ServiceState]:
        """The newest complete snapshot cut, or ``None`` for full replay."""
        ...  # pragma: no cover - protocol

    def save_state(self, state: ServiceState) -> None:
        """Persist a snapshot cut (atomically replacing the previous one)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# Wire encoding (shared by FileBackend and the recovery tests)
# ----------------------------------------------------------------------


def _checksum(doc: Mapping[str, Any]) -> str:
    """CRC-32 of the canonical JSON text of *doc*, as 8 hex digits."""
    return format(zlib.crc32(canonical_dumps(doc).encode("ascii")), "08x")


def _seal(doc: Dict[str, Any]) -> str:
    """The canonical one-line text of *doc* with its ``crc`` stamped in."""
    sealed = dict(doc)
    sealed["crc"] = _checksum(doc)
    return canonical_dumps(sealed)


def _unseal(text: str, error: "type[StorageError]") -> Dict[str, Any]:
    """Parse and verify a sealed line; raise *error* on any mismatch."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise error(f"undecodable JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise error("sealed document is not a JSON object")
    crc = doc.pop("crc", None)
    if crc != _checksum(doc):
        raise error(
            f"checksum mismatch: recorded {crc!r}, computed {_checksum(doc)!r}"
        )
    return doc


def entry_to_dict(entry: RegistrationEntry) -> Dict[str, Any]:
    """Encode one registration entry (schema via ``repro.schema/1``)."""
    return {
        "name": entry.name,
        "version": entry.version,
        "lifecycle": entry.lifecycle,
        "schema": schema_to_dict(entry.schema),
    }


def entry_from_dict(doc: Mapping[str, Any]) -> RegistrationEntry:
    """Decode one registration entry (validates like a fresh submission)."""
    return RegistrationEntry(
        schema=schema_from_dict(dict(doc["schema"])),
        name=doc.get("name"),
        version=doc.get("version"),
        lifecycle=doc.get("lifecycle"),
    )


def record_to_dict(seq: int, record: LogRecord) -> Dict[str, Any]:
    """Encode one log record as an (unsealed) ``repro.log/1`` document."""
    doc: Dict[str, Any] = {
        "format": FORMAT_LOG,
        "seq": seq,
        "kind": record.kind,
        "generation": record.generation,
    }
    if record.kind == "register":
        doc["entries"] = [entry_to_dict(entry) for entry in record.entries]
        doc["sids"] = list(record.sids)
    else:
        doc["name"] = record.name
        doc["versions"] = list(record.versions)
    return doc


def record_from_dict(doc: Mapping[str, Any]) -> Tuple[int, LogRecord]:
    """Decode one verified log document back into ``(seq, LogRecord)``."""
    kind = doc.get("kind")
    if kind == "register":
        entries = tuple(entry_from_dict(e) for e in doc.get("entries", ()))
        record = LogRecord(
            kind="register",
            generation=int(doc["generation"]),
            entries=entries,
            sids=tuple(int(s) for s in doc.get("sids", ())),
        )
    elif kind == "retire":
        record = LogRecord(
            kind="retire",
            generation=int(doc["generation"]),
            name=doc.get("name"),
            versions=tuple(int(v) for v in doc.get("versions", ())),
        )
    else:
        raise CorruptLogError(f"unknown log record kind {kind!r}")
    return int(doc["seq"]), record


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class MemoryBackend:
    """The default backend: records held as live objects, never encoded.

    Gives an un-persisted service the exact same code path as a durable
    one (every commit appends a record) at in-memory cost, and doubles
    as the reference backend in the restart-equivalence tests — a
    service rebuilt from a ``MemoryBackend``'s records must match one
    rebuilt from a ``FileBackend``'s.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Tuple[int, LogRecord]] = []  # guarded-by: _lock
        self._state: Optional[ServiceState] = None  # guarded-by: _lock

    def append(self, record: LogRecord) -> int:
        with self._lock:
            seq = len(self._records) + 1
            self._records.append((seq, record))
        APPENDS.inc()
        return seq

    def records(self, after: int = 0) -> Iterator[Tuple[int, LogRecord]]:
        with self._lock:
            snapshot = [entry for entry in self._records if entry[0] > after]
        return iter(snapshot)

    def load_state(self) -> Optional[ServiceState]:
        with self._lock:
            return self._state

    def save_state(self, state: ServiceState) -> None:
        with self._lock:
            self._state = state
        SNAPSHOT_WRITES.inc(len(state.components))

    def close(self) -> None:
        """Nothing to release; present for protocol symmetry."""


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry table (best effort; not all OSes allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class FileBackend:
    """One directory holding the log, the snapshot files and the manifest.

    Layout::

        <dir>/registry.log     append-only JSONL, one sealed record/line
        <dir>/snap-<sid>.json  newest snapshot of component <sid>
        <dir>/manifest.json    the cut: log seq, generation, lifecycle table

    Construction scans the log once: it verifies checksums and sequence
    contiguity (raising :class:`~repro.exceptions.CorruptLogError`
    eagerly, before the service trusts anything) and truncates a torn
    final line left by a crash mid-append.  Appends write one line,
    flush, and — unless *fsync* is disabled for throughput experiments —
    fsync before returning.  Snapshot and manifest writes go through a
    temp file and an atomic rename, manifest last, so readers never see
    a half-written cut.
    """

    LOG_NAME = "registry.log"
    MANIFEST_NAME = "manifest.json"

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self._dir = Path(path)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync  # frozen-after-init
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        log = self._dir / self.LOG_NAME
        if log.exists():
            last_seq, durable = self._scan(log.read_bytes())
            self._seq = last_seq
            if durable < log.stat().st_size:
                # A torn tail is a crash footprint, not corruption:
                # drop it so the next append starts on a record boundary.
                with open(log, "r+b") as fh:
                    fh.truncate(durable)
                    fh.flush()
                    os.fsync(fh.fileno())

    @staticmethod
    def _scan(data: bytes) -> Tuple[int, int]:
        """Verify the log bytes; return ``(last_seq, durable_length)``.

        Walks terminated lines in order, checking JSON shape, checksum,
        format tag and sequence contiguity — any failure on a
        *terminated* line is :class:`CorruptLogError`.  An unterminated
        final fragment is a torn append and simply ends the durable
        prefix.
        """
        offset = 0
        last_seq = 0
        durable = 0
        while True:
            newline = data.find(b"\n", offset)
            if newline < 0:
                break
            line = data[offset:newline]
            offset = newline + 1
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CorruptLogError(
                    f"log record {last_seq + 1} is not valid UTF-8"
                ) from exc
            doc = _unseal(text, CorruptLogError)
            if doc.get("format") != FORMAT_LOG:
                raise CorruptLogError(
                    f"log record has format {doc.get('format')!r}, "
                    f"expected {FORMAT_LOG!r}"
                )
            seq = doc.get("seq")
            if seq != last_seq + 1:
                raise CorruptLogError(
                    f"log sequence jumps from {last_seq} to {seq!r}"
                )
            last_seq = seq
            durable = offset
        return last_seq, durable

    def append(self, record: LogRecord) -> int:
        with self._lock:
            seq = self._seq + 1
            line = _seal(record_to_dict(seq, record)) + "\n"
            fh = self._fh
            if fh is None:
                fh = self._fh = open(
                    self._dir / self.LOG_NAME, "a", encoding="utf-8"
                )
            fh.write(line)
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
            self._seq = seq
        APPENDS.inc()
        return seq

    def records(self, after: int = 0) -> Iterator[Tuple[int, LogRecord]]:
        log = self._dir / self.LOG_NAME
        if not log.exists():
            return
        data = log.read_bytes()
        last_seq, durable = self._scan(data)
        offset = 0
        while offset < durable:
            newline = data.index(b"\n", offset)
            doc = _unseal(data[offset:newline].decode("utf-8"), CorruptLogError)
            offset = newline + 1
            # ``_scan`` already checked seal and sequence for every
            # line; records under the snapshot cut skip the (much more
            # expensive) semantic decode of their schema payloads.
            if doc["seq"] <= after:
                continue
            try:
                yield record_from_dict(doc)
            except (SerializationError, KeyError, ValueError) as exc:
                raise CorruptLogError(
                    f"log record {doc.get('seq')!r} does not decode: {exc}"
                ) from exc

    def load_state(self) -> Optional[ServiceState]:
        manifest_path = self._dir / self.MANIFEST_NAME
        if not manifest_path.exists():
            return None
        manifest = _unseal(
            manifest_path.read_text(encoding="utf-8"), CorruptSnapshotError
        )
        if manifest.get("format") != FORMAT_MANIFEST:
            raise CorruptSnapshotError(
                f"manifest has format {manifest.get('format')!r}, "
                f"expected {FORMAT_MANIFEST!r}"
            )
        try:
            seq = int(manifest["seq"])
            generation = int(manifest["generation"])
            next_sid = int(manifest["next_sid"])
            sids = [int(sid) for sid in manifest["components"]]
            series_doc = manifest["series"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptSnapshotError(
                f"manifest is missing or mistypes a field: {exc}"
            ) from exc
        components: List[ComponentState] = []
        for sid in sids:
            snap_path = self._dir / f"snap-{sid}.json"
            if not snap_path.exists():
                # A missing file is a deleted/never-finished cut, not
                # corruption: fall back to full log replay.
                return None
            doc = _unseal(
                snap_path.read_text(encoding="utf-8"), CorruptSnapshotError
            )
            if doc.get("format") != FORMAT_SERVICE_SNAPSHOT:
                raise CorruptSnapshotError(
                    f"snapshot {snap_path.name} has format "
                    f"{doc.get('format')!r}"
                )
            if doc.get("seq") != seq:
                # The cut never completed (crash between snapshot and
                # manifest writes); the log still has everything.
                return None
            try:
                # snapshot_from_dict re-validates the closure invariants
                # — the decoder never trusts persisted relations.  The
                # member docs (only needed by later mutations) decode
                # lazily; _LazyMembers reports their faults with the
                # same CorruptSnapshotError type.
                dense = snapshot_from_dict(dict(doc["snapshot"]))
                member_docs = doc["members"]
                if not isinstance(member_docs, list):
                    raise ValueError("members must be a list")
                members: Sequence[Schema] = _LazyMembers(
                    member_docs, f"snapshot {snap_path.name}"
                )
            except (SerializationError, ValueError, KeyError, TypeError) as exc:
                raise CorruptSnapshotError(
                    f"snapshot {snap_path.name} does not decode: {exc}"
                ) from exc
            components.append(
                ComponentState(
                    sid=sid,
                    generation=int(doc.get("generation", generation)),
                    dense=dense,
                    members=members,
                )
            )
        series: Dict[str, Tuple[VersionState, ...]] = {}
        try:
            for schema_name, versions in series_doc.items():
                series[schema_name] = tuple(
                    VersionState(
                        version=int(v["version"]),
                        lifecycle=str(v["lifecycle"]),
                        retired=bool(v["retired"]),
                        schema=schema_from_dict(dict(v["schema"])),
                    )
                    for v in versions
                )
        except (SerializationError, AttributeError, KeyError, TypeError,
                ValueError) as exc:
            raise CorruptSnapshotError(
                f"manifest lifecycle table does not decode: {exc}"
            ) from exc
        return ServiceState(
            seq=seq,
            generation=generation,
            next_sid=next_sid,
            components=tuple(components),
            series=series,
        )

    def save_state(self, state: ServiceState) -> None:
        for component in state.components:
            raw = (
                component.members.raw_docs()
                if isinstance(component.members, _LazyMembers)
                else None
            )
            doc = {
                "format": FORMAT_SERVICE_SNAPSHOT,
                "seq": state.seq,
                "sid": component.sid,
                "generation": component.generation,
                "snapshot": snapshot_to_dict(component.dense),
                "members": (
                    list(raw)
                    if raw is not None
                    else [schema_to_dict(g) for g in component.members]
                ),
            }
            self._write_atomic(self._dir / f"snap-{component.sid}.json", doc)
            SNAPSHOT_WRITES.inc()
        manifest = {
            "format": FORMAT_MANIFEST,
            "seq": state.seq,
            "generation": state.generation,
            "next_sid": state.next_sid,
            "components": [c.sid for c in state.components],
            "series": {
                schema_name: [
                    {
                        "version": v.version,
                        "lifecycle": v.lifecycle,
                        "retired": v.retired,
                        "schema": schema_to_dict(v.schema),
                    }
                    for v in versions
                ]
                for schema_name, versions in state.series.items()
            },
        }
        self._write_atomic(self._dir / self.MANIFEST_NAME, manifest)
        # Retired/absorbed components' snapshot files are now unreferenced;
        # drop them so the directory mirrors the manifest.
        keep = {f"snap-{c.sid}.json" for c in state.components}
        for stale in self._dir.glob("snap-*.json"):
            if stale.name not in keep:
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - race with a cleaner
                    pass

    def _write_atomic(self, path: Path, doc: Dict[str, Any]) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_seal(doc) + "\n")
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self._fsync:
            _fsync_dir(self._dir)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
