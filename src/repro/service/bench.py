"""Service benchmark driver — replay request streams, measure, verify.

Shared by ``schema-merge bench``, ``benchmarks/bench_service.py`` and
``benchmarks/runner.py`` so every entry point measures the same thing:

* **cold baseline** — ``join_all`` over the initial schemas with the
  engine caches cleared first (what every request would cost without
  the service);
* **warm views** — repeated ``merged_view()`` after warm-up (the
  steady-state request cost; the acceptance bar is ≥ 10x the baseline);
* **replay** — the full mixed view/query/register stream, for
  end-to-end request throughput.  The replay service runs with
  telemetry enabled and ``telemetry_sample_every=1`` (streams are only
  a few hundred requests), so the result carries true per-request
  latency percentiles and cache hit rates from :mod:`repro.obs`;
* **invalidation** — register one schema overlapping exactly one
  component and count component-cache misses on a full re-scan: the
  delta must be exactly 1 (only the touched component recomputes).

:func:`telemetry_overhead` is the guard on the other side of the same
coin: with *default* sampling (1-in-64), the enabled-vs-disabled cost
of a warm ``merged_view`` burst must stay under the 5% budget.

Timings go through :func:`repro.perf.timing.time_call` — the same
kernel behind ``benchmarks/_timing.py`` — so runner records fold in
directly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.exceptions import InvalidRequestError
from repro.generators.workloads import get_request_stream
from repro.obs import _state as _obs_state
from repro.obs.exporters import JsonlExporter
from repro.obs.tracing import tracer
from repro.perf import clear_caches
from repro.perf.timing import time_call
from repro.service.service import MergeService

__all__ = ["replay", "run_bench", "telemetry_overhead"]


def replay(service: MergeService, requests) -> Dict[str, int]:
    """Run a request stream against *service*; returns per-kind counts."""
    counts = {"view": 0, "query": 0, "register": 0}
    for kind, payload in requests:
        if kind == "view":
            service.merged_view(payload)
        elif kind == "query":
            service.query(payload)
        elif kind == "register":
            service.register([payload])
        else:  # pragma: no cover - malformed streams are a caller bug
            raise InvalidRequestError(f"unknown request kind {kind!r}")
        counts[kind] += 1
    return counts


def _invalidation_probe(service: MergeService) -> Schema:
    """A fresh schema overlapping exactly one existing component."""
    components = service.components()
    sid = min(components)
    anchor = next(iter(service.component_schemas(sid)[0].sorted_classes()))
    return Schema.build(
        arrows=[(str(anchor), "bench_probe", f"BenchProbe{sid}")]
    )


def _hit_rate(stats: Dict[str, int]) -> Optional[float]:
    lookups = stats["hits"] + stats["misses"] + stats.get("partial_hits", 0)
    if not lookups:
        return None
    return (stats["hits"] + stats.get("partial_hits", 0)) / lookups


def _percentile_block(histogram) -> Dict[str, Any]:
    return {**histogram.percentiles(), "count": histogram.count}


def run_bench(
    workload: str = "service-mixed-200",
    repeat: int = 3,
    telemetry_jsonl: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure a request-stream workload end to end.

    Returns a JSON-able dict: ``timings`` (cold join_all, warm
    merged_view, stream replay), ``latency`` (per-request p50/p95/p99
    from the replay service's histograms), ``cache_hit_rates``,
    ``summary`` (speedup, acceptance verdicts), ``invalidation`` (the
    only-one-component check) and the final ``service_stats()``.

    *telemetry_jsonl* (a path) additionally streams every replay span
    to a JSONL log and appends a final metrics snapshot — the artifact
    CI uploads from the bench smoke job.
    """
    stream = get_request_stream(workload)
    initial, requests = stream.make()

    cold = time_call(
        lambda: join_all(initial), repeat=repeat, setup=clear_caches
    )

    service = MergeService(initial)
    component_ids = sorted(service.components())
    # Warm every per-component view plus the global one.
    for sid in component_ids:
        service.merged_view(sid)
    service.merged_view()
    warm = time_call(lambda: service.merged_view(), repeat=repeat, warmup=0)

    # The replay service samples every request (streams are short) so
    # its histograms are full latency distributions, not estimates.
    replay_service = MergeService(initial, telemetry_sample_every=1)
    was_enabled = _obs_state.enabled
    exporter = (
        JsonlExporter(telemetry_jsonl) if telemetry_jsonl is not None else None
    )
    _obs_state.set_enabled(True)
    if exporter is not None:
        tracer().add_sink(exporter.export_span)
    try:
        stream_timing = time_call(
            lambda: replay(replay_service, requests), repeat=1, warmup=0
        )
    finally:
        if exporter is not None:
            tracer().remove_sink(exporter.export_span)
            exporter.export_event(
                "bench.replay", workload=workload, requests=len(requests)
            )
            exporter.export_metrics()
            exporter.close()
        _obs_state.set_enabled(was_enabled)

    # Invalidation: a registration must recompute only its component.
    before = service.service_stats()["component_cache"]["misses"]
    service.register([_invalidation_probe(service)])
    for sid in sorted(service.components()):
        service.merged_view(sid)
    after = service.service_stats()["component_cache"]["misses"]
    invalidation = {
        "components": len(component_ids),
        "component_cache_misses_delta": after - before,
        "only_touched_component": (after - before) == 1,
    }

    speedup = (
        cold["best_s"] / warm["best_s"] if warm["best_s"] > 0 else float("inf")
    )
    stats = replay_service.service_stats()
    tel = replay_service.telemetry
    latency = {
        "merged_view": _percentile_block(tel.view_duration),
        "query": _percentile_block(tel.query_duration),
        "register": _percentile_block(tel.register_duration),
    }
    cache_hit_rates = {
        "component_cache": _hit_rate(stats["component_cache"]),
        "snapshot_cache": _hit_rate(stats["snapshot_cache"]),
        "merged_view": _hit_rate(stats["telemetry"]["merged_view"]),
    }
    return {
        "workload": workload,
        "initial_schemas": len(initial),
        "requests": len(requests),
        "timings": {
            "join_all_cold": cold,
            "merged_view_warm": warm,
            "stream_replay": stream_timing,
        },
        "latency": latency,
        "cache_hit_rates": cache_hit_rates,
        "summary": {
            "view_speedup_vs_cold_join_all": speedup,
            "requests_per_second": (
                len(requests) / stream_timing["best_s"]
                if stream_timing["best_s"] > 0
                else float("inf")
            ),
            "invalidation_ok": invalidation["only_touched_component"],
        },
        "invalidation": invalidation,
        "service_stats": stats,
    }


def telemetry_overhead(
    workload: str = "service-sharded-small",
    loops: int = 20000,
    repeat: int = 5,
) -> Dict[str, Any]:
    """Enabled-vs-disabled cost of a warm ``merged_view`` burst.

    Uses the *default* 1-in-64 sampling — the production configuration
    the <5% overhead budget is promised for.  Returns both timings, the
    overhead fraction and the verdict; the tracer ring is cleared of
    the sampled spans afterwards.
    """
    stream = get_request_stream(workload)
    initial, _requests = stream.make()
    service = MergeService(initial)
    service.merged_view()

    view = service.merged_view

    def burst() -> None:
        for _ in range(loops):
            view()

    was_enabled = _obs_state.enabled
    try:
        _obs_state.set_enabled(False)
        disabled = time_call(burst, repeat=repeat, warmup=1)
        _obs_state.set_enabled(True)
        enabled = time_call(burst, repeat=repeat, warmup=1)
    finally:
        _obs_state.set_enabled(was_enabled)
        tracer().clear()

    overhead = (
        enabled["best_s"] / disabled["best_s"] - 1.0
        if disabled["best_s"] > 0
        else 0.0
    )
    return {
        "workload": workload,
        "loops": loops,
        "repeat": repeat,
        "disabled": disabled,
        "enabled": enabled,
        "overhead_fraction": overhead,
        "budget_fraction": 0.05,
        "within_budget": overhead < 0.05,
    }
