"""Service benchmark driver — replay request streams, measure, verify.

Shared by ``schema-merge bench``, ``benchmarks/bench_service.py`` and
``benchmarks/runner.py`` so every entry point measures the same thing:

* **cold baseline** — ``join_all`` over the initial schemas with the
  engine caches cleared first (what every request would cost without
  the service);
* **warm views** — repeated ``merged_view()`` after warm-up (the
  steady-state request cost; the acceptance bar is ≥ 10x the baseline);
* **replay** — the full mixed view/query/register stream, for
  end-to-end request throughput;
* **invalidation** — register one schema overlapping exactly one
  component and count component-cache misses on a full re-scan: the
  delta must be exactly 1 (only the touched component recomputes).

Timings go through :func:`repro.perf.timing.time_call` — the same
kernel behind ``benchmarks/_timing.py`` — so runner records fold in
directly.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.ordering import join_all
from repro.core.schema import Schema
from repro.generators.workloads import get_request_stream
from repro.perf import clear_caches
from repro.perf.timing import time_call
from repro.service.service import MergeService

__all__ = ["replay", "run_bench"]


def replay(service: MergeService, requests) -> Dict[str, int]:
    """Run a request stream against *service*; returns per-kind counts."""
    counts = {"view": 0, "query": 0, "register": 0}
    for kind, payload in requests:
        if kind == "view":
            service.merged_view(payload)
        elif kind == "query":
            service.query(payload)
        elif kind == "register":
            service.register([payload])
        else:  # pragma: no cover - malformed streams are a caller bug
            raise ValueError(f"unknown request kind {kind!r}")
        counts[kind] += 1
    return counts


def _invalidation_probe(service: MergeService) -> Schema:
    """A fresh schema overlapping exactly one existing component."""
    components = service.components()
    sid = min(components)
    anchor = next(iter(service.component_schemas(sid)[0].sorted_classes()))
    return Schema.build(
        arrows=[(str(anchor), "bench_probe", f"BenchProbe{sid}")]
    )


def run_bench(
    workload: str = "service-mixed-200", repeat: int = 3
) -> Dict[str, Any]:
    """Measure a request-stream workload end to end.

    Returns a JSON-able dict: ``timings`` (cold join_all, warm
    merged_view, stream replay), ``summary`` (speedup, acceptance
    verdicts), ``invalidation`` (the only-one-component check) and the
    final ``service_stats()``.
    """
    stream = get_request_stream(workload)
    initial, requests = stream.make()

    cold = time_call(
        lambda: join_all(initial), repeat=repeat, setup=clear_caches
    )

    service = MergeService(initial)
    component_ids = sorted(service.components())
    # Warm every per-component view plus the global one.
    for sid in component_ids:
        service.merged_view(sid)
    service.merged_view()
    warm = time_call(lambda: service.merged_view(), repeat=repeat, warmup=0)

    replay_service = MergeService(initial)
    stream_timing = time_call(
        lambda: replay(replay_service, requests), repeat=1, warmup=0
    )

    # Invalidation: a registration must recompute only its component.
    before = service.service_stats()["component_cache"]["misses"]
    service.register([_invalidation_probe(service)])
    for sid in sorted(service.components()):
        service.merged_view(sid)
    after = service.service_stats()["component_cache"]["misses"]
    invalidation = {
        "components": len(component_ids),
        "component_cache_misses_delta": after - before,
        "only_touched_component": (after - before) == 1,
    }

    speedup = (
        cold["best_s"] / warm["best_s"] if warm["best_s"] > 0 else float("inf")
    )
    stats = replay_service.service_stats()
    return {
        "workload": workload,
        "initial_schemas": len(initial),
        "requests": len(requests),
        "timings": {
            "join_all_cold": cold,
            "merged_view_warm": warm,
            "stream_replay": stream_timing,
        },
        "summary": {
            "view_speedup_vs_cold_join_all": speedup,
            "requests_per_second": (
                len(requests) / stream_timing["best_s"]
                if stream_timing["best_s"] > 0
                else float("inf")
            ),
            "invalidation_ok": invalidation["only_touched_component"],
        },
        "invalidation": invalidation,
        "service_stats": stats,
    }
